//! The unified error type of the facade crate.
//!
//! Each workspace layer keeps its own precise error enum
//! ([`tpiin_model::ModelError`], [`tpiin_fusion::FusionError`],
//! [`tpiin_io::IoError`]); this type is the single surface downstream
//! code matches on.  `From` impls let `?` lift any layer's failure, and
//! [`std::error::Error::source`] preserves the underlying chain.

use std::fmt;
use std::path::PathBuf;
use tpiin_fusion::FusionError;
use tpiin_io::IoError;
use tpiin_model::ModelError;

/// Any failure the `tpiin` facade can surface.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm, so
/// later layers (serving, sharding) can add variants without a breaking
/// release.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Source records failed structural validation, with every violation
    /// listed (not just the first).
    Model(Vec<ModelError>),
    /// The fusion pipeline failed past validation.
    Fusion(FusionError),
    /// Reading or writing a TPIIN-related file format.
    Io(IoError),
    /// A plain filesystem failure outside the format readers/writers
    /// (e.g. writing an export or metrics file).
    File {
        /// The file being accessed.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The caller asked for something invalid (bad CLI flags, builder
    /// misuse).
    Usage(String),
    /// The serving daemon failed to start or reload
    /// (see [`tpiin_serve::ServeError`]).
    Serve(tpiin_serve::ServeError),
    /// Talking to a live daemon (`tpiin health`) failed: connection
    /// refused, a malformed response, or an error status.
    Daemon {
        /// The daemon address that was polled.
        addr: String,
        /// What went wrong.
        message: String,
    },
}

impl Error {
    /// Wraps a filesystem failure with the path involved.
    pub fn file(path: impl Into<PathBuf>, source: std::io::Error) -> Error {
        Error::File {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Model(errs) => write!(
                f,
                "source records failed validation with {} error(s); first: {}",
                errs.len(),
                errs.first().map(|e| e.to_string()).unwrap_or_default()
            ),
            Error::Fusion(e) => e.fmt(f),
            Error::Io(e) => e.fmt(f),
            Error::File { path, source } => write!(f, "{}: {}", path.display(), source),
            Error::Usage(msg) => f.write_str(msg),
            Error::Serve(e) => e.fmt(f),
            Error::Daemon { addr, message } => write!(f, "daemon at {addr}: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(errs) => errs
                .first()
                .map(|e| e as &(dyn std::error::Error + 'static)),
            Error::Fusion(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::File { source, .. } => Some(source),
            Error::Usage(_) => None,
            Error::Serve(e) => Some(e),
            Error::Daemon { .. } => None,
        }
    }
}

/// Validation failures lift to [`Error::Model`] no matter which layer
/// detected them, so callers classify them uniformly.
impl From<Vec<ModelError>> for Error {
    fn from(errs: Vec<ModelError>) -> Error {
        Error::Model(errs)
    }
}

impl From<FusionError> for Error {
    fn from(e: FusionError) -> Error {
        match e {
            FusionError::InvalidRegistry(errs) => Error::Model(errs),
            other => Error::Fusion(other),
        }
    }
}

impl From<IoError> for Error {
    fn from(e: IoError) -> Error {
        match e {
            IoError::Invalid(errs) => Error::Model(errs),
            other => Error::Io(other),
        }
    }
}

/// Snapshot parse failures lift to [`Error::Io`] like any other format
/// error; daemon startup failures stay [`Error::Serve`].
impl From<tpiin_serve::ServeError> for Error {
    fn from(e: tpiin_serve::ServeError) -> Error {
        match e {
            tpiin_serve::ServeError::Snapshot(err) => Error::from(err),
            other => Error::Serve(other),
        }
    }
}
