//! One-line import for the types every program touches:
//!
//! ```
//! use tpiin::prelude::*;
//! ```
//!
//! Covers building a registry, running the [`Pipeline`], and reading its
//! output; reach into the per-layer modules ([`crate::graph`],
//! [`crate::io`], [`crate::ite`], …) for anything more specialized.

pub use crate::error::Error;
pub use crate::pipeline::{Pipeline, RunOutput};
pub use tpiin_core::{
    score_group, BaselineMiner, CircularTradingMiner, DetectionResult, Detector, DetectorConfig,
    GroupKind, GroupMiner, GroupScore, MineContext, MinerRegistry, Rule12Miner, SuspiciousGroup,
    WindowedMiner,
};
pub use tpiin_delta::{ApplyOutcome, DeltaConfig, DeltaEngine, DeltaPath};
pub use tpiin_fusion::{FusionReport, Tpiin};
pub use tpiin_model::{
    CompanyId, InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Mutation,
    MutationBatch, PersonId, Role, RoleSet, SourceRegistry, TradingRecord,
};
pub use tpiin_obs::Level;
pub use tpiin_serve::{ServeConfig, ServerHandle};
