//! `tpiin` — facade crate re-exporting the whole workspace public API.
//!
//! This is the crate downstream users depend on.  It reproduces the system
//! of *"Mining Suspicious Tax Evasion Groups in Big Data"* (ICDE 2017):
//! the Taxpayer Interest Interacted Network (TPIIN) model, the
//! multi-network fusion pipeline that builds it, and the suspicious-group
//! detection algorithms.
//!
//! * [`graph`] — directed multigraph substrate (Tarjan SCC, WCC,
//!   contraction, export).
//! * [`model`] — taxpayer domain model (persons, roles, companies,
//!   source relationships).
//! * [`fusion`] — `G1 … G123 + G4 -> TPIIN` multi-network fusion.
//! * [`detect`] — Algorithm 1/2, pattern matching, baseline, parallel
//!   detector (the paper's contribution).
//! * [`datagen`] — synthetic province generator and worked-example
//!   builders.
//! * [`io`] — CSV registries, the paper's edge-list format,
//!   susGroup/susTrade reports, GraphML export.
//! * [`ite`] — the ITE phase: transaction-level arm's-length screening
//!   over the suspicious groups (Fig. 4's second stage).
//! * [`obs`] — observability substrate: metrics registry, RAII span
//!   timers, leveled logging, run-profile export.

pub use tpiin_core as detect;
pub use tpiin_datagen as datagen;
pub use tpiin_fusion as fusion;
pub use tpiin_graph as graph;
pub use tpiin_io as io;
pub use tpiin_ite as ite;
pub use tpiin_model as model;
pub use tpiin_obs as obs;
