//! `tpiin` — facade crate re-exporting the whole workspace public API.
//!
//! This is the crate downstream users depend on.  It reproduces the system
//! of *"Mining Suspicious Tax Evasion Groups in Big Data"* (ICDE 2017):
//! the Taxpayer Interest Interacted Network (TPIIN) model, the
//! multi-network fusion pipeline that builds it, and the suspicious-group
//! detection algorithms.
//!
//! * [`graph`] — directed multigraph substrate (Tarjan SCC, WCC,
//!   contraction, export).
//! * [`model`] — taxpayer domain model (persons, roles, companies,
//!   source relationships).
//! * [`fusion`] — `G1 … G123 + G4 -> TPIIN` multi-network fusion.
//! * [`detect`] — Algorithm 1/2, pattern matching, baseline, the
//!   parallel detector (the paper's contribution), and the
//!   [`detect::GroupMiner`] strategy API behind which every detection
//!   workload — Rule 1/Rule 2, the baseline oracle, circular-trading
//!   cycles, time-windowed variants — plugs in uniformly
//!   ([`Pipeline::miner`]).
//! * [`datagen`] — synthetic province generator and worked-example
//!   builders.
//! * [`delta`] — the delta-fusion engine: incremental TPIIN maintenance
//!   under streaming registry + trading mutation batches
//!   ([`Pipeline::delta`]), bit-identical to a from-scratch re-fuse.
//! * [`io`] — CSV registries, the paper's edge-list format,
//!   susGroup/susTrade reports, GraphML export.
//! * [`ite`] — the ITE phase: transaction-level arm's-length screening
//!   over the suspicious groups (Fig. 4's second stage).
//! * [`obs`] — observability substrate: metrics registry, RAII span
//!   timers, leveled logging, run-profile export.
//! * [`serve`] — the always-on query/ingest daemon: hot-swappable
//!   snapshots behind a hand-rolled HTTP/1.1 front ([`Pipeline::serve`]).
//!
//! # Using the library
//!
//! The front door is the [`Pipeline`] builder with the [`prelude`]:
//!
//! ```
//! use tpiin::prelude::*;
//!
//! let mut registry = SourceRegistry::new();
//! let boss = registry.add_person("Boss", RoleSet::of(&[Role::Ceo]));
//! let a = registry.add_company("A");
//! let b = registry.add_company("B");
//! for company in [a, b] {
//!     registry.add_influence(InfluenceRecord {
//!         person: boss, company,
//!         kind: InfluenceKind::CeoOf, is_legal_person: true,
//!     });
//! }
//! registry.add_trading(TradingRecord { seller: a, buyer: b, volume: 1.0 });
//!
//! let out = Pipeline::from_registry(&registry).threads(2).run()?;
//! assert_eq!(out.groups.group_count(), 1);
//! # Ok::<(), tpiin::Error>(())
//! ```

mod error;
mod pipeline;
pub mod prelude;

pub use error::Error;
pub use pipeline::{Pipeline, RunOutput};

pub use tpiin_core as detect;
pub use tpiin_datagen as datagen;
pub use tpiin_delta as delta;
pub use tpiin_fusion as fusion;
pub use tpiin_graph as graph;
pub use tpiin_io as io;
pub use tpiin_ite as ite;
pub use tpiin_model as model;
pub use tpiin_obs as obs;
pub use tpiin_serve as serve;
