//! The [`Pipeline`] builder: registry in, mined TPIIN out.
//!
//! One call chain configures and runs the whole system — fusion
//! (Section 4.1, five stages plus the CSR freeze), then Algorithm 1/2
//! group detection on the work-stealing scheduler:
//!
//! ```
//! use tpiin::prelude::*;
//!
//! let registry = tpiin::datagen::fig7_registry();
//! let out = Pipeline::from_registry(&registry).threads(4).run()?;
//! assert!(out.groups.group_count() > 0);
//! # Ok::<(), tpiin::Error>(())
//! ```

use crate::error::Error;
use std::sync::Arc;
use tpiin_core::{mine_with_obs, DetectionResult, DetectorConfig, MineContext, MinerRegistry};
use tpiin_fusion::{FuseOptions, FusionReport, Tpiin};
use tpiin_model::SourceRegistry;
use tpiin_obs::{Level, RunProfile, TraceContext};

/// Everything one [`Pipeline::run`] produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The fused network (with its frozen CSR kernel).
    pub tpiin: Tpiin,
    /// Per-stage fusion statistics and timings.
    pub report: FusionReport,
    /// The primary detection result — the first configured miner's
    /// (the Rule 1/Rule 2 detector unless [`Pipeline::miner`] chose
    /// otherwise): suspicious groups, arcs, per-shard stats.
    pub groups: DetectionResult,
    /// Name of the miner that produced [`RunOutput::groups`].
    pub primary_miner: String,
    /// Results of any additional miners beyond the first, in request
    /// order; see [`RunOutput::result_for`].
    pub miner_results: Vec<(String, DetectionResult)>,
    /// The run profile, when [`Pipeline::profile`] was enabled.
    pub profile: Option<RunProfile>,
}

impl RunOutput {
    /// The result of the miner named `name`, whether primary or
    /// additional.
    pub fn result_for(&self, name: &str) -> Option<&DetectionResult> {
        if self.primary_miner == name {
            return Some(&self.groups);
        }
        self.miner_results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
    }
}

/// Builder over the fuse-then-detect pipeline.
///
/// Borrows the registry; all knobs default to the serial,
/// group-collecting, unprofiled configuration that [`tpiin_fusion::fuse`]
/// plus [`tpiin_core::detect`] would give.
#[derive(Debug)]
pub struct Pipeline<'a> {
    registry: &'a SourceRegistry,
    config: DetectorConfig,
    fuse_options: FuseOptions,
    miners: Vec<String>,
    log_level: Option<Level>,
    profile: bool,
    trace: Option<Arc<TraceContext>>,
}

impl<'a> Pipeline<'a> {
    /// Starts a pipeline over `registry` with default settings.  The
    /// fusion worker count starts from the `TPIIN_THREADS` environment
    /// variable (unset means one worker per core); [`Pipeline::threads`]
    /// overrides it.
    pub fn from_registry(registry: &'a SourceRegistry) -> Pipeline<'a> {
        Pipeline {
            registry,
            config: DetectorConfig::default(),
            fuse_options: FuseOptions::from_env(),
            miners: Vec::new(),
            log_level: None,
            profile: false,
            trace: None,
        }
    }

    /// Adds one detection strategy by spec (`rules`, `baseline`,
    /// `circular`, `windowed:<inner>@<start>..<end>`; see
    /// [`tpiin_core::MinerRegistry::resolve`]).  Repeatable; the first
    /// added miner becomes [`RunOutput::groups`].  Without any call the
    /// pipeline runs the Rule 1/Rule 2 detector alone.
    pub fn miner(mut self, spec: impl Into<String>) -> Self {
        self.miners.push(spec.into());
        self
    }

    /// Adds several detection strategies at once (see
    /// [`Pipeline::miner`]).
    pub fn miners<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.miners.extend(specs.into_iter().map(Into::into));
        self
    }

    /// Worker threads for both the fusion front-end and detection;
    /// `0` or `1` runs both serially.  Fusion results are bit-identical
    /// at every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self.fuse_options.threads = threads.max(1);
        self
    }

    /// Sets the global log level for the run (overrides `TPIIN_LOG`).
    pub fn log_level(mut self, level: Level) -> Self {
        self.log_level = Some(level);
        self
    }

    /// Enables profiling; the captured [`RunProfile`] lands in
    /// [`RunOutput::profile`].
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Records the whole run into `trace`: installed as the process-wide
    /// active context for the duration of [`Pipeline::run`], so fusion
    /// and detector spans on every worker thread land in it under one
    /// trace id.  Export afterwards with
    /// [`TraceContext::to_chrome_json`].
    pub fn trace(mut self, trace: Arc<TraceContext>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Whether to materialize [`tpiin_core::SuspiciousGroup`]s (`true` by
    /// default); counting-only sweeps run leaner with `false`.
    pub fn collect_groups(mut self, on: bool) -> Self {
        self.config.collect_groups = on;
        self
    }

    /// Upper bound on patterns-tree nodes per root (overflow guard).
    pub fn max_tree_nodes(mut self, bound: usize) -> Self {
        self.config.max_tree_nodes = bound;
        self
    }

    /// Fuses the registry and starts the query/ingest daemon over the
    /// result (the [`tpiin_serve`] crate): the returned handle serves
    /// `/groups`, `/groups_behind_arc`, `/company/{id}`, `POST /ingest`
    /// and friends until shut down.  Detection runs once at startup to
    /// build the first snapshot epoch.  The daemon keeps a copy of the
    /// registry, so `POST /ingest` accepts the full mutation vocabulary
    /// (companies, directors, investments, trading) and maintains the
    /// served TPIIN via the delta engine.
    pub fn serve(
        self,
        config: tpiin_serve::ServeConfig,
    ) -> Result<tpiin_serve::ServerHandle, Error> {
        if self.log_level.is_some() {
            tpiin_obs::log::set_level(self.log_level);
        }
        if self.profile {
            tpiin_obs::set_profiling(true);
            tpiin_obs::global().reset();
        }
        // Validate eagerly so bad registries surface as Error::Model
        // with the full violation list, like Pipeline::run.
        self.registry.validate()?;
        Ok(tpiin_serve::ServerHandle::bind_with_registry(
            self.registry.clone(),
            config,
        )?)
    }

    /// Fuses the registry into a streaming [`tpiin_delta::DeltaEngine`]:
    /// the returned engine owns a copy of the registry and maintains
    /// the fused TPIIN plus its mined groups incrementally under
    /// [`tpiin_model::MutationBatch`]es ([`tpiin_delta::DeltaEngine::apply`]).
    /// The detector knobs configured on this builder
    /// ([`Pipeline::collect_groups`] is forced on — diffing needs group
    /// bodies — and [`Pipeline::max_tree_nodes`], [`Pipeline::threads`])
    /// carry over to every re-mine.
    pub fn delta(self) -> Result<tpiin_delta::DeltaEngine, Error> {
        if self.log_level.is_some() {
            tpiin_obs::log::set_level(self.log_level);
        }
        let mut config = tpiin_delta::DeltaConfig::default();
        config.detector = self.config;
        config.detector.collect_groups = true;
        tpiin_delta::DeltaEngine::with_config(self.registry.clone(), config).map_err(
            |err| match err {
                tpiin_delta::DeltaError::Fusion(e) => Error::from(e),
                tpiin_delta::DeltaError::Mutation(e) => Error::Model(vec![e]),
                other => Error::Usage(other.to_string()),
            },
        )
    }

    /// Fuses the registry and mines suspicious groups with every
    /// configured strategy (the Rule 1/Rule 2 detector by default).
    pub fn run(self) -> Result<RunOutput, Error> {
        let specs: Vec<String> = if self.miners.is_empty() {
            vec![tpiin_core::RULES_MINER.to_string()]
        } else {
            self.miners.clone()
        };
        let registry = MinerRegistry::from_specs(&specs).map_err(Error::Usage)?;
        if self.log_level.is_some() {
            tpiin_obs::log::set_level(self.log_level);
        }
        if self.profile {
            tpiin_obs::set_profiling(true);
            tpiin_obs::global().reset();
        }
        let installed_trace = self.trace.is_some();
        if let Some(trace) = &self.trace {
            tpiin_obs::set_active_trace(Some(Arc::clone(trace)));
        }
        let ctx = MineContext {
            config: self.config,
            tax_rates: self.registry.company_tax_rates(),
        };
        let outcome = (|| {
            let _root = tpiin_obs::Span::at("pipeline");
            let (tpiin, report) = tpiin_fusion::fuse_with(self.registry, self.fuse_options)?;
            let results: Vec<(String, DetectionResult)> = registry
                .iter()
                .map(|m| (m.name().to_string(), mine_with_obs(m, &tpiin, &ctx)))
                .collect();
            Ok::<_, Error>((tpiin, report, results))
        })();
        if installed_trace {
            tpiin_obs::set_active_trace(None);
        }
        let (tpiin, report, mut results) = outcome?;
        let (primary_miner, groups) = results.remove(0);
        let profile = self.profile.then(RunProfile::capture);
        Ok(RunOutput {
            tpiin,
            report,
            groups,
            primary_miner,
            miner_results: results,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_the_worked_example() {
        let registry = tpiin_datagen::fig7_registry();
        let out = Pipeline::from_registry(&registry)
            .threads(2)
            .run()
            .expect("fig7 is valid");
        assert_eq!(out.groups.group_count(), 3);
        assert!(out.report.tpiin_nodes > 0);
        assert!(out.profile.is_none());
    }

    #[test]
    fn profile_capture_is_opt_in() {
        let registry = tpiin_datagen::fig7_registry();
        let out = Pipeline::from_registry(&registry)
            .profile(true)
            .run()
            .expect("fig7 is valid");
        let profile = out.profile.expect("profiling was requested");
        assert!(profile.phase("fusion").is_some());
    }

    #[test]
    fn invalid_registry_surfaces_as_model_error() {
        let mut registry = SourceRegistry::new();
        registry.add_company("orphan"); // no legal person
        let err = Pipeline::from_registry(&registry).run().unwrap_err();
        assert!(matches!(err, Error::Model(_)), "{err:?}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn serve_binds_and_answers_healthz() {
        use std::io::{Read as _, Write as _};
        let registry = tpiin_datagen::fig7_registry();
        let handle = Pipeline::from_registry(&registry)
            .serve(tpiin_serve::ServeConfig::default())
            .expect("ephemeral bind");
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"status\":\"ok\""), "{text}");
        handle.shutdown();
    }

    #[test]
    fn delta_builder_streams_batches_through_the_engine() {
        use tpiin_model::{CompanyId, Mutation, MutationBatch, TradingRecord};
        let mut registry = tpiin_datagen::case2_registry();
        registry.clear_trading();
        let mut engine = Pipeline::from_registry(&registry)
            .delta()
            .expect("case2 is valid");
        assert_eq!(engine.detection().group_count(), 0);
        let batch = MutationBatch::new(vec![Mutation::AddTrading(TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(2),
            volume: 7.5,
        })]);
        let outcome = engine.apply(&batch).expect("trading append");
        assert_eq!(outcome.new_groups.len(), 1);
        // The maintained state equals a from-scratch run over the
        // mutated registry.
        let mut shadow = registry.clone();
        batch.apply_to_registry(&mut shadow).unwrap();
        let full = Pipeline::from_registry(&shadow).run().unwrap();
        assert_eq!(engine.detection().groups, full.groups.groups);
    }

    #[test]
    fn trace_collects_fusion_and_detector_spans_under_one_id() {
        let registry = tpiin_datagen::fig7_registry();
        let trace = Arc::new(TraceContext::new());
        let out = Pipeline::from_registry(&registry)
            .threads(2)
            .trace(Arc::clone(&trace))
            .run()
            .expect("fig7 is valid");
        assert_eq!(out.groups.group_count(), 3);
        let names: Vec<String> = trace.events().into_iter().map(|e| e.name).collect();
        for expected in ["pipeline", "fusion", "detect", "detect/provenance"] {
            assert!(
                names.iter().any(|n| n == expected),
                "span {expected:?} missing from {names:?}"
            );
        }
        let json = trace.to_chrome_json().to_pretty();
        assert!(json.contains(&format!("\"traceId\": \"{}\"", trace.id())));
        // The context uninstalls when run() returns.
        assert!(tpiin_obs::current_trace().is_none() || !tpiin_obs::tracing_enabled());
    }

    #[test]
    fn miners_run_in_request_order_with_primary_first() {
        let registry = tpiin_datagen::circular_case_registry();
        let out = Pipeline::from_registry(&registry)
            .miner("circular")
            .miner("rules")
            .run()
            .expect("scenario is valid");
        assert_eq!(out.primary_miner, "circular");
        assert_eq!(out.groups.group_count(), 1, "the planted ring");
        assert_eq!(out.miner_results.len(), 1);
        assert_eq!(
            out.result_for("rules").expect("rules ran").group_count(),
            0,
            "no shared antecedent in the scenario"
        );
        assert!(out.result_for("zebra").is_none());
    }

    #[test]
    fn unknown_miner_spec_is_a_usage_error() {
        let registry = tpiin_datagen::fig7_registry();
        let err = Pipeline::from_registry(&registry)
            .miner("zebra")
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Usage(_)), "{err:?}");
    }

    #[test]
    fn counting_only_mode_skips_group_bodies() {
        let registry = tpiin_datagen::fig7_registry();
        let out = Pipeline::from_registry(&registry)
            .collect_groups(false)
            .run()
            .expect("fig7 is valid");
        assert!(out.groups.groups.is_empty());
        assert_eq!(out.groups.group_count(), 3);
    }
}
