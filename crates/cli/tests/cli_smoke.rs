//! End-to-end smoke tests driving the compiled `tpiin` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tpiin"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_commands() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    for cmd in ["table1", "worked-example", "cases", "query", "report"] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn worked_example_prints_fifteen_patterns_and_three_groups() {
    let (stdout, _, ok) = run(&["worked-example"]);
    assert!(ok);
    assert!(stdout.contains("15. "), "{stdout}");
    assert_eq!(stdout.matches("group (").count(), 3, "{stdout}");
    assert!(stdout.contains("L6+LB"));
}

#[test]
fn cases_reports_all_three() {
    let (stdout, _, ok) = run(&["cases"]);
    assert!(ok);
    assert!(stdout.contains("Case 1"));
    assert!(stdout.contains("Case 2"));
    assert!(stdout.contains("Case 3"));
    assert!(stdout.contains("25.52M RMB"));
}

#[test]
fn table1_small_sweep_with_verification() {
    let (stdout, _, ok) = run(&["table1", "--scale", "0.2", "--probs", "0.004", "--verify"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("100%"), "verification column: {stdout}");
}

#[test]
fn stats_prints_all_stages() {
    let (stdout, _, ok) = run(&["stats", "--scale", "0.2"]);
    assert!(ok);
    for stage in ["G1", "G2", "G123", "TPIIN", "segmentation"] {
        assert!(stdout.contains(stage), "{stdout}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn save_then_import_roundtrip() {
    let dir = std::env::temp_dir().join(format!("tpiin-cli-smoke-{}", std::process::id()));
    let dir_str = dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let (_, _, ok) = run(&["save-province", "--scale", "0.1", "--dir", dir_str]);
    assert!(ok);
    let (stdout, _, ok) = run(&["import", "--dir", dir_str]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("suspicious groups"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn export_graphml_emits_xml() {
    let (stdout, _, ok) = run(&["export-graphml", "--scale", "0.05"]);
    assert!(ok);
    assert!(stdout.starts_with("<?xml"));
    assert!(stdout.contains("</graphml>"));
}

#[test]
fn two_phase_reports_both_scopes() {
    let (stdout, _, ok) = run(&["two-phase", "--scale", "0.2"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("one-by-one"), "{stdout}");
    assert!(stdout.contains("two-phase"), "{stdout}");
    assert!(stdout.contains("recall"), "{stdout}");
}

#[test]
fn company_view_renders_a_tree() {
    let (stdout, _, ok) = run(&["company", "--company", "C0", "--scale", "0.1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with("C0"), "{stdout}");
    assert!(stdout.contains("LP:"), "{stdout}");
}

#[test]
fn analyze_handles_companies_without_findings() {
    // C-last is a singleton cluster company: cannot be suspicious.
    let (stdout, _, ok) = run(&["analyze", "--company", "C244", "--scale", "0.1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Investment structure"), "{stdout}");
}

#[test]
fn missing_required_flags_error_cleanly() {
    for args in [
        vec!["company"],
        vec!["analyze"],
        vec!["query"],
        vec!["import"],
        vec!["report"],
        vec!["save-province"],
    ] {
        let (_, stderr, ok) = run(&args);
        assert!(!ok, "{args:?} should fail");
        assert!(stderr.contains("requires"), "{args:?}: {stderr}");
    }
}

#[test]
fn query_without_match_is_not_an_error() {
    let (stdout, _, ok) = run(&["query", "--scale", "0.1", "--arc", "C0,C1"]);
    assert!(ok, "{stdout}");
}

#[test]
fn profile_flag_prints_phase_timing_table() {
    let (stdout, stderr, ok) = run(&["worked-example", "--profile"]);
    assert!(ok, "{stderr}");
    // Normal output is untouched; the table goes to stderr.
    assert!(stdout.contains("L6+LB"));
    assert!(stderr.contains("# phase timings"), "{stderr}");
    for phase in ["fusion", "  validate", "detect", "  segment"] {
        assert!(stderr.contains(phase), "missing {phase:?} in:\n{stderr}");
    }
}

#[test]
fn metrics_out_writes_parseable_profile_json() {
    let path = std::env::temp_dir().join(format!("tpiin-metrics-{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let _ = std::fs::remove_file(&path);
    let (_, stderr, ok) = run(&["detect", "--scale", "0.2", "--metrics-out", path_str]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("profile file written");
    let json = tpiin_io::json::Json::parse(&text).expect("profile is valid JSON");
    assert!(json.get("phases").is_some());
    assert!(json.get("counters").is_some());
    // Every fusion stage and detection phase appears with a nonzero
    // duration (paths are recorded in the flat text, durations in the
    // parsed tree).
    for phase in [
        "fusion/validate",
        "fusion/contract_persons",
        "fusion/contract_sccs",
        "fusion/attach_trading",
        "fusion/verify_dag",
        "detect/segment",
        "detect/build_tree",
        "detect/match_patterns",
        "detect/score",
    ] {
        assert!(text.contains(&format!("\"path\": \"{phase}\"")), "{phase}");
    }
    fn all_phase_totals(node: &tpiin_io::json::Json, out: &mut Vec<(String, f64)>) {
        let path = node.get("path").and_then(|p| p.as_str());
        let total = node.get("total_ns").and_then(|t| t.as_f64());
        if let (Some(path), Some(total)) = (path, total) {
            out.push((path.to_string(), total));
        }
        if let Some(tpiin_io::json::Json::Array(children)) = node.get("children") {
            for child in children {
                all_phase_totals(child, out);
            }
        }
    }
    let mut totals = Vec::new();
    if let Some(tpiin_io::json::Json::Array(roots)) = json.get("phases") {
        for root in roots {
            all_phase_totals(root, &mut totals);
        }
    }
    for (path, total) in &totals {
        assert!(*total > 0.0, "phase {path} has zero duration");
    }
    assert!(totals.iter().any(|(p, _)| p == "fusion/validate"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn explain_prints_an_audited_provenance_chain() {
    let (stdout, stderr, ok) = run(&["explain", "0"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("rule: Rule 1"), "{stdout}");
    assert!(stdout.contains("record #"), "{stdout}");
    assert!(stdout.contains("(influence feed)"), "{stdout}");
    assert!(stdout.contains("(trading feed)"), "{stdout}");
    assert!(stdout.contains("score: chain"), "{stdout}");
    assert!(
        stdout.contains("audit: every referenced node and arc exists in the TPIIN"),
        "{stdout}"
    );

    // Without an id the groups are listed for picking.
    let (stdout, _, ok) = run(&["explain"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("3 groups mined"), "{stdout}");
    assert!(stdout.contains("[  0]"), "{stdout}");

    // Out-of-range and malformed ids fail cleanly.
    let (_, stderr, ok) = run(&["explain", "99"]);
    assert!(!ok);
    assert!(stderr.contains("no group 99"), "{stderr}");
    let (_, stderr, ok) = run(&["explain", "zebra"]);
    assert!(!ok);
    assert!(stderr.contains("bad group id"), "{stderr}");
}

#[test]
fn detect_runs_every_requested_miner_strategy() {
    let (stdout, stderr, ok) = run(&[
        "detect", "--scale", "0.1", "--miner", "rules", "--miner", "circular",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("[rules] detected"), "{stdout}");
    assert!(stdout.contains("[circular] detected"), "{stdout}");

    let (_, stderr, ok) = run(&["detect", "--scale", "0.1", "--miner", "zebra"]);
    assert!(!ok);
    assert!(stderr.contains("zebra"), "{stderr}");
}

#[test]
fn explain_names_the_owning_miner_and_rejects_provenance_less_miners() {
    let (stdout, _, ok) = run(&["explain", "0"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("(miner `rules`)"), "{stdout}");

    // The baseline oracle mines the same groups but has no provenance
    // hook: a clear error, not a panic or an empty chain.
    let (_, stderr, ok) = run(&["explain", "0", "--miner", "baseline"]);
    assert!(!ok);
    assert!(stderr.contains("no provenance hook"), "{stderr}");
    assert!(stderr.contains("baseline"), "{stderr}");
}

#[test]
fn trace_out_exports_one_trace_spanning_cli_pipeline_detector() {
    let path = std::env::temp_dir().join(format!("tpiin-trace-{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let _ = std::fs::remove_file(&path);
    let (stdout, stderr, ok) = run(&["worked-example", "--trace-out", path_str]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("L6+LB"), "normal output untouched");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let json = tpiin_io::json::Json::parse(&text).expect("trace is valid JSON");

    // One trace id covers CLI dispatch, the fusion pipeline and the
    // detector: every span lives in the same file under that id, and
    // the id the CLI reported on stderr matches.
    let id = json
        .get("traceId")
        .and_then(|v| v.as_str())
        .expect("traceId present");
    assert_eq!(id.len(), 32, "trace id is 32 hex digits: {id}");
    assert!(stderr.contains(id), "stderr names the trace id: {stderr}");
    let Some(tpiin_io::json::Json::Array(events)) = json.get("traceEvents") else {
        panic!("traceEvents array missing: {text}");
    };
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in [
        "cli/worked-example",
        "fusion",
        "fusion/validate",
        "detect",
        "detect/build_tree",
        "detect/provenance",
    ] {
        assert!(names.contains(&expected), "{expected} missing: {names:?}");
    }
    // Chrome trace_event schema: complete events with ts/dur/pid/tid.
    for event in events {
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(event.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(event.get("dur").and_then(|v| v.as_f64()).is_some());
        assert!(event.get("tid").and_then(|v| v.as_f64()).is_some());
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bad_log_level_is_rejected() {
    let (_, stderr, ok) = run(&["detect", "--scale", "0.1", "--log-level", "loud"]);
    assert!(!ok);
    assert!(stderr.contains("unknown log level"), "{stderr}");
}

#[test]
fn log_level_debug_emits_stage_logs() {
    let (_, stderr, ok) = run(&["worked-example", "--log-level", "debug"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("contract_persons"), "{stderr}");
    assert!(stderr.contains("[debug]"), "{stderr}");
}
