//! Minimal flag parsing (no external dependency).

/// Parsed command-line options shared by all subcommands.
#[derive(Clone, Debug)]
pub struct Options {
    /// Province scale factor (1.0 = the paper's 4578-node network).
    pub scale: f64,
    /// RNG seed for the province and trading networks.
    pub seed: u64,
    /// Worker threads for detection (0 = serial).
    pub threads: usize,
    /// Trading probabilities for sweeps / single runs.
    pub probs: Vec<f64>,
    /// Verify against the global-traversal baseline.
    pub verify: bool,
    /// Groups to print for `detect`.
    pub top: usize,
    /// Output path for `export-dot` / `export-graphml`.
    pub out: Option<String>,
    /// Directory for `import` / `save-province` / `report`.
    pub dir: Option<String>,
    /// Trading arc for `query`, as `SELLER,BUYER` company labels.
    pub arc: Option<(String, String)>,
    /// Company label for `company`.
    pub company: Option<String>,
    /// Listen address for `serve` (default 127.0.0.1:7878).
    pub addr: Option<String>,
    /// Snapshot file for `serve` (served, reloadable) / `save-snapshot`.
    pub snapshot: Option<String>,
    /// Worker threads for the `serve` request pool.
    pub workers: usize,
    /// Per-request deadline for `serve`, in milliseconds.
    pub request_timeout_ms: u64,
    /// Latency threshold for the `serve` slow-request exemplar log, in
    /// milliseconds.
    pub slowlog_threshold_ms: u64,
    /// Recorder tick for the `serve` telemetry timeline, in
    /// milliseconds.
    pub telemetry_tick_ms: u64,
    /// Disable the `serve` telemetry recorder (timeline + alerts).
    pub no_telemetry: bool,
    /// Dataset for `serve`/`save-snapshot` without a snapshot file:
    /// `fig7` or `province`.
    pub dataset: Option<String>,
    /// Snapshot encoding for `save-snapshot`: `text` (default) or `bin`
    /// (the zero-copy binary format).  Readers auto-detect by magic.
    pub format: String,
    /// Watch the snapshot file and hot-reload on change (`serve`).
    pub watch: bool,
    /// Explicit log level (overrides the `TPIIN_LOG` environment variable).
    pub log_level: Option<tpiin_obs::Level>,
    /// Print the phase-timing table after the run.
    pub profile: bool,
    /// Write the run profile as JSON to this path.
    pub metrics_out: Option<String>,
    /// Write a Chrome `trace_event` JSON of the whole run to this path
    /// (one trace id spanning CLI, pipeline and detector).
    pub trace_out: Option<String>,
    /// Group index for `explain` (also accepted as a positional
    /// argument: `tpiin explain 0`).
    pub group: Option<usize>,
    /// Miner specs for `detect`/`serve` (repeatable `--miner NAME`).
    /// Empty means the command's default strategy set.
    pub miners: Vec<String>,
    /// Batches in the feed for `mutation-stream`.
    pub batches: usize,
    /// Random trading records per batch for `mutation-stream`.
    pub records: usize,
    /// Evasion rings planted mid-stream for `mutation-stream`.
    pub planted: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1.0,
            seed: 20170417,
            threads: 0,
            probs: Vec::new(),
            verify: false,
            top: 10,
            out: None,
            dir: None,
            arc: None,
            company: None,
            addr: None,
            snapshot: None,
            workers: 4,
            request_timeout_ms: 2000,
            slowlog_threshold_ms: 250,
            telemetry_tick_ms: 1000,
            no_telemetry: false,
            dataset: None,
            format: "text".to_string(),
            watch: false,
            log_level: None,
            profile: false,
            metrics_out: None,
            trace_out: None,
            group: None,
            miners: Vec::new(),
            batches: 20,
            records: 64,
            planted: 3,
        }
    }
}

/// The paper's twenty trading-probability settings (Table 1, column 1).
pub const PAPER_PROBS: [f64; 20] = [
    0.002, 0.003, 0.004, 0.005, 0.006, 0.008, 0.010, 0.012, 0.014, 0.016, 0.018, 0.020, 0.030,
    0.040, 0.050, 0.060, 0.070, 0.080, 0.090, 0.100,
];

impl Options {
    /// Parses `--flag value` pairs; unknown flags are errors.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    opts.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                        return Err("--scale must be in (0, 1]".into());
                    }
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    opts.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--probs" => {
                    opts.probs = value("--probs")?
                        .split(',')
                        .map(|s| s.trim().parse::<f64>().map_err(|e| format!("--probs: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--top" => {
                    opts.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?;
                }
                "--out" => opts.out = Some(value("--out")?),
                "--dir" => opts.dir = Some(value("--dir")?),
                "--company" => opts.company = Some(value("--company")?),
                "--arc" => {
                    let raw = value("--arc")?;
                    let (s_label, b_label) = raw
                        .split_once(',')
                        .ok_or_else(|| "--arc expects SELLER,BUYER".to_string())?;
                    opts.arc = Some((s_label.trim().to_string(), b_label.trim().to_string()));
                }
                "--addr" => opts.addr = Some(value("--addr")?),
                "--snapshot" => opts.snapshot = Some(value("--snapshot")?),
                "--workers" => {
                    opts.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?;
                }
                "--request-timeout-ms" => {
                    opts.request_timeout_ms = value("--request-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--request-timeout-ms: {e}"))?;
                }
                "--slowlog-threshold-ms" => {
                    opts.slowlog_threshold_ms = value("--slowlog-threshold-ms")?
                        .parse()
                        .map_err(|e| format!("--slowlog-threshold-ms: {e}"))?;
                }
                "--telemetry-tick-ms" => {
                    opts.telemetry_tick_ms = value("--telemetry-tick-ms")?
                        .parse()
                        .map_err(|e| format!("--telemetry-tick-ms: {e}"))?;
                    if opts.telemetry_tick_ms == 0 {
                        return Err("--telemetry-tick-ms must be positive".into());
                    }
                }
                "--no-telemetry" => opts.no_telemetry = true,
                "--dataset" => {
                    let name = value("--dataset")?;
                    if name != "fig7" && name != "province" {
                        return Err(format!("--dataset must be fig7 or province, got `{name}`"));
                    }
                    opts.dataset = Some(name);
                }
                "--format" => {
                    let name = value("--format")?;
                    if name != "text" && name != "bin" {
                        return Err(format!("--format must be text or bin, got `{name}`"));
                    }
                    opts.format = name;
                }
                "--watch" => opts.watch = true,
                "--verify" => opts.verify = true,
                "--log-level" => {
                    opts.log_level = Some(
                        value("--log-level")?
                            .parse()
                            .map_err(|e| format!("--log-level: {e}"))?,
                    );
                }
                "--profile" => opts.profile = true,
                "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
                "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
                "--group" => {
                    opts.group = Some(
                        value("--group")?
                            .parse()
                            .map_err(|e| format!("--group: {e}"))?,
                    );
                }
                "--miner" => opts.miners.push(value("--miner")?),
                "--batches" => {
                    opts.batches = value("--batches")?
                        .parse()
                        .map_err(|e| format!("--batches: {e}"))?;
                }
                "--records" => {
                    opts.records = value("--records")?
                        .parse()
                        .map_err(|e| format!("--records: {e}"))?;
                }
                "--planted" => {
                    opts.planted = value("--planted")?
                        .parse()
                        .map_err(|e| format!("--planted: {e}"))?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The probability list to sweep: `--probs` if given, else the
    /// paper's twenty settings.
    pub fn sweep_probs(&self) -> Vec<f64> {
        if self.probs.is_empty() {
            PAPER_PROBS.to_vec()
        } else {
            self.probs.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&argv)
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale, 1.0);
        assert_eq!(opts.seed, 20170417);
        assert_eq!(opts.threads, 0);
        assert!(!opts.verify);
        assert_eq!(opts.sweep_probs().len(), PAPER_PROBS.len());
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--threads",
            "4",
            "--probs",
            "0.01, 0.02",
            "--verify",
            "--top",
            "3",
            "--out",
            "x.dot",
            "--dir",
            "d",
            "--arc",
            "C1, C2",
            "--addr",
            "127.0.0.1:0",
            "--snapshot",
            "s.tpiin",
            "--workers",
            "8",
            "--request-timeout-ms",
            "500",
            "--slowlog-threshold-ms",
            "75",
            "--telemetry-tick-ms",
            "200",
            "--no-telemetry",
            "--dataset",
            "fig7",
            "--format",
            "bin",
            "--watch",
            "--log-level",
            "debug",
            "--profile",
            "--metrics-out",
            "p.json",
            "--trace-out",
            "t.json",
            "--group",
            "2",
            "--miner",
            "rules",
            "--miner",
            "circular",
            "--batches",
            "6",
            "--records",
            "16",
            "--planted",
            "1",
        ])
        .unwrap();
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.probs, vec![0.01, 0.02]);
        assert!(opts.verify);
        assert_eq!(opts.top, 3);
        assert_eq!(opts.out.as_deref(), Some("x.dot"));
        assert_eq!(opts.dir.as_deref(), Some("d"));
        assert_eq!(opts.arc, Some(("C1".to_string(), "C2".to_string())));
        assert_eq!(opts.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.snapshot.as_deref(), Some("s.tpiin"));
        assert_eq!(opts.workers, 8);
        assert_eq!(opts.request_timeout_ms, 500);
        assert_eq!(opts.slowlog_threshold_ms, 75);
        assert_eq!(opts.telemetry_tick_ms, 200);
        assert!(opts.no_telemetry);
        assert_eq!(opts.dataset.as_deref(), Some("fig7"));
        assert_eq!(opts.format, "bin");
        assert!(opts.watch);
        assert_eq!(opts.sweep_probs(), vec![0.01, 0.02]);
        assert_eq!(opts.log_level, Some(tpiin_obs::Level::Debug));
        assert!(opts.profile);
        assert_eq!(opts.metrics_out.as_deref(), Some("p.json"));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.group, Some(2));
        assert_eq!(opts.miners, vec!["rules", "circular"]);
        assert_eq!(opts.batches, 6);
        assert_eq!(opts.records, 16);
        assert_eq!(opts.planted, 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--scale"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--scale", "2.0"]).unwrap_err().contains("(0, 1]"));
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--probs", "a,b"]).unwrap_err().contains("--probs"));
        assert!(parse(&["--arc", "C1"])
            .unwrap_err()
            .contains("SELLER,BUYER"));
        let err = parse(&["--log-level", "loud"]).unwrap_err();
        assert!(err.contains("--log-level"), "{err}");
        assert!(err.contains("unknown log level"), "{err}");
        assert!(parse(&["--dataset", "mars"])
            .unwrap_err()
            .contains("fig7 or province"));
        assert!(parse(&["--format", "xml"])
            .unwrap_err()
            .contains("text or bin"));
        assert!(parse(&["--workers", "many"])
            .unwrap_err()
            .contains("--workers"));
        assert!(parse(&["--miner"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--telemetry-tick-ms", "0"])
            .unwrap_err()
            .contains("positive"));
    }
}
