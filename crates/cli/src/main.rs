//! `tpiin` — end-to-end command-line interface.
//!
//! Subcommands map onto the paper's experiments:
//!
//! * `table1`         — regenerate Table 1 (the trading-probability sweep);
//! * `stats`          — fusion-stage statistics (Figs. 11–16);
//! * `worked-example` — Figs. 7–10: pattern base and groups with proofs;
//! * `cases`          — the three Section 3.1 case studies;
//! * `detect`         — mine one random TPIIN and print top-scored groups;
//! * `export-dot`     — Graphviz export of a generated TPIIN.
//!
//! Run `tpiin help` for flags.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("error: {err}");
            // Walk the source chain so layered failures stay readable,
            // skipping causes whose message the layer above already shows.
            let mut prev = err.to_string();
            let mut source = std::error::Error::source(&err);
            while let Some(cause) = source {
                let msg = cause.to_string();
                if !prev.contains(&msg) {
                    eprintln!("  caused by: {msg}");
                }
                prev = msg;
                source = cause.source();
            }
            exit_code(&err)
        }
    };
    std::process::exit(code);
}

/// The single place error categories map onto process exit codes:
/// 2 = bad invocation, 3 = invalid input data, 4 = file trouble,
/// 5 = daemon startup failure.
fn exit_code(err: &tpiin::Error) -> i32 {
    match err {
        tpiin::Error::Usage(_) => 2,
        tpiin::Error::Model(_) | tpiin::Error::Fusion(_) => 3,
        tpiin::Error::Io(_) | tpiin::Error::File { .. } => 4,
        tpiin::Error::Serve(_) => 5,
        _ => 1, // `Error` is non_exhaustive
    }
}

fn run(argv: &[String]) -> Result<(), tpiin::Error> {
    let Some(cmd) = argv.first() else {
        print!("{}", commands::HELP);
        return Ok(());
    };
    let opts = args::Options::parse(&argv[1..]).map_err(tpiin::Error::Usage)?;

    tpiin_obs::log::init_from_env();
    if let Some(level) = opts.log_level {
        // Explicit --log-level wins over TPIIN_LOG.
        tpiin_obs::log::set_level(Some(level));
    }
    let profiled = opts.profile || opts.metrics_out.is_some();
    if profiled {
        tpiin_obs::set_profiling(true);
        tpiin_obs::global().reset();
    }

    dispatch(cmd, &opts)?;

    if profiled {
        let profile = tpiin_obs::RunProfile::capture();
        if opts.profile {
            eprintln!("\n# phase timings");
            eprint!("{}", profile.render_table());
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, profile.to_json().to_pretty())
                .map_err(|e| tpiin::Error::file(path, e))?;
            eprintln!("profile written to {path}");
        }
    }
    Ok(())
}

fn dispatch(cmd: &str, opts: &args::Options) -> Result<(), tpiin::Error> {
    match cmd {
        "table1" => commands::table1(opts),
        "stats" => commands::stats(opts),
        "worked-example" => commands::worked_example(),
        "cases" => commands::cases(),
        "detect" => commands::detect_one(opts),
        "export-dot" => commands::export_dot(opts),
        "export-graphml" => commands::export_graphml(opts),
        "query" => commands::query(opts),
        "save-province" => commands::save_province(opts),
        "import" => commands::import(opts),
        "report" => commands::report(opts),
        "two-phase" => commands::two_phase(opts),
        "company" => commands::company(opts),
        "analyze" => commands::analyze(opts),
        "serve" => commands::serve(opts),
        "save-snapshot" => commands::save_snapshot(opts),
        "help" | "--help" | "-h" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(tpiin::Error::Usage(format!(
            "unknown command `{other}`; see `tpiin help`"
        ))),
    }
}
