//! `tpiin` — end-to-end command-line interface.
//!
//! Subcommands map onto the paper's experiments:
//!
//! * `table1`         — regenerate Table 1 (the trading-probability sweep);
//! * `stats`          — fusion-stage statistics (Figs. 11–16);
//! * `worked-example` — Figs. 7–10: pattern base and groups with proofs;
//! * `cases`          — the three Section 3.1 case studies;
//! * `detect`         — mine one random TPIIN and print top-scored groups;
//! * `explain`        — the provenance chain behind one mined group;
//! * `export-dot`     — Graphviz export of a generated TPIIN.
//!
//! Run `tpiin help` for flags.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("error: {err}");
            // Walk the source chain so layered failures stay readable,
            // skipping causes whose message the layer above already shows.
            let mut prev = err.to_string();
            let mut source = std::error::Error::source(&err);
            while let Some(cause) = source {
                let msg = cause.to_string();
                if !prev.contains(&msg) {
                    eprintln!("  caused by: {msg}");
                }
                prev = msg;
                source = cause.source();
            }
            exit_code(&err)
        }
    };
    std::process::exit(code);
}

/// The single place error categories map onto process exit codes:
/// 2 = bad invocation, 3 = invalid input data, 4 = file trouble,
/// 5 = daemon startup failure.
fn exit_code(err: &tpiin::Error) -> i32 {
    match err {
        tpiin::Error::Usage(_) => 2,
        tpiin::Error::Model(_) | tpiin::Error::Fusion(_) => 3,
        tpiin::Error::Io(_) | tpiin::Error::File { .. } => 4,
        tpiin::Error::Serve(_) | tpiin::Error::Daemon { .. } => 5,
        _ => 1, // `Error` is non_exhaustive
    }
}

fn run(argv: &[String]) -> Result<(), tpiin::Error> {
    let Some(cmd) = argv.first() else {
        print!("{}", commands::HELP);
        return Ok(());
    };
    // `explain` takes its group id positionally: `tpiin explain 0`.
    let mut rest = &argv[1..];
    let mut positional = None;
    if cmd == "explain" {
        if let Some((first, tail)) = rest.split_first() {
            if !first.starts_with("--") {
                positional = Some(first.clone());
                rest = tail;
            }
        }
    }
    let mut opts = args::Options::parse(rest).map_err(tpiin::Error::Usage)?;
    if let Some(text) = positional {
        opts.group = Some(
            text.parse()
                .map_err(|e| tpiin::Error::Usage(format!("bad group id `{text}`: {e}")))?,
        );
    }

    tpiin_obs::log::init_from_env();
    if let Some(level) = opts.log_level {
        // Explicit --log-level wins over TPIIN_LOG.
        tpiin_obs::log::set_level(Some(level));
    }
    let profiled = opts.profile || opts.metrics_out.is_some();
    if profiled {
        tpiin_obs::set_profiling(true);
        tpiin_obs::global().reset();
    }
    // `--trace-out` installs one process-global trace context, so a
    // single trace id covers CLI dispatch, pipeline and detector spans
    // on every thread.
    let trace = opts
        .trace_out
        .as_ref()
        .map(|_| std::sync::Arc::new(tpiin_obs::TraceContext::new()));
    if let Some(trace) = &trace {
        tpiin_obs::set_active_trace(Some(std::sync::Arc::clone(trace)));
    }

    let started = std::time::Instant::now();
    let outcome = dispatch(cmd, &opts);

    if let Some(trace) = trace {
        // Root span recorded straight into the trace (not the profiling
        // registry, whose phase tree the CLI layer is not part of).
        trace.record_span(&format!("cli/{cmd}"), started, started.elapsed());
        tpiin_obs::set_active_trace(None);
        let path = opts.trace_out.as_ref().expect("trace implies a path");
        std::fs::write(path, trace.to_chrome_json().to_pretty())
            .map_err(|e| tpiin::Error::file(path, e))?;
        eprintln!("trace {} written to {path}", trace.id());
    }
    outcome?;

    if profiled {
        // Final allocator-ledger and /proc/self/stat gauges so the
        // profile carries the run's process-level memory footprint.
        tpiin_obs::proc::record_gauges(tpiin_obs::global());
        let profile = tpiin_obs::RunProfile::capture();
        if opts.profile {
            eprintln!("\n# phase timings");
            eprint!("{}", profile.render_table());
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, profile.to_json().to_pretty())
                .map_err(|e| tpiin::Error::file(path, e))?;
            eprintln!("profile written to {path}");
        }
    }
    Ok(())
}

fn dispatch(cmd: &str, opts: &args::Options) -> Result<(), tpiin::Error> {
    match cmd {
        "table1" => commands::table1(opts),
        "stats" => commands::stats(opts),
        "worked-example" => commands::worked_example(),
        "cases" => commands::cases(),
        "detect" => commands::detect_one(opts),
        "explain" => commands::explain(opts),
        "export-dot" => commands::export_dot(opts),
        "export-graphml" => commands::export_graphml(opts),
        "query" => commands::query(opts),
        "save-province" => commands::save_province(opts),
        "mutation-stream" => commands::mutation_stream(opts),
        "import" => commands::import(opts),
        "report" => commands::report(opts),
        "two-phase" => commands::two_phase(opts),
        "company" => commands::company(opts),
        "analyze" => commands::analyze(opts),
        "serve" => commands::serve(opts),
        "save-snapshot" => commands::save_snapshot(opts),
        "health" => commands::health(opts),
        "help" | "--help" | "-h" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(tpiin::Error::Usage(format!(
            "unknown command `{other}`; see `tpiin help`"
        ))),
    }
}
