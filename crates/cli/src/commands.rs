//! Subcommand implementations.

use crate::args::Options;
use std::time::Instant;
use tpiin_core::baseline::detect_baseline;
use tpiin_core::{
    detect, generate_pattern_base, mine_with_obs, segment_tpiin, Detector, DetectorConfig,
    MineContext, MinerRegistry, RULES_MINER,
};
use tpiin_datagen::{
    add_random_trading, case1_registry, case2_registry, case3_registry, fig7_registry,
    generate_province, ProvinceConfig,
};
use tpiin_fusion::{fuse, ArcColor, NodeColor, Tpiin};
use tpiin_model::SourceRegistry;

pub const HELP: &str = "\
tpiin — mining suspicious tax evasion groups (ICDE 2017 reproduction)

USAGE: tpiin <command> [flags]

COMMANDS:
  table1          Regenerate Table 1: the trading-probability sweep
  stats           Fusion-stage statistics (Figs. 11-16)
  worked-example  Figs. 7-10: pattern base and groups with explanations
  cases           The three Section 3.1 case studies
  detect          Mine one random TPIIN with each `--miner` strategy
                  (default rules); print top-scored groups per miner
  explain         Provenance chain of one group: `explain <group-id>`
                  (without an id: list the groups; --snapshot/--dataset
                  pick the network, default fig7; --miner picks the
                  strategy that owns the group, default rules)
  query           Groups behind one trading arc (--arc SELLER,BUYER)
  save-province   Write the synthetic province as CSV files (--dir)
  mutation-stream Write a replayable delta feed: base registry CSV
                  (--dir) + JSONL mutation batches (--out), planted
                  evasion rings appearing only mid-stream
  import          Load a CSV registry (--dir), detect, print summary
  report          Detect and write susGroup/susTrade/summary files (--dir)
  two-phase       Full Fig. 4 flow: MSG + ITE screening vs one-by-one
  company         Fig. 17/18 investment-tree view (--company LABEL)
  analyze         Fig. 19 preliminary analysis of one company's IATs
  export-dot      Export a generated TPIIN as Graphviz DOT
  export-graphml  Export a generated TPIIN as GraphML (Gephi)
  serve           Run the query/ingest daemon (Section 6 online queries)
  save-snapshot   Write a fused TPIIN snapshot file (--out; for serve)
  health          Poll a live daemon (--addr) and render its telemetry:
                  alert states, timeline sparklines and the slowlog
                  (--watch re-polls every two seconds)
  help            Show this help

FLAGS:
  --scale F     province scale factor in (0,1] (default 1.0 = 4578 nodes)
  --seed N      RNG seed (default 20170417)
  --threads N   detection worker threads (default 0 = serial)
  --probs LIST  comma-separated trading probabilities (default: paper's 20)
  --verify      also run the global-traversal baseline and compare
  --top N       groups to print for `detect`/`query` (default 10)
  --out PATH    output file for exports (default stdout)
  --dir PATH    directory for save-province/import/report
  --arc S,B     seller,buyer company labels for `query`
  --company L   company label for `company`
  --miner NAME  detection strategy for `detect`/`explain`/`serve`
                (repeatable): rules | baseline | circular |
                windowed:<inner>@<start>..<end>  (feed sequence numbers)
  --batches N   mutation-stream: batches in the feed (default 20)
  --records N   mutation-stream: trading records per batch (default 64)
  --planted N   mutation-stream: evasion rings planted mid-stream
                (default 3)

SERVING (`serve` / `save-snapshot`):
  --addr A:P    listen address (default 127.0.0.1:7878; port 0 = ephemeral)
  --snapshot P  serve this snapshot file; enables POST /reload
  --workers N   request worker threads (default 4)
  --request-timeout-ms N  per-request deadline (default 2000)
  --dataset D   fig7 | province — dataset when no --snapshot (default fig7)
  --dir PATH    serve a CSV registry registry-backed: POST /ingest
                accepts the full mutation vocabulary (e.g. the feed
                `mutation-stream` writes), not just trading appends
  --format F    save-snapshot encoding: text | bin (zero-copy binary;
                readers auto-detect either format by magic bytes)
  --watch       poll the snapshot file and hot-reload on change
                (on `health`: keep polling the daemon every 2s)
  --slowlog-threshold-ms N  requests slower than this land in the
                GET /slowlog exemplar ring (default 250)
  --telemetry-tick-ms N  timeline recorder tick (default 1000)
  --no-telemetry  disable the timeline recorder and SLO alerts
                (GET /timeline and /alerts answer 404)
  --miner NAME  strategies snapshot builds run (repeatable; default
                rules + circular; the first is the primary /groups view)

OBSERVABILITY (all commands):
  --log-level L   stderr log level: error|warn|info|debug|trace
                  (overrides the TPIIN_LOG environment variable)
  --profile       print the phase-timing table on stderr after the run
  --metrics-out P write the run profile (phase timings, counters,
                  per-thread stats) as JSON to path P
  --trace-out P   write a Chrome trace_event JSON of the whole run to P
                  (one trace id across CLI, pipeline and detector;
                  opens in Perfetto / chrome://tracing)
  --group N       group id for `explain` (same as the positional form)
";

fn province(opts: &Options) -> (SourceRegistry, ProvinceConfig) {
    let config = if (opts.scale - 1.0).abs() < f64::EPSILON {
        ProvinceConfig {
            seed: opts.seed,
            ..ProvinceConfig::default()
        }
    } else {
        ProvinceConfig {
            seed: opts.seed,
            ..ProvinceConfig::scaled(opts.scale)
        }
    };
    (generate_province(&config), config)
}

fn detector(opts: &Options, collect: bool) -> Detector {
    Detector::new(DetectorConfig {
        collect_groups: collect,
        threads: opts.threads,
        ..Default::default()
    })
}

/// The miner set `--miner` flags request (default: the Rule 1/Rule 2
/// detector alone).
fn miner_registry(opts: &Options) -> Result<MinerRegistry, tpiin::Error> {
    if opts.miners.is_empty() {
        MinerRegistry::from_specs([RULES_MINER])
    } else {
        MinerRegistry::from_specs(&opts.miners)
    }
    .map_err(tpiin::Error::Usage)
}

/// `tpiin table1` — one row per trading probability, same columns as the
/// paper's Table 1 plus wall-clock time.
pub fn table1(opts: &Options) -> Result<(), tpiin::Error> {
    let (base_registry, config) = province(opts);
    println!(
        "# Table 1 reproduction — {} directors, {} legal persons, {} companies (seed {})",
        config.directors, config.legal_persons, config.companies, config.seed
    );
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "p",
        "avg_deg",
        "complex",
        "simple",
        "susp_arcs",
        "acc_grp",
        "total_arcs",
        "acc_arc",
        "susp_%",
        "time_ms"
    );
    for p in opts.sweep_probs() {
        let mut registry = base_registry.clone();
        // Each probability gets its own trading network, seeded from the
        // base seed and the probability (the paper regenerates per row).
        let trade_seed = opts.seed ^ (p * 1e6) as u64;
        add_random_trading(&mut registry, p, trade_seed);
        let (tpiin, _) = fuse(&registry)?;
        // The paper's "average node degree" divides by the source node
        // count (4578), not the post-contraction TPIIN node count.
        let source_nodes = registry.person_count() + registry.company_count();
        let avg_degree = tpiin.graph.edge_count() as f64 / source_nodes as f64;
        let start = Instant::now();
        let result = detector(opts, false).detect(&tpiin);
        let elapsed = start.elapsed().as_millis();
        let (acc_groups, acc_arcs) = if opts.verify {
            let full = detector(opts, true).detect(&tpiin);
            let baseline = detect_baseline(&tpiin, 100_000_000);
            let mut a: Vec<_> = full.groups.iter().map(|g| g.key()).collect();
            let mut b: Vec<_> = baseline.groups.iter().map(|g| g.key()).collect();
            a.sort();
            b.sort();
            let ga = if a == b && !baseline.overflowed {
                "100%"
            } else {
                "DIFF"
            };
            let aa = if full.suspicious_trading_arcs == baseline.suspicious_trading_arcs {
                "100%"
            } else {
                "DIFF"
            };
            (ga, aa)
        } else {
            ("-", "-")
        };
        println!(
            "{:>7.3} {:>9.3} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8} {:>8.4} {:>9}",
            p,
            avg_degree,
            result.complex_group_count,
            result.simple_group_count,
            result.suspicious_trading_arcs.len(),
            acc_groups,
            result.total_trading_arcs,
            acc_arcs,
            result.suspicious_percentage(),
            elapsed
        );
    }
    Ok(())
}

/// `tpiin stats` — the fusion report (Figs. 11–16 numbers) plus
/// segmentation statistics.
pub fn stats(opts: &Options) -> Result<(), tpiin::Error> {
    let (mut registry, config) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, report) = fuse(&registry)?;
    println!("# Network construction (Figs. 11-16), trading probability {p}");
    println!("{}", report.summary());
    let subs = segment_tpiin(&tpiin);
    let with_trades = subs.iter().filter(|s| s.trading_arc_count > 0).count();
    let largest = subs.iter().map(|s| s.node_count()).max().unwrap_or(0);
    println!(
        "segmentation: {} subTPIINs ({} with trading arcs), largest has {} nodes",
        subs.len(),
        with_trades,
        largest
    );
    println!(
        "expected suspicious fraction from cluster spectrum: {:.3}%",
        100.0 * config.expected_suspicious_fraction()
    );
    if opts.verify {
        println!("\n# Appendix A property verification");
        println!("{}", tpiin_fusion::verify_tpiin(&tpiin, true).summary());
    }
    Ok(())
}

/// `tpiin worked-example` — Figs. 7–10 and the three groups.
pub fn worked_example() -> Result<(), tpiin::Error> {
    let registry = fig7_registry();
    let (tpiin, report) = fuse(&registry)?;
    println!("# Fig. 7 -> Fig. 8 fusion");
    println!("{}", report.summary());
    let subs = segment_tpiin(&tpiin);
    println!("\n# Fig. 10 — potential component pattern base");
    let base = generate_pattern_base(&subs[0], usize::MAX)
        .ok_or_else(|| tpiin::Error::Usage("pattern tree overflow on the worked example".into()))?;
    for (i, pattern) in base.iter().enumerate() {
        println!("{:>2}. {}", i + 1, pattern.render(&tpiin));
    }
    println!("\n# Suspicious groups (Section 4.3)");
    let result = detect(&tpiin);
    for group in &result.groups {
        let score = tpiin_core::score_group(&tpiin, group);
        println!("- {}", group.explain(&tpiin));
        println!(
            "  score: chain strength {:.3} x volume {:.0} = {:.0}",
            score.chain_strength, score.trade_volume, score.score
        );
    }
    Ok(())
}

/// `tpiin cases` — Section 3.1 case studies.
pub fn cases() -> Result<(), tpiin::Error> {
    for (name, registry, expected_adjustment) in [
        (
            "Case 1 (transfer pricing via kin legal persons)",
            case1_registry(),
            "25.52M RMB",
        ),
        (
            "Case 2 (same partial investor, cross-border)",
            case2_registry(),
            "$5000",
        ),
        (
            "Case 3 (interlocked directors, export)",
            case3_registry(),
            "19.89M RMB",
        ),
    ] {
        let (tpiin, _) = fuse(&registry)?;
        let result = detect(&tpiin);
        println!("# {name} — tax adjustment in the paper: {expected_adjustment}");
        for group in &result.groups {
            println!("  {}", group.explain(&tpiin));
            let score = tpiin_core::score_group(&tpiin, group);
            println!(
                "  score: chain strength {:.3} x volume {:.0} = {:.0}",
                score.chain_strength, score.trade_volume, score.score
            );
        }
        println!();
    }
    Ok(())
}

/// `tpiin detect` — one random TPIIN, mined by every requested
/// `--miner` strategy (default: rules), top groups printed per miner.
pub fn detect_one(opts: &Options) -> Result<(), tpiin::Error> {
    let miners = miner_registry(opts)?;
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, _) = fuse(&registry)?;
    let ctx = MineContext {
        config: DetectorConfig {
            collect_groups: true,
            threads: opts.threads,
            ..Default::default()
        },
        tax_rates: registry.company_tax_rates(),
    };
    for miner in miners.iter() {
        let name = miner.name().to_string();
        let start = Instant::now();
        let result = mine_with_obs(miner, &tpiin, &ctx);
        println!(
            "[{name}] detected {} groups ({} complex, {} simple) behind {} of {} trading arcs in {:?}",
            result.group_count(),
            result.complex_group_count,
            result.simple_group_count,
            result.suspicious_trading_arcs.len(),
            result.total_trading_arcs,
            start.elapsed()
        );
        if miner.supports_provenance() {
            // Rule 1/Rule 2 shaped groups rank by chain strength x
            // trade volume.
            let mut scored: Vec<_> = result
                .groups
                .iter()
                .map(|g| (tpiin_core::score_group(&tpiin, g), g))
                .collect();
            scored.sort_by(|a, b| b.0.score.total_cmp(&a.0.score));
            println!("top {} groups by score:", opts.top.min(scored.len()));
            for (score, group) in scored.iter().take(opts.top) {
                println!("  [{:>12.0}] {}", score.score, group.explain(&tpiin));
            }
        } else {
            // Other strategies (e.g. circular trading) already order
            // their groups by their own ranking.
            println!("top {} groups:", opts.top.min(result.groups.len()));
            for group in result.groups.iter().take(opts.top) {
                println!("  {}", group.explain(&tpiin));
            }
        }
        println!();
    }
    Ok(())
}

/// `tpiin explain` — the full provenance chain behind one mined group:
/// matched rule, every arc resolved to its winning source record,
/// contraction lineage and the per-term score, followed by a self-audit
/// that every referenced node and arc exists in the TPIIN.
pub fn explain(opts: &Options) -> Result<(), tpiin::Error> {
    let miner = match opts.miners.as_slice() {
        [] => MinerRegistry::resolve(RULES_MINER),
        [spec] => MinerRegistry::resolve(spec),
        _ => {
            return Err(tpiin::Error::Usage(
                "explain takes at most one --miner (one strategy owns a group id)".into(),
            ))
        }
    }
    .map_err(tpiin::Error::Usage)?;
    let name = miner.name().to_string();
    let tpiin = serving_tpiin(opts)?;
    let ctx = MineContext::with_config(DetectorConfig {
        collect_groups: true,
        threads: opts.threads,
        ..Default::default()
    });
    let result = miner.mine(&tpiin, &ctx);
    let Some(id) = opts.group else {
        // No id: list the groups so the investigator can pick one.
        println!(
            "{} groups mined by `{name}`; rerun as `tpiin explain <group-id>`:",
            result.groups.len()
        );
        for (i, group) in result.groups.iter().enumerate() {
            if miner.supports_provenance() {
                let score = tpiin_core::score_group(&tpiin, group);
                println!(
                    "  [{i:>3}] score {:>12.0}  {}",
                    score.score,
                    group.explain(&tpiin)
                );
            } else {
                println!("  [{i:>3}] {}", group.explain(&tpiin));
            }
        }
        return Ok(());
    };
    let Some(group) = result.groups.get(id) else {
        return Err(tpiin::Error::Usage(format!(
            "no group {id}: miner `{name}` mined {} groups (ids 0..{})",
            result.groups.len(),
            result.groups.len().saturating_sub(1)
        )));
    };
    let assembled;
    let prov = match result.provenances.get(id) {
        Some(prov) => prov,
        // Counting-only detections carry no pre-assembled provenance;
        // ask the owning miner's hook (only Rule 1/Rule 2 shaped
        // strategies have one).
        None => match miner.provenance(&tpiin, group) {
            Some(prov) => {
                assembled = prov;
                &assembled
            }
            None => {
                return Err(tpiin::Error::Usage(format!(
                    "miner `{name}` has no provenance hook: group {id} carries no \
                     Rule 1/Rule 2 evidence chain to render (its pattern is: {})",
                    group.explain(&tpiin)
                )))
            }
        },
    };
    println!("group {id} of {} (miner `{name}`)", result.groups.len());
    print!("{}", prov.render(group, &tpiin));
    let (influence, trading) = prov.source_records();
    println!("  contributing records: influence feed {influence:?}, trading feed {trading:?}");
    prov.audit(&tpiin).map_err(|violation| {
        tpiin::Error::Usage(format!("provenance audit failed: {violation}"))
    })?;
    println!("  audit: every referenced node and arc exists in the TPIIN");
    Ok(())
}

/// `tpiin export-dot` — Graphviz rendering of a generated TPIIN, colored
/// like the paper's figures (red companies, black persons, blue influence
/// arcs, black trading arcs).
pub fn export_dot(opts: &Options) -> Result<(), tpiin::Error> {
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, _) = fuse(&registry)?;
    let text = render_dot(&tpiin);
    match &opts.out {
        Some(path) => std::fs::write(path, text).map_err(|e| tpiin::Error::file(path, e))?,
        None => print!("{text}"),
    }
    Ok(())
}

fn render_dot(tpiin: &Tpiin) -> String {
    let style = tpiin_graph::DotStyle {
        node_label: Box::new(|_, n: &tpiin_fusion::TpiinNode| n.label().to_string()),
        node_attrs: Box::new(|_, n| match n.color() {
            NodeColor::Company => "color=red".to_string(),
            NodeColor::Person => "color=black".to_string(),
        }),
        edge_attrs: Box::new(|arc: &tpiin_fusion::TpiinArc| match arc.color {
            ArcColor::Influence => "color=blue".to_string(),
            ArcColor::Trading => "color=black".to_string(),
        }),
    };
    tpiin_graph::dot(&tpiin.graph, &style)
}

/// `tpiin save-province` — write the synthetic registry as CSV files.
pub fn save_province(opts: &Options) -> Result<(), tpiin::Error> {
    let dir = opts
        .dir
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("save-province requires --dir".into()))?;
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    tpiin_io::registry_csv::save_registry(&registry, std::path::Path::new(dir))?;
    println!(
        "wrote {} persons, {} companies, {} trading records to {dir}/",
        registry.person_count(),
        registry.company_count(),
        registry.tradings().len()
    );
    Ok(())
}

/// `tpiin mutation-stream` — write a replayable delta feed: the base
/// antecedent registry as CSV (`--dir`) and the mutation batches as a
/// JSONL feed (`--out`), one `POST /ingest` body per line.
pub fn mutation_stream(opts: &Options) -> Result<(), tpiin::Error> {
    let dir = opts.dir.as_deref().ok_or_else(|| {
        tpiin::Error::Usage("mutation-stream requires --dir (base registry)".into())
    })?;
    let out = opts
        .out
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("mutation-stream requires --out (feed file)".into()))?;
    let stream = tpiin_datagen::generate_mutation_stream(&tpiin_datagen::MutationStreamConfig {
        scale: opts.scale,
        seed: opts.seed,
        batches: opts.batches,
        records_per_batch: opts.records,
        planted_groups: opts.planted,
    });
    tpiin_io::registry_csv::save_registry(&stream.base, std::path::Path::new(dir))?;
    tpiin_io::mutation_feed::save_feed(&stream.batches, std::path::Path::new(out))?;
    let mutations: usize = stream.batches.iter().map(|b| b.mutations.len()).sum();
    println!(
        "wrote base registry ({} persons, {} companies) to {dir}/ and {} batches \
         ({mutations} mutations, {} rings planted at batches {:?}) to {out}",
        stream.base.person_count(),
        stream.base.company_count(),
        stream.batches.len(),
        stream.planted_at.len(),
        stream.planted_at,
    );
    Ok(())
}

/// `tpiin import` — load a CSV registry, fuse, detect, print a summary.
pub fn import(opts: &Options) -> Result<(), tpiin::Error> {
    let dir = opts
        .dir
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("import requires --dir".into()))?;
    let registry = tpiin_io::registry_csv::load_registry(std::path::Path::new(dir))?;
    let (tpiin, report) = fuse(&registry)?;
    println!("{}", report.summary());
    let result = detector(opts, false).detect(&tpiin);
    println!("{}", result.summary());
    Ok(())
}

/// `tpiin report` — detect on a generated (or imported) TPIIN and write
/// the paper's susGroup/susTrade files plus summary.json.
pub fn report(opts: &Options) -> Result<(), tpiin::Error> {
    let dir = opts
        .dir
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("report requires --dir".into()))?;
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, _) = fuse(&registry)?;
    let result = detector(opts, true).detect(&tpiin);
    let files = tpiin_io::reports::write_reports(&tpiin, &result, std::path::Path::new(dir))?;
    println!(
        "wrote {files} files to {dir}/ ({} groups across {} subTPIINs)",
        result.group_count(),
        result.per_subtpiin.iter().filter(|s| s.groups > 0).count()
    );
    Ok(())
}

/// `tpiin query` — the Section 6 drill-down: proof chains behind one
/// trading relationship.
pub fn query(opts: &Options) -> Result<(), tpiin::Error> {
    let (seller_label, buyer_label) = opts
        .arc
        .as_ref()
        .ok_or_else(|| tpiin::Error::Usage("query requires --arc SELLER,BUYER".into()))?;
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, _) = fuse(&registry)?;
    let find = |label: &str| {
        tpiin
            .graph
            .nodes()
            .find(|(_, n)| n.label() == label)
            .map(|(id, _)| id)
            .ok_or_else(|| tpiin::Error::Usage(format!("no node labelled `{label}`")))
    };
    let seller = find(seller_label)?;
    let buyer = find(buyer_label)?;
    let groups = tpiin_core::groups_behind_arc(&tpiin, seller, buyer);
    if groups.is_empty() {
        println!("no suspicious group behind {seller_label} -> {buyer_label}");
        return Ok(());
    }
    println!(
        "{} group(s) behind {seller_label} -> {buyer_label}:",
        groups.len()
    );
    for group in groups.iter().take(opts.top) {
        println!("- {}", group.explain(&tpiin));
    }
    if let Some(path) = &opts.out {
        // Drill-down view of the first group, Servyou-style.
        let dot = tpiin_io::groupviz::group_dot(&tpiin, &groups[0]);
        std::fs::write(path, dot).map_err(|e| tpiin::Error::file(path, e))?;
        println!("wrote drill-down DOT of the first group to {path}");
    }
    Ok(())
}

/// `tpiin export-graphml` — Gephi-compatible export.
pub fn export_graphml(opts: &Options) -> Result<(), tpiin::Error> {
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, _) = fuse(&registry)?;
    let text = tpiin_io::graphml::tpiin_graphml(&tpiin);
    match &opts.out {
        Some(path) => std::fs::write(path, text).map_err(|e| tpiin::Error::file(path, e))?,
        None => print!("{text}"),
    }
    Ok(())
}

/// `tpiin two-phase` — the full Fig. 4 pipeline with evaluation.
pub fn two_phase(opts: &Options) -> Result<(), tpiin::Error> {
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let (tpiin, _) = fuse(&registry)?;
    let msg = detector(opts, false).detect(&tpiin);
    println!(
        "MSG: {} of {} trading relationships suspicious ({:.2}%)",
        msg.suspicious_trading_arcs.len(),
        msg.total_trading_arcs,
        msg.suspicious_percentage()
    );
    let scope = tpiin_ite::ScreeningScope::from_msg(&tpiin, &msg);
    let tpiin_ite::ScreeningScope::SuspiciousArcs(ref pairs) = scope else {
        unreachable!("from_msg always returns SuspiciousArcs");
    };
    let gen = tpiin_ite::generator::generate_transactions(
        &registry,
        pairs,
        &tpiin_ite::generator::TransactionGenConfig {
            seed: opts.seed,
            ..Default::default()
        },
    );
    let market = tpiin_ite::MarketModel::estimate(&gen.db);
    let ite = tpiin_ite::ItePhase::default();
    println!(
        "ITE over {} transactions ({} truly evading):",
        gen.db.len(),
        gen.evading_transactions.len()
    );
    for (name, scope) in [
        ("one-by-one", tpiin_ite::ScreeningScope::AllTransactions),
        ("two-phase ", scope.clone()),
    ] {
        let eval = ite.screen_and_evaluate(&gen.db, &market, &scope, &gen.evading_transactions);
        println!(
            "  {name}: examined {:>6.2}%  recall {:>6.2}%  precision {:>6.2}%  recovered {:.0}",
            100.0 * eval.examined_fraction(),
            100.0 * eval.recall(),
            100.0 * eval.precision(),
            eval.recovered_revenue
        );
    }
    Ok(())
}

/// The TPIIN a serving command runs over: a snapshot file when given,
/// else the `--dataset` worked example or synthetic province.
fn serving_tpiin(opts: &Options) -> Result<Tpiin, tpiin::Error> {
    if let Some(path) = &opts.snapshot {
        return Ok(tpiin_serve::load_snapshot_file(std::path::Path::new(path))?);
    }
    match opts.dataset.as_deref().unwrap_or("fig7") {
        "fig7" => Ok(fuse(&fig7_registry()).map(|(t, _)| t)?),
        "province" => {
            let (mut registry, _) = province(opts);
            let p = *opts.sweep_probs().first().unwrap_or(&0.002);
            add_random_trading(&mut registry, p, opts.seed);
            Ok(fuse(&registry).map(|(t, _)| t)?)
        }
        other => Err(tpiin::Error::Usage(format!(
            "--dataset must be fig7 or province, got `{other}`"
        ))),
    }
}

/// `tpiin serve` — the long-lived query/ingest daemon.  Runs until a
/// `POST /shutdown` arrives, then drains in-flight requests and exits.
pub fn serve(opts: &Options) -> Result<(), tpiin::Error> {
    let config = tpiin_serve::ServeConfig {
        addr: opts
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: opts.workers,
        request_timeout: std::time::Duration::from_millis(opts.request_timeout_ms.max(1)),
        slowlog_threshold: std::time::Duration::from_millis(opts.slowlog_threshold_ms.max(1)),
        telemetry: !opts.no_telemetry,
        telemetry_tick: std::time::Duration::from_millis(opts.telemetry_tick_ms.max(1)),
        snapshot_path: opts.snapshot.as_ref().map(std::path::PathBuf::from),
        watch: opts.watch,
        miners: opts.miners.clone(),
        ..Default::default()
    };
    // `--dir` serves a CSV registry *registry-backed*: the daemon keeps
    // the SourceRegistry behind the delta engine, so POST /ingest
    // accepts the full mutation vocabulary (not just trading appends).
    let handle = if let Some(dir) = opts.dir.as_deref() {
        let registry = tpiin_io::registry_csv::load_registry(std::path::Path::new(dir))?;
        tpiin_serve::ServerHandle::bind_with_registry(registry, config)?
    } else {
        tpiin_serve::ServerHandle::bind(serving_tpiin(opts)?, config)?
    };
    println!("serving on http://{}", handle.addr());
    println!("stop with: curl -X POST http://{}/shutdown", handle.addr());
    handle.wait();
    println!("drained and stopped");
    Ok(())
}

/// `tpiin save-snapshot` — fuse a dataset and write the snapshot file
/// `serve --snapshot` (and CI) consume.
pub fn save_snapshot(opts: &Options) -> Result<(), tpiin::Error> {
    let out = opts
        .out
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("save-snapshot requires --out".into()))?;
    let tpiin = serving_tpiin(opts)?;
    let bytes = match opts.format.as_str() {
        "bin" => tpiin_io::snapshot_bin::write_snapshot_bin(&tpiin),
        _ => tpiin_io::snapshot::write_snapshot(&tpiin).into_bytes(),
    };
    std::fs::write(out, bytes).map_err(|e| tpiin::Error::file(out, e))?;
    println!(
        "wrote {} snapshot of {} nodes / {} trading arcs to {out}",
        opts.format,
        tpiin.node_count(),
        tpiin.trading_arc_count
    );
    Ok(())
}

/// `tpiin health` — poll a live daemon's telemetry endpoints and render
/// a one-screen terminal dashboard: the health verdict and pool state
/// from `/status`, every SLO state machine from `/alerts`, timeline
/// sparklines for request rates and p99 latencies, and the
/// slow-request exemplar log.  `--watch` re-polls every two seconds.
pub fn health(opts: &Options) -> Result<(), tpiin::Error> {
    let addr = opts
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    loop {
        print!("{}", health_report(&addr)?);
        if !opts.watch {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(2));
        println!();
    }
}

fn daemon_err(addr: &str, message: impl Into<String>) -> tpiin::Error {
    tpiin::Error::Daemon {
        addr: addr.to_string(),
        message: message.into(),
    }
}

/// One blocking HTTP GET against the daemon: `(status code, body)`.
/// The daemon serves one request per connection and closes, so reading
/// to EOF delimits the response.
fn daemon_get(addr: &str, path: &str) -> Result<(u16, String), tpiin::Error> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| daemon_err(addr, format!("connect: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: tpiin\r\n\r\n").as_bytes())
        .map_err(|e| daemon_err(addr, format!("send {path}: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| daemon_err(addr, format!("read {path}: {e}")))?;
    let code: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| daemon_err(addr, format!("malformed response to {path}")))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((code, body))
}

fn daemon_json(addr: &str, path: &str) -> Result<(u16, tpiin_io::json::Json), tpiin::Error> {
    let (code, body) = daemon_get(addr, path)?;
    let json = tpiin_io::json::Json::parse(&body)
        .map_err(|e| daemon_err(addr, format!("{path} returned unparseable JSON: {e}")))?;
    Ok((code, json))
}

/// Eight-level unicode sparkline, scaled to the series' own maximum.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|v| {
            if max > 0.0 {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            } else {
                BARS[0]
            }
        })
        .collect()
}

/// The `value` column of a `/timeline` series response, oldest first.
fn series_values(json: &tpiin_io::json::Json) -> Vec<f64> {
    let Some(tpiin_io::json::Json::Array(points)) = json.get("points") else {
        return Vec::new();
    };
    points
        .iter()
        .filter_map(|p| p.get("value").and_then(tpiin_io::json::Json::as_f64))
        .collect()
}

/// Builds the dashboard `tpiin health` prints, one poll of the daemon.
fn health_report(addr: &str) -> Result<String, tpiin::Error> {
    use std::fmt::Write as _;
    use tpiin_io::json::Json;
    let num = |j: &Json, key: &str| j.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let text = |j: &Json, key: &str| j.get(key).and_then(Json::as_str).unwrap_or("?").to_string();

    let (code, status) = daemon_json(addr, "/status")?;
    if code != 200 {
        return Err(daemon_err(addr, format!("/status answered {code}")));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tpiin daemon at {addr} — health {}",
        text(&status, "health").to_uppercase()
    );
    let _ = writeln!(
        out,
        "  epoch {:.0}, uptime {:.0}s, workers {:.0}/{:.0} busy, queued {:.0}/{:.0}, shed {:.0}, reloads {:.0}",
        num(&status, "epoch"),
        num(&status, "uptime_secs"),
        num(&status, "busy_workers"),
        num(&status, "workers"),
        num(&status, "queued_requests"),
        num(&status, "queue_capacity"),
        num(&status, "shed_requests"),
        num(&status, "reloads"),
    );

    let (code, alerts) = daemon_json(addr, "/alerts")?;
    if code == 200 {
        let _ = writeln!(
            out,
            "\nalerts (worst {}, tick {:.0}):",
            text(&alerts, "worst"),
            num(&alerts, "last_tick")
        );
        if let Some(Json::Array(items)) = alerts.get("alerts") {
            for alert in items {
                let _ = writeln!(
                    out,
                    "  {:<5} {:<26} burn {:>6.2}/{:<6.2} {}",
                    text(alert, "state"),
                    text(alert, "name"),
                    num(alert, "burn_short"),
                    num(alert, "burn_long"),
                    text(alert, "objective"),
                );
            }
        }
    } else {
        let _ = writeln!(out, "\nalerts: telemetry recorder disabled");
    }

    let (code, index) = daemon_json(addr, "/timeline")?;
    if code == 200 {
        let last_tick = num(&index, "last_tick") as u64;
        let since = last_tick.saturating_sub(60);
        let _ = writeln!(out, "\ntimeline (ticks {since}..{last_tick}):");
        let names: Vec<String> = match index.get("metrics") {
            Some(Json::Array(items)) => items
                .iter()
                .filter_map(|m| m.as_str().map(str::to_string))
                .collect(),
            _ => Vec::new(),
        };
        // Request rates: per-tick deltas of the cumulative counters.
        for name in names.iter().filter(|n| n.starts_with("serve.requests.")) {
            let (code, series) =
                daemon_json(addr, &format!("/timeline?metric={name}&since={since}"))?;
            if code != 200 {
                continue;
            }
            let values = series_values(&series);
            let deltas: Vec<f64> = values.windows(2).map(|w| (w[1] - w[0]).max(0.0)).collect();
            if deltas.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<36} {}  Δ{:.0}/tick",
                name,
                sparkline(&deltas),
                deltas.last().copied().unwrap_or(0.0)
            );
        }
        // p99 latency, derived from the histogram bucket deltas.
        for name in names.iter().filter(|n| n.starts_with("serve.latency.")) {
            let metric = format!("{name}.p99_ns");
            let (code, series) =
                daemon_json(addr, &format!("/timeline?metric={metric}&since={since}"))?;
            if code != 200 {
                continue;
            }
            let values = series_values(&series);
            let Some(last) = values.last().copied() else {
                continue;
            };
            let _ = writeln!(
                out,
                "  {:<36} {}  p99 {:.1}ms",
                metric,
                sparkline(&values),
                last / 1e6
            );
        }
    }

    let (code, slowlog) = daemon_json(addr, "/slowlog")?;
    if code == 200 {
        let _ = writeln!(
            out,
            "\nslowlog (threshold {:.0}ms, {:.0} captured):",
            num(&slowlog, "threshold_ms"),
            num(&slowlog, "count")
        );
        match slowlog.get("entries") {
            Some(Json::Array(entries)) if !entries.is_empty() => {
                // Newest last in the ring; show the most recent ten.
                let skip = entries.len().saturating_sub(10);
                for entry in entries.iter().skip(skip) {
                    let _ = writeln!(
                        out,
                        "  +{:>8.1}s  {:<20} {:>3.0}  epoch {:<3.0} {:>8.1}ms  {}",
                        num(entry, "at_secs"),
                        text(entry, "endpoint"),
                        num(entry, "status"),
                        num(entry, "epoch"),
                        num(entry, "latency_ms"),
                        entry
                            .get("trace_url")
                            .and_then(Json::as_str)
                            .unwrap_or("(trace off)"),
                    );
                }
            }
            _ => {
                let _ = writeln!(out, "  (no request over the threshold yet)");
            }
        }
    }
    Ok(out)
}

/// `tpiin company` — the Fig. 17/18 investment-tree view.
pub fn company(opts: &Options) -> Result<(), tpiin::Error> {
    let label = opts
        .company
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("company requires --company LABEL".into()))?;
    let (registry, _) = province(opts);
    let id = registry
        .company_by_name(label)
        .ok_or_else(|| tpiin::Error::Usage(format!("no company named `{label}`")))?;
    print!(
        "{}",
        tpiin_io::company_tree::investment_tree(&registry, id, 5)
    );
    Ok(())
}

/// `tpiin analyze` — Fig. 19: preliminary analysis of one company.  Shows
/// its controlling persons and affiliates, its suspicious trading
/// relationships with proof chains, and the ALP screening of the detail
/// transactions behind them.
pub fn analyze(opts: &Options) -> Result<(), tpiin::Error> {
    let label = opts
        .company
        .as_deref()
        .ok_or_else(|| tpiin::Error::Usage("analyze requires --company LABEL".into()))?;
    let (mut registry, _) = province(opts);
    let p = *opts.sweep_probs().first().unwrap_or(&0.002);
    add_random_trading(&mut registry, p, opts.seed);
    let company_id = registry
        .company_by_name(label)
        .ok_or_else(|| tpiin::Error::Usage(format!("no company named `{label}`")))?;

    println!("# Investment structure (Fig. 17)");
    print!(
        "{}",
        tpiin_io::company_tree::investment_tree(&registry, company_id, 3)
    );

    let (tpiin, _) = fuse(&registry)?;
    let node = tpiin.company_node[company_id.index()];
    let msg = detector(opts, true).detect(&tpiin);

    println!("\n# Suspicious trading relationships involving {label}");
    let arcs: Vec<_> = msg
        .suspicious_trading_arcs
        .iter()
        .filter(|&&(s, t)| s == node || t == node)
        .copied()
        .collect();
    if arcs.is_empty() {
        println!("(none — {label} is not party to any suspicious relationship)");
        return Ok(());
    }
    for &(s, t) in &arcs {
        println!("- {} -> {}", tpiin.label(s), tpiin.label(t));
    }

    println!("\n# Proof chains (first {} groups)", opts.top);
    let groups: Vec<_> = msg
        .groups
        .iter()
        .filter(|g| g.trading_arc.0 == node || g.trading_arc.1 == node)
        .take(opts.top)
        .collect();
    for group in &groups {
        println!("- {}", group.explain(&tpiin));
    }

    println!("\n# ALP screening of the detail transactions (ITE phase)");
    let scope = tpiin_ite::ScreeningScope::from_msg(&tpiin, &msg);
    let tpiin_ite::ScreeningScope::SuspiciousArcs(ref pairs) = scope else {
        unreachable!();
    };
    let gen = tpiin_ite::generator::generate_transactions(
        &registry,
        pairs,
        &tpiin_ite::generator::TransactionGenConfig {
            seed: opts.seed,
            ..Default::default()
        },
    );
    let market = tpiin_ite::MarketModel::estimate(&gen.db);
    let (findings, _) = tpiin_ite::ItePhase::default().screen(&gen.db, &market, &scope);
    let mine: Vec<_> = findings
        .iter()
        .filter(|f| {
            let tx = gen.db.get(f.transaction);
            tx.seller == company_id || tx.buyer == company_id
        })
        .collect();
    if mine.is_empty() {
        println!("(no transaction of {label} deviates from the arm's-length principle)");
    }
    for f in mine.iter().take(opts.top) {
        let tx = gen.db.get(f.transaction);
        let methods: Vec<String> = f.methods.iter().map(|m| m.to_string()).collect();
        println!(
            "- {} -> {}: {:.0} units at {:.2} ({}), understated revenue {:.0}",
            registry.company(tx.seller).name,
            registry.company(tx.buyer).name,
            tx.quantity,
            tx.unit_price,
            methods.join("+"),
            f.understated_revenue
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `tpiin health` against a live daemon: the dashboard must carry
    /// the health verdict, the alert table, at least one request-rate
    /// sparkline and a slowlog entry linking to its trace.
    #[test]
    fn health_report_renders_a_live_daemon() {
        let (tpiin, _) = fuse(&fig7_registry()).expect("fig7 fuses");
        let config = tpiin_serve::ServeConfig {
            telemetry_tick: std::time::Duration::from_millis(25),
            // Zero threshold: every request becomes a slowlog exemplar,
            // so the slowlog section renders deterministically.
            slowlog_threshold: std::time::Duration::ZERO,
            ..Default::default()
        };
        let handle = tpiin_serve::ServerHandle::bind(tpiin, config).expect("bind");
        let addr = handle.addr().to_string();

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let (code, _) = daemon_get(&addr, "/groups").expect("daemon reachable");
            assert_eq!(code, 200);
            let report = health_report(&addr).expect("health report");
            // Sparklines need two recorder samples of the counter; poll
            // until the recorder catches up.
            if report.contains("serve.requests.groups") {
                assert!(report.contains("health OK"), "{report}");
                assert!(report.contains("alerts (worst ok"), "{report}");
                assert!(report.contains("Δ"), "rate sparkline missing: {report}");
                assert!(report.contains("slowlog (threshold 0ms"), "{report}");
                assert!(
                    report.contains("/trace/"),
                    "slowlog trace link missing: {report}"
                );
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "recorder never sampled the counters: {report}"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        handle.shutdown();

        // An unreachable daemon is a clean `Daemon` error, not a panic.
        let err = health_report("127.0.0.1:1").expect_err("nothing listens on port 1");
        assert!(matches!(err, tpiin::Error::Daemon { .. }), "{err:?}");
    }
}
