//! Synthetic transaction generation with planted transfer-pricing
//! evasion.
//!
//! The TAO gave the paper's authors no transaction details ("due to the
//! high sensitivity of detailed trading information"), so the ITE phase
//! is exercised on synthetic detail records: every trading relationship
//! of the registry receives a handful of transactions at market prices,
//! and a configurable share of the *interest-affiliated* relationships is
//! turned into genuine evaders whose transactions are underpriced — the
//! transfer-pricing mechanics of Cases 1–3.  Ground-truth labels come out
//! alongside the data, which the paper's confidential sources could never
//! provide.

use crate::transaction::{ProductCategory, Transaction, TransactionDb, TransactionId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tpiin_model::{CompanyId, SourceRegistry};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct TransactionGenConfig {
    /// Transactions per trading relationship (inclusive range).
    pub transactions_per_arc: (usize, usize),
    /// Fraction of *affiliated* trading relationships that actually evade.
    pub evasion_rate: f64,
    /// Relative price cut applied by evaders (0.3 = 30 % below market).
    pub underpricing: f64,
    /// Relative noise on honest prices (uniform ±).
    pub price_noise: f64,
    /// Number of product categories.
    pub categories: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransactionGenConfig {
    fn default() -> Self {
        TransactionGenConfig {
            transactions_per_arc: (1, 4),
            evasion_rate: 0.6,
            underpricing: 0.35,
            price_noise: 0.05,
            categories: 12,
            seed: 4178,
        }
    }
}

/// Output of [`generate_transactions`].
#[derive(Clone, Debug, Default)]
pub struct GeneratedTransactions {
    /// The detail records.
    pub db: TransactionDb,
    /// Ground truth: transactions carrying planted evasion.
    pub evading_transactions: BTreeSet<TransactionId>,
    /// Ground truth: trading relationships that evade.
    pub evading_arcs: BTreeSet<(CompanyId, CompanyId)>,
}

/// Deterministic market fundamentals per category.
fn base_price(category: ProductCategory) -> f64 {
    25.0 + 12.0 * f64::from(category.0)
}

fn base_cost(category: ProductCategory) -> f64 {
    base_price(category) * 0.75 // ~25 % typical margin
}

/// Generates detail transactions for every trading record of `registry`.
///
/// `affiliated_arcs` is the set of ordered company pairs with a covert
/// interest relationship (in practice: the suspicious trading
/// relationships mined by the MSG phase, which is exact).  Only those
/// pairs can be selected as evaders; everyone else trades honestly.
pub fn generate_transactions(
    registry: &SourceRegistry,
    affiliated_arcs: &BTreeSet<(CompanyId, CompanyId)>,
    config: &TransactionGenConfig,
) -> GeneratedTransactions {
    assert!(config.transactions_per_arc.0 >= 1);
    assert!(config.transactions_per_arc.0 <= config.transactions_per_arc.1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = GeneratedTransactions::default();

    // Decide evaders per distinct arc, not per record.
    let mut arcs_seen: BTreeSet<(CompanyId, CompanyId)> = BTreeSet::new();
    for record in registry.tradings() {
        let arc = (record.seller, record.buyer);
        if !arcs_seen.insert(arc) {
            continue;
        }
        let evading = affiliated_arcs.contains(&arc) && rng.gen_bool(config.evasion_rate);
        if evading {
            out.evading_arcs.insert(arc);
        }
        let count = rng.gen_range(config.transactions_per_arc.0..=config.transactions_per_arc.1);
        for _ in 0..count {
            let category = ProductCategory(rng.gen_range(0..config.categories.max(1)));
            let market = base_price(category);
            let cost = base_cost(category) * (1.0 + rng.gen_range(-0.02..0.02));
            let price = if evading {
                market
                    * (1.0 - config.underpricing)
                    * (1.0 + rng.gen_range(-config.price_noise..=config.price_noise))
            } else {
                market * (1.0 + rng.gen_range(-config.price_noise..=config.price_noise))
            };
            let id = out.db.add(Transaction {
                seller: record.seller,
                buyer: record.buyer,
                product: category,
                quantity: rng.gen_range(10.0..5000.0),
                unit_price: price,
                unit_cost: cost,
            });
            if evading {
                out.evading_transactions.insert(id);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{InfluenceKind, InfluenceRecord, Role, RoleSet, TradingRecord};

    fn registry_with_arcs(n: usize) -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let lp = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        let companies: Vec<_> = (0..=n).map(|i| r.add_company(format!("C{i}"))).collect();
        for &c in &companies {
            r.add_influence(InfluenceRecord {
                person: lp,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        for i in 0..n {
            r.add_trading(TradingRecord {
                seller: companies[i],
                buyer: companies[i + 1],
                volume: 1.0,
            });
        }
        r
    }

    #[test]
    fn honest_arcs_never_evade() {
        let r = registry_with_arcs(20);
        let config = TransactionGenConfig {
            evasion_rate: 1.0,
            ..Default::default()
        };
        let none = BTreeSet::new();
        let gen = generate_transactions(&r, &none, &config);
        assert!(gen.evading_arcs.is_empty());
        assert!(gen.evading_transactions.is_empty());
        assert!(gen.db.len() >= 20);
    }

    #[test]
    fn affiliated_arcs_evade_at_the_configured_rate() {
        let r = registry_with_arcs(200);
        let affiliated: BTreeSet<_> = r.tradings().iter().map(|t| (t.seller, t.buyer)).collect();
        let config = TransactionGenConfig {
            evasion_rate: 0.5,
            ..Default::default()
        };
        let gen = generate_transactions(&r, &affiliated, &config);
        let rate = gen.evading_arcs.len() as f64 / 200.0;
        assert!((0.35..0.65).contains(&rate), "rate {rate}");
        // Every evading transaction sits on an evading arc.
        for &id in &gen.evading_transactions {
            let tx = gen.db.get(id);
            assert!(gen.evading_arcs.contains(&(tx.seller, tx.buyer)));
        }
    }

    #[test]
    fn evaders_are_priced_below_market() {
        let r = registry_with_arcs(100);
        let affiliated: BTreeSet<_> = r.tradings().iter().map(|t| (t.seller, t.buyer)).collect();
        let config = TransactionGenConfig {
            evasion_rate: 0.5,
            underpricing: 0.35,
            ..Default::default()
        };
        let gen = generate_transactions(&r, &affiliated, &config);
        assert!(!gen.evading_transactions.is_empty());
        for (id, tx) in gen.db.iter() {
            let honest = base_price(tx.product);
            if gen.evading_transactions.contains(&id) {
                assert!(tx.unit_price < honest * 0.72, "evader at {}", tx.unit_price);
            } else {
                assert!(tx.unit_price > honest * 0.9, "honest at {}", tx.unit_price);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let r = registry_with_arcs(30);
        let affiliated: BTreeSet<_> = r.tradings().iter().map(|t| (t.seller, t.buyer)).collect();
        let config = TransactionGenConfig::default();
        let a = generate_transactions(&r, &affiliated, &config);
        let b = generate_transactions(&r, &affiliated, &config);
        assert_eq!(a.db.len(), b.db.len());
        assert_eq!(a.evading_transactions, b.evading_transactions);
    }
}
