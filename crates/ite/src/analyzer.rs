//! The ITE screening driver and its evaluation harness.
//!
//! Two scopes mirror the paper's comparison:
//!
//! * [`ScreeningScope::AllTransactions`] — the traditional "identify the
//!   transactions one by one" approach the paper criticizes;
//! * [`ScreeningScope::SuspiciousArcs`] — the proposed two-phase
//!   pipeline: only transactions under the MSG phase's suspicious trading
//!   relationships are examined.
//!
//! [`Evaluation`] scores either run against the generator's ground truth
//! (precision/recall) and tracks how many candidate transactions had to
//! be examined — the efficiency claim of Section 5.2 in detection terms.

use crate::market::MarketModel;
use crate::methods::{Method, MethodKind};
use crate::transaction::{TransactionDb, TransactionId};
use std::collections::BTreeSet;
use tpiin_core::DetectionResult;
use tpiin_fusion::Tpiin;
use tpiin_model::CompanyId;

/// Which transactions to screen.
#[derive(Clone, Debug)]
pub enum ScreeningScope {
    /// Every transaction in the database (the one-by-one baseline).
    AllTransactions,
    /// Only transactions whose (seller, buyer) pair is among the given
    /// company pairs — the MSG phase's suspicious trading relationships.
    SuspiciousArcs(BTreeSet<(CompanyId, CompanyId)>),
}

impl ScreeningScope {
    /// Converts an MSG-phase [`DetectionResult`] into the company-pair
    /// scope, expanding syndicate nodes to their member companies (a
    /// suspicious arc between syndicates taints every member pair, and
    /// intra-syndicate trades are included via the recorded pairs).
    pub fn from_msg(tpiin: &Tpiin, result: &DetectionResult) -> ScreeningScope {
        let mut pairs = BTreeSet::new();
        for &(s, t) in &result.suspicious_trading_arcs {
            let sellers: Vec<CompanyId> = match tpiin.graph.node(s) {
                tpiin_fusion::TpiinNode::Company { members, .. } => members.to_vec(),
                tpiin_fusion::TpiinNode::Person { .. } => continue,
            };
            let buyers: Vec<CompanyId> = match tpiin.graph.node(t) {
                tpiin_fusion::TpiinNode::Company { members, .. } => members.to_vec(),
                tpiin_fusion::TpiinNode::Person { .. } => continue,
            };
            for &a in &sellers {
                for &b in &buyers {
                    if a != b {
                        pairs.insert((a, b));
                    }
                }
            }
        }
        for t in &tpiin.intra_syndicate_trades {
            pairs.insert((t.seller, t.buyer));
        }
        ScreeningScope::SuspiciousArcs(pairs)
    }
}

/// One flagged transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// The transaction.
    pub transaction: TransactionId,
    /// Methods that flagged it (score ≥ 1).
    pub methods: Vec<MethodKind>,
    /// Maximum deviation score across methods.
    pub score: f64,
    /// Understated revenue estimate: `(market median − price) × quantity`
    /// when positive — the basis of the TAO's tax adjustment.
    pub understated_revenue: f64,
}

/// The configured ITE phase.
#[derive(Clone, Debug)]
pub struct ItePhase {
    /// Screening methods (any flag suffices).
    pub methods: Vec<Method>,
}

impl Default for ItePhase {
    fn default() -> Self {
        ItePhase {
            methods: Method::default_battery(),
        }
    }
}

impl ItePhase {
    /// Screens the database within `scope`; returns findings ordered by
    /// transaction id, plus the number of candidate transactions examined.
    pub fn screen(
        &self,
        db: &TransactionDb,
        market: &MarketModel,
        scope: &ScreeningScope,
    ) -> (Vec<Finding>, usize) {
        let _span = tpiin_obs::Span::at("ite/screen");
        let aggregates = db.company_aggregates();
        let mut findings = Vec::new();
        let mut examined = 0usize;
        for (id, tx) in db.iter() {
            if let ScreeningScope::SuspiciousArcs(pairs) = scope {
                if !pairs.contains(&(tx.seller, tx.buyer)) {
                    continue;
                }
            }
            examined += 1;
            let mut flagged = Vec::new();
            let mut score = 0.0f64;
            for method in &self.methods {
                let s = method.score(tx, market, &aggregates);
                score = score.max(s);
                if s >= 1.0 {
                    flagged.push(method.kind());
                }
            }
            if !flagged.is_empty() {
                let understated = market
                    .product(tx.product)
                    .map(|stats| ((stats.median_price - tx.unit_price) * tx.quantity).max(0.0))
                    .unwrap_or(0.0);
                findings.push(Finding {
                    transaction: id,
                    methods: flagged,
                    score,
                    understated_revenue: understated,
                });
            }
        }
        (findings, examined)
    }

    /// Screens and evaluates against ground truth in one step.
    pub fn screen_and_evaluate(
        &self,
        db: &TransactionDb,
        market: &MarketModel,
        scope: &ScreeningScope,
        ground_truth: &BTreeSet<TransactionId>,
    ) -> Evaluation {
        let (findings, examined) = self.screen(db, market, scope);
        let _span = tpiin_obs::Span::at("ite/evaluate");
        tpiin_obs::debug!(
            "screened {examined} candidates of {} transactions -> {} findings",
            db.len(),
            findings.len()
        );
        Evaluation::new(findings, examined, db.len(), ground_truth)
    }
}

/// Renders findings as a TSV report (one row per flagged transaction),
/// labelled via the registry — the ITE-phase counterpart of the MSG
/// phase's `susGroup(i)` files.
pub fn render_findings(
    db: &TransactionDb,
    registry: &tpiin_model::SourceRegistry,
    findings: &[Finding],
) -> String {
    let mut out = String::from(
        "#seller\tbuyer\tproduct\tquantity\tunit_price\tmethods\tscore\tunderstated_revenue\n",
    );
    for f in findings {
        let tx = db.get(f.transaction);
        let methods: Vec<String> = f.methods.iter().map(|m| m.to_string()).collect();
        out.push_str(&format!(
            "{}\t{}\t{}\t{:.0}\t{:.2}\t{}\t{:.2}\t{:.0}\n",
            registry.company(tx.seller).name,
            registry.company(tx.buyer).name,
            tx.product.0,
            tx.quantity,
            tx.unit_price,
            methods.join("+"),
            f.score,
            f.understated_revenue,
        ));
    }
    out
}

/// Outcome of one screening run measured against ground truth.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The findings.
    pub findings: Vec<Finding>,
    /// Candidate transactions examined by this run.
    pub candidates_examined: usize,
    /// Total transactions in the database.
    pub total_transactions: usize,
    /// Flagged and truly evading.
    pub true_positives: usize,
    /// Flagged but honest.
    pub false_positives: usize,
    /// Evading but not flagged by this run.
    pub false_negatives: usize,
    /// Sum of understated revenue across true-positive findings.
    pub recovered_revenue: f64,
}

impl Evaluation {
    fn new(
        findings: Vec<Finding>,
        candidates_examined: usize,
        total_transactions: usize,
        ground_truth: &BTreeSet<TransactionId>,
    ) -> Evaluation {
        let flagged: BTreeSet<TransactionId> = findings.iter().map(|f| f.transaction).collect();
        let true_positives = flagged.intersection(ground_truth).count();
        let false_positives = flagged.len() - true_positives;
        let false_negatives = ground_truth.difference(&flagged).count();
        let recovered_revenue = findings
            .iter()
            .filter(|f| ground_truth.contains(&f.transaction))
            .map(|f| f.understated_revenue)
            .sum();
        Evaluation {
            findings,
            candidates_examined,
            total_transactions,
            true_positives,
            false_positives,
            false_negatives,
            recovered_revenue,
        }
    }

    /// Fraction of flagged transactions that truly evade.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            return 1.0;
        }
        self.true_positives as f64 / flagged as f64
    }

    /// Fraction of evading transactions recovered.
    pub fn recall(&self) -> f64 {
        let truth = self.true_positives + self.false_negatives;
        if truth == 0 {
            return 1.0;
        }
        self.true_positives as f64 / truth as f64
    }

    /// Fraction of the database this run had to examine.
    pub fn examined_fraction(&self) -> f64 {
        if self.total_transactions == 0 {
            return 0.0;
        }
        self.candidates_examined as f64 / self.total_transactions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_transactions, TransactionGenConfig};
    use tpiin_core::detect;
    use tpiin_datagen::{add_random_trading, generate_province, ProvinceConfig};

    /// Build the full two-phase fixture: province, MSG detection,
    /// transactions with evasion planted on the suspicious arcs.
    fn fixture() -> (
        Tpiin,
        TransactionDb,
        BTreeSet<TransactionId>,
        ScreeningScope,
    ) {
        let config = ProvinceConfig {
            seed: 11,
            ..ProvinceConfig::scaled(0.2)
        };
        let mut registry = generate_province(&config);
        add_random_trading(&mut registry, 0.004, 11);
        let (tpiin, _) = tpiin_fusion::fuse(&registry).unwrap();
        let msg = detect(&tpiin);
        let scope = ScreeningScope::from_msg(&tpiin, &msg);
        let ScreeningScope::SuspiciousArcs(ref pairs) = scope else {
            unreachable!()
        };
        let gen = generate_transactions(
            &registry,
            pairs,
            &TransactionGenConfig {
                seed: 11,
                ..Default::default()
            },
        );
        (tpiin, gen.db, gen.evading_transactions, scope)
    }

    #[test]
    fn two_phase_recall_matches_one_by_one_with_fewer_candidates() {
        let (_tpiin, db, truth, scope) = fixture();
        assert!(!truth.is_empty(), "fixture plants evasion");
        let market = MarketModel::estimate(&db);
        let ite = ItePhase::default();
        let all = ite.screen_and_evaluate(&db, &market, &ScreeningScope::AllTransactions, &truth);
        let two_phase = ite.screen_and_evaluate(&db, &market, &scope, &truth);
        // Evasion only exists on affiliated pairs, so restricting to the
        // suspicious arcs loses nothing...
        assert_eq!(two_phase.true_positives, all.true_positives);
        assert!(two_phase.recall() >= all.recall());
        // ...while examining a fraction of the database.
        assert!(two_phase.candidates_examined < all.candidates_examined / 2);
        // And precision can only improve (fewer honest candidates).
        assert!(two_phase.precision() >= all.precision());
    }

    #[test]
    fn screening_finds_most_planted_evasion() {
        let (_tpiin, db, truth, scope) = fixture();
        let market = MarketModel::estimate(&db);
        let eval = ItePhase::default().screen_and_evaluate(&db, &market, &scope, &truth);
        assert!(eval.recall() > 0.9, "recall {}", eval.recall());
        assert!(eval.precision() > 0.5, "precision {}", eval.precision());
        assert!(eval.recovered_revenue > 0.0);
    }

    #[test]
    fn findings_carry_methods_and_adjustments() {
        let (_tpiin, db, truth, scope) = fixture();
        let market = MarketModel::estimate(&db);
        let (findings, examined) = ItePhase::default().screen(&db, &market, &scope);
        assert!(examined >= findings.len());
        for f in &findings {
            assert!(!f.methods.is_empty());
            assert!(f.score >= 1.0);
            assert!(f.understated_revenue >= 0.0);
        }
        // At least the CUP fires on 35 % underpricing.
        assert!(findings
            .iter()
            .any(|f| f.methods.contains(&MethodKind::ComparableUncontrolledPrice)));
        let _ = truth;
    }

    #[test]
    fn findings_report_lists_one_row_per_finding() {
        let config = ProvinceConfig {
            seed: 11,
            ..ProvinceConfig::scaled(0.2)
        };
        let mut registry = generate_province(&config);
        add_random_trading(&mut registry, 0.004, 11);
        let (tpiin, _) = tpiin_fusion::fuse(&registry).unwrap();
        let msg = detect(&tpiin);
        let scope = ScreeningScope::from_msg(&tpiin, &msg);
        let ScreeningScope::SuspiciousArcs(ref pairs) = scope else {
            unreachable!()
        };
        let gen = generate_transactions(
            &registry,
            pairs,
            &TransactionGenConfig {
                seed: 11,
                ..Default::default()
            },
        );
        let market = MarketModel::estimate(&gen.db);
        let (findings, _) = ItePhase::default().screen(&gen.db, &market, &scope);
        let report = render_findings(&gen.db, &registry, &findings);
        assert_eq!(report.lines().count(), 1 + findings.len());
        assert!(report.contains("CUP") || report.contains("TNMM") || report.contains("cost-plus"));
    }

    #[test]
    fn empty_database_evaluates_cleanly() {
        let db = TransactionDb::new();
        let market = MarketModel::estimate(&db);
        let eval = ItePhase::default().screen_and_evaluate(
            &db,
            &market,
            &ScreeningScope::AllTransactions,
            &BTreeSet::new(),
        );
        assert_eq!(eval.candidates_examined, 0);
        assert_eq!(eval.precision(), 1.0);
        assert_eq!(eval.recall(), 1.0);
        assert_eq!(eval.examined_fraction(), 0.0);
    }
}
