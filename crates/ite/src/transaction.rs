//! Individual transactions under the trading relationships.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tpiin_model::CompanyId;

/// Identifier of a transaction inside one [`TransactionDb`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransactionId(pub u32);

impl TransactionId {
    /// Dense index of this transaction.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Product/industry category of a transaction.  Prices are only
/// comparable within a category (the ALP compares against "the same
/// products produced by the similar scale enterprises in the same
/// industry", Case 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProductCategory(pub u16);

/// One detail transaction record from the electronic receipt database.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// The selling taxpayer.
    pub seller: CompanyId,
    /// The buying taxpayer.
    pub buyer: CompanyId,
    /// Product category.
    pub product: ProductCategory,
    /// Units traded.
    pub quantity: f64,
    /// Agreed unit price.
    pub unit_price: f64,
    /// Seller's unit production cost (from financial reports).
    pub unit_cost: f64,
}

impl Transaction {
    /// Total invoice value.
    pub fn value(&self) -> f64 {
        self.quantity * self.unit_price
    }

    /// Seller margin on this transaction: `(price - cost) / price`.
    /// Negative when sold below cost.
    pub fn margin(&self) -> f64 {
        if self.unit_price == 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.unit_price - self.unit_cost) / self.unit_price
    }
}

/// The transaction database of one jurisdiction, indexed by trading pair.
#[derive(Clone, Debug, Default)]
pub struct TransactionDb {
    transactions: Vec<Transaction>,
    by_pair: HashMap<(CompanyId, CompanyId), Vec<TransactionId>>,
}

impl TransactionDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transaction; returns its id.
    pub fn add(&mut self, tx: Transaction) -> TransactionId {
        let id = TransactionId(self.transactions.len() as u32);
        self.by_pair
            .entry((tx.seller, tx.buyer))
            .or_default()
            .push(id);
        self.transactions.push(tx);
        id
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Borrow a transaction.
    pub fn get(&self, id: TransactionId) -> &Transaction {
        &self.transactions[id.index()]
    }

    /// All transactions in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (TransactionId, &Transaction)> {
        self.transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransactionId(i as u32), t))
    }

    /// Transactions between one ordered pair of companies.
    pub fn between(&self, seller: CompanyId, buyer: CompanyId) -> &[TransactionId] {
        self.by_pair
            .get(&(seller, buyer))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Distinct ordered trading pairs present in the database.
    pub fn pair_count(&self) -> usize {
        self.by_pair.len()
    }

    /// Total revenue (sales) and total cost of purchases per company —
    /// the aggregates the net-margin method needs.  Returned maps are
    /// keyed by company.
    pub fn company_aggregates(&self) -> HashMap<CompanyId, CompanyAggregate> {
        let mut map: HashMap<CompanyId, CompanyAggregate> = HashMap::new();
        for tx in &self.transactions {
            let s = map.entry(tx.seller).or_default();
            s.revenue += tx.value();
            s.cost_of_sales += tx.quantity * tx.unit_cost;
            map.entry(tx.buyer).or_default().purchases += tx.value();
        }
        map
    }
}

/// Per-company aggregates over the transaction database.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompanyAggregate {
    /// Revenue from sales.
    pub revenue: f64,
    /// Production cost of the goods sold.
    pub cost_of_sales: f64,
    /// Value of goods purchased.
    pub purchases: f64,
}

impl CompanyAggregate {
    /// Net margin over sales: `(revenue - cost) / revenue`.
    pub fn net_margin(&self) -> f64 {
        if self.revenue == 0.0 {
            return 0.0;
        }
        (self.revenue - self.cost_of_sales) / self.revenue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(seller: u32, buyer: u32, price: f64, cost: f64) -> Transaction {
        Transaction {
            seller: CompanyId(seller),
            buyer: CompanyId(buyer),
            product: ProductCategory(0),
            quantity: 10.0,
            unit_price: price,
            unit_cost: cost,
        }
    }

    #[test]
    fn value_and_margin() {
        let t = tx(0, 1, 30.0, 24.0);
        assert_eq!(t.value(), 300.0);
        assert!((t.margin() - 0.2).abs() < 1e-12);
        assert_eq!(tx(0, 1, 0.0, 5.0).margin(), f64::NEG_INFINITY);
    }

    #[test]
    fn pair_index() {
        let mut db = TransactionDb::new();
        let a = db.add(tx(0, 1, 30.0, 24.0));
        let b = db.add(tx(0, 1, 28.0, 24.0));
        db.add(tx(1, 0, 50.0, 40.0));
        assert_eq!(db.len(), 3);
        assert_eq!(db.pair_count(), 2);
        assert_eq!(db.between(CompanyId(0), CompanyId(1)), &[a, b]);
        assert!(db.between(CompanyId(2), CompanyId(0)).is_empty());
        assert_eq!(db.get(a).unit_price, 30.0);
    }

    #[test]
    fn aggregates_accumulate_both_sides() {
        let mut db = TransactionDb::new();
        db.add(tx(0, 1, 30.0, 24.0)); // seller 0: rev 300, cost 240
        db.add(tx(0, 2, 20.0, 24.0)); // seller 0: rev 200, cost 240 (loss)
        let agg = db.company_aggregates();
        let c0 = agg[&CompanyId(0)];
        assert_eq!(c0.revenue, 500.0);
        assert_eq!(c0.cost_of_sales, 480.0);
        assert!((c0.net_margin() - 0.04).abs() < 1e-12);
        assert_eq!(agg[&CompanyId(1)].purchases, 300.0);
        assert_eq!(CompanyAggregate::default().net_margin(), 0.0);
    }
}
