//! `tpiin-ite` — the ITE phase: identifying tax evasion inside the
//! suspicious groups.
//!
//! The paper's Fig. 4 splits detection into two phases.  The MSG phase
//! (`tpiin-core`) mines suspicious *relationships*; "in the ITE-phase,
//! traditional tax evasion identification methods can be used to detect
//! IATs-based tax evasion from a set of transactions in these suspicious
//! groups".  The case studies name the methods the tax administration
//! actually applied: comparison against comparable market prices (Case
//! 2's smart meters at \$20 vs \$30), the transactional net margin method
//! (Case 1's chronically loss-making producer) and the cost-plus method
//! (Case 3's exporter priced below cost plus typical markup) — all
//! operationalizations of the arm's-length principle (ALP).
//!
//! This crate supplies that phase:
//!
//! * [`Transaction`] / [`TransactionDb`] — individual transactions under
//!   the trading relationships (a trading arc of the TPIIN is a
//!   *behaviour*; the ITE phase needs the detail records);
//! * [`MarketModel`] — robust per-product price statistics and industry
//!   margins estimated from the transaction population;
//! * [`methods`] — the three ALP screening methods;
//! * [`ItePhase`] — the screening driver, runnable one-by-one over the
//!   whole database (the traditional approach the paper criticizes) or
//!   restricted to the MSG phase's suspicious arcs (the proposed
//!   two-phase pipeline), with an [`Evaluation`] against ground truth;
//! * [`generator`] — a synthetic transaction generator that plants
//!   transfer-pricing evasion on interest-affiliated pairs, providing the
//!   ground truth the paper's confidential data cannot.

pub mod generator;
pub mod methods;

mod analyzer;
mod market;
mod transaction;

pub use analyzer::{render_findings, Evaluation, Finding, ItePhase, ScreeningScope};
pub use market::{MarketModel, ProductStats};
pub use methods::{Method, MethodKind};
pub use transaction::{ProductCategory, Transaction, TransactionDb, TransactionId};
