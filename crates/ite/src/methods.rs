//! The three arm's-length screening methods from the paper's case
//! studies.
//!
//! | Method | Case | Signal |
//! |---|---|---|
//! | Comparable uncontrolled price (CUP) | Case 2 | unit price far below the market median for the product |
//! | Transactional net margin (TNMM) | Case 1 | the seller's overall net margin sits far below the industry's typical margin |
//! | Cost plus | Case 3 | the price fails to cover unit cost plus the typical markup |
//!
//! Each method looks at one transaction in the context of the market
//! model and the seller's aggregates, and produces a *deviation score* —
//! `0` at arm's length, growing with the evidence of underpricing.  A
//! transaction is flagged when the score reaches `1`.

use crate::market::MarketModel;
use crate::transaction::{CompanyAggregate, Transaction};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tpiin_model::CompanyId;

/// Which screening method produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// Comparable uncontrolled price.
    ComparableUncontrolledPrice,
    /// Transactional net margin method.
    TransactionalNetMargin,
    /// Cost-plus method.
    CostPlus,
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MethodKind::ComparableUncontrolledPrice => "CUP",
            MethodKind::TransactionalNetMargin => "TNMM",
            MethodKind::CostPlus => "cost-plus",
        })
    }
}

/// A configured screening method.
#[derive(Clone, Copy, Debug)]
pub enum Method {
    /// Flag when the price's robust z-score is below `-threshold_sigmas`.
    ComparableUncontrolledPrice {
        /// How many robust sigmas below the median count as deviating.
        threshold_sigmas: f64,
    },
    /// Flag when the seller's net margin is more than `margin_gap` below
    /// the category's typical margin.
    TransactionalNetMargin {
        /// Allowed shortfall before flagging (e.g. `0.08` = 8 points).
        margin_gap: f64,
    },
    /// Flag when the price is below `unit_cost * (1 + minimum_markup)`.
    CostPlus {
        /// Minimum acceptable markup over cost as a fraction of the
        /// category's typical margin (e.g. `0.5` = half of typical).
        markup_fraction: f64,
    },
}

impl Method {
    /// The method's kind tag.
    pub fn kind(&self) -> MethodKind {
        match self {
            Method::ComparableUncontrolledPrice { .. } => MethodKind::ComparableUncontrolledPrice,
            Method::TransactionalNetMargin { .. } => MethodKind::TransactionalNetMargin,
            Method::CostPlus { .. } => MethodKind::CostPlus,
        }
    }

    /// Deviation score of `tx` (`>= 1.0` means flagged).
    ///
    /// `aggregates` provides seller-level margins for the TNMM; it may be
    /// empty for the other two methods.
    pub fn score(
        &self,
        tx: &Transaction,
        market: &MarketModel,
        aggregates: &HashMap<CompanyId, CompanyAggregate>,
    ) -> f64 {
        match *self {
            Method::ComparableUncontrolledPrice { threshold_sigmas } => {
                match market.price_zscore(tx.product, tx.unit_price) {
                    Some(z) if z < 0.0 => -z / threshold_sigmas,
                    _ => 0.0,
                }
            }
            Method::TransactionalNetMargin { margin_gap } => {
                let Some(stats) = market.product(tx.product) else {
                    return 0.0;
                };
                let Some(agg) = aggregates.get(&tx.seller) else {
                    return 0.0;
                };
                let shortfall = stats.typical_margin - agg.net_margin();
                if shortfall <= 0.0 {
                    0.0
                } else {
                    shortfall / margin_gap
                }
            }
            Method::CostPlus { markup_fraction } => {
                let Some(stats) = market.product(tx.product) else {
                    return 0.0;
                };
                // Typical margin m over price implies markup over cost of
                // m / (1 - m); require at least `markup_fraction` of it.
                let typical = stats.typical_margin.clamp(0.0, 0.95);
                let required_markup = markup_fraction * typical / (1.0 - typical);
                let floor = tx.unit_cost * (1.0 + required_markup);
                if floor <= 0.0 || tx.unit_price >= floor {
                    0.0
                } else {
                    // 1.0 exactly at the floor boundary, growing to 2.0 at
                    // price zero.
                    1.0 + (floor - tx.unit_price) / floor
                }
            }
        }
    }

    /// The default battery used by the analyzer: CUP at 4 robust sigmas,
    /// TNMM at an 8-point margin gap, cost-plus at half the typical
    /// markup.
    pub fn default_battery() -> Vec<Method> {
        vec![
            Method::ComparableUncontrolledPrice {
                threshold_sigmas: 4.0,
            },
            Method::TransactionalNetMargin { margin_gap: 0.08 },
            Method::CostPlus {
                markup_fraction: 0.5,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{ProductCategory, TransactionDb};

    fn market_of(prices: &[f64]) -> (MarketModel, TransactionDb) {
        let mut db = TransactionDb::new();
        for (i, &p) in prices.iter().enumerate() {
            db.add(Transaction {
                seller: CompanyId(i as u32),
                buyer: CompanyId(99),
                product: ProductCategory(0),
                quantity: 1.0,
                unit_price: p,
                unit_cost: 22.0,
            });
        }
        (MarketModel::estimate(&db), db)
    }

    fn tx(price: f64, cost: f64) -> Transaction {
        Transaction {
            seller: CompanyId(0),
            buyer: CompanyId(1),
            product: ProductCategory(0),
            quantity: 5000.0,
            unit_price: price,
            unit_cost: cost,
        }
    }

    #[test]
    fn cup_flags_case2_smart_meters() {
        // Market sells at ~$30; the controlled transaction at $20.
        let (market, _) = market_of(&[29.0, 30.0, 31.0, 30.5, 29.5, 30.2, 29.8, 30.1, 29.9, 30.3]);
        let method = Method::ComparableUncontrolledPrice {
            threshold_sigmas: 4.0,
        };
        let cheap = method.score(&tx(20.0, 22.0), &market, &HashMap::new());
        let fair = method.score(&tx(30.0, 22.0), &market, &HashMap::new());
        assert!(cheap >= 1.0, "cheap score {cheap}");
        assert!(fair < 1.0, "fair score {fair}");
        // Overpricing is not underreporting: no score.
        assert_eq!(method.score(&tx(45.0, 22.0), &market, &HashMap::new()), 0.0);
    }

    #[test]
    fn tnmm_flags_case1_loss_maker() {
        let (market, db) = market_of(&[30.0; 8]);
        let mut aggregates = db.company_aggregates();
        // Seller 0 with chronic losses: margin -10% vs typical ~26.7%.
        aggregates.insert(
            CompanyId(0),
            crate::transaction::CompanyAggregate {
                revenue: 100.0,
                cost_of_sales: 110.0,
                purchases: 0.0,
            },
        );
        let method = Method::TransactionalNetMargin { margin_gap: 0.08 };
        assert!(method.score(&tx(30.0, 22.0), &market, &aggregates) >= 1.0);
        // A healthy seller passes.
        aggregates.insert(
            CompanyId(0),
            crate::transaction::CompanyAggregate {
                revenue: 100.0,
                cost_of_sales: 73.0,
                purchases: 0.0,
            },
        );
        assert!(method.score(&tx(30.0, 22.0), &market, &aggregates) < 1.0);
    }

    #[test]
    fn cost_plus_flags_below_cost_exports() {
        let (market, _) = market_of(&[30.0; 8]); // typical margin ~26.7%
        let method = Method::CostPlus {
            markup_fraction: 0.5,
        };
        // Case 3 shape: selling at cost (22) when cost-plus floor is
        // 22 * (1 + 0.5 * 0.267/0.733) = ~26.
        assert!(method.score(&tx(22.0, 22.0), &market, &HashMap::new()) >= 1.0);
        assert!(method.score(&tx(30.0, 22.0), &market, &HashMap::new()) < 1.0);
    }

    #[test]
    fn methods_are_silent_on_unseen_categories() {
        let (market, _) = market_of(&[30.0; 4]);
        let mut other = tx(1.0, 22.0);
        other.product = ProductCategory(7);
        for method in Method::default_battery() {
            assert_eq!(method.score(&other, &market, &HashMap::new()), 0.0);
        }
    }

    #[test]
    fn kind_tags_and_display() {
        for method in Method::default_battery() {
            let _ = method.kind();
        }
        assert_eq!(MethodKind::ComparableUncontrolledPrice.to_string(), "CUP");
        assert_eq!(MethodKind::TransactionalNetMargin.to_string(), "TNMM");
        assert_eq!(MethodKind::CostPlus.to_string(), "cost-plus");
    }
}
