//! Market statistics per product category.
//!
//! The ALP compares controlled prices to what independent parties pay:
//! "by reference to the average net profit of the same products produced
//! by the similar scale enterprises in the same industry" (Case 1).  The
//! model estimates, per category, a robust central price (median) with a
//! robust spread (median absolute deviation scaled to a normal sigma) and
//! a typical margin — robust statistics so that the planted evasion
//! transactions cannot drag the baseline toward themselves.

use crate::transaction::{ProductCategory, TransactionDb};
use std::collections::HashMap;

/// Robust per-category statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProductStats {
    /// Median unit price.
    pub median_price: f64,
    /// Robust sigma: `1.4826 * MAD` (consistent with a normal sample).
    pub price_sigma: f64,
    /// Median margin over the category's transactions.
    pub typical_margin: f64,
    /// Transactions observed.
    pub samples: usize,
}

/// Market model: statistics per product category.
#[derive(Clone, Debug, Default)]
pub struct MarketModel {
    stats: HashMap<ProductCategory, ProductStats>,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

impl MarketModel {
    /// Estimates the model from a transaction database.
    pub fn estimate(db: &TransactionDb) -> Self {
        let mut prices: HashMap<ProductCategory, Vec<f64>> = HashMap::new();
        let mut margins: HashMap<ProductCategory, Vec<f64>> = HashMap::new();
        for (_, tx) in db.iter() {
            prices.entry(tx.product).or_default().push(tx.unit_price);
            margins.entry(tx.product).or_default().push(tx.margin());
        }
        let mut stats = HashMap::with_capacity(prices.len());
        for (category, mut values) in prices {
            values.sort_by(f64::total_cmp);
            let med = median(&values);
            let mut deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
            deviations.sort_by(f64::total_cmp);
            let mad = median(&deviations);
            let mut ms = margins.remove(&category).unwrap_or_default();
            ms.sort_by(f64::total_cmp);
            stats.insert(
                category,
                ProductStats {
                    median_price: med,
                    price_sigma: 1.4826 * mad,
                    typical_margin: median(&ms),
                    samples: values.len(),
                },
            );
        }
        MarketModel { stats }
    }

    /// Statistics for one category, if observed.
    pub fn product(&self, category: ProductCategory) -> Option<&ProductStats> {
        self.stats.get(&category)
    }

    /// Number of categories observed.
    pub fn category_count(&self) -> usize {
        self.stats.len()
    }

    /// The z-score of a price within its category, using the robust
    /// sigma.  `None` when the category is unseen or degenerate (zero
    /// spread yields `None` unless the price equals the median exactly).
    pub fn price_zscore(&self, category: ProductCategory, price: f64) -> Option<f64> {
        let s = self.stats.get(&category)?;
        if s.price_sigma == 0.0 {
            return if price == s.median_price {
                Some(0.0)
            } else {
                None
            };
        }
        Some((price - s.median_price) / s.price_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use tpiin_model::CompanyId;

    fn db_with_prices(prices: &[f64]) -> TransactionDb {
        let mut db = TransactionDb::new();
        for (i, &p) in prices.iter().enumerate() {
            db.add(Transaction {
                seller: CompanyId(i as u32),
                buyer: CompanyId(100),
                product: ProductCategory(1),
                quantity: 1.0,
                unit_price: p,
                unit_cost: p * 0.8,
            });
        }
        db
    }

    #[test]
    fn median_and_mad_are_robust_to_one_outlier() {
        // Nine market prices ~30 and one dumped price at 5.
        let db = db_with_prices(&[29.0, 30.0, 31.0, 30.5, 29.5, 30.2, 29.8, 30.1, 29.9, 5.0]);
        let model = MarketModel::estimate(&db);
        let s = model.product(ProductCategory(1)).unwrap();
        assert!(
            (s.median_price - 29.95).abs() < 0.2,
            "median {}",
            s.median_price
        );
        assert!(s.price_sigma < 1.0, "sigma {}", s.price_sigma);
        // The outlier is many sigmas away; the cluster is not.
        assert!(model.price_zscore(ProductCategory(1), 5.0).unwrap() < -8.0);
        assert!(model.price_zscore(ProductCategory(1), 30.0).unwrap().abs() < 1.0);
    }

    #[test]
    fn unseen_category_yields_none() {
        let db = db_with_prices(&[10.0]);
        let model = MarketModel::estimate(&db);
        assert!(model.product(ProductCategory(9)).is_none());
        assert!(model.price_zscore(ProductCategory(9), 10.0).is_none());
    }

    #[test]
    fn degenerate_spread() {
        let db = db_with_prices(&[10.0, 10.0, 10.0]);
        let model = MarketModel::estimate(&db);
        assert_eq!(model.price_zscore(ProductCategory(1), 10.0), Some(0.0));
        assert_eq!(model.price_zscore(ProductCategory(1), 9.0), None);
    }

    #[test]
    fn typical_margin_estimated() {
        let db = db_with_prices(&[30.0, 30.0, 30.0, 30.0]);
        let model = MarketModel::estimate(&db);
        let s = model.product(ProductCategory(1)).unwrap();
        assert!((s.typical_margin - 0.2).abs() < 1e-9);
        assert_eq!(s.samples, 4);
    }

    #[test]
    fn even_sample_median() {
        let db = db_with_prices(&[10.0, 20.0]);
        let model = MarketModel::estimate(&db);
        assert_eq!(
            model.product(ProductCategory(1)).unwrap().median_price,
            15.0
        );
    }
}
