//! Multi-province (national-scale) registry assembly.
//!
//! CTAIS shares data between provinces since 2000; the paper's national
//! figures speak of 31.9 M taxpayers across 48 k offices.  This module
//! grows that story past a thin merge: [`generate_nation_with`] builds a
//! registry of `k` independently-seeded provinces (antecedent networks
//! stay province-local — ownership and kinship rarely cross provincial
//! extracts) and then lays a national trading network over it:
//!
//! * **intra-province trading** — the paper's Erdős–Rényi sweep, run per
//!   province block;
//! * **cross-province trading arcs** — a sparse ER layer over ordered
//!   company pairs in *different* provinces, parameterized as a target
//!   mean degree so the arc budget stays linear in the company count;
//! * **planted inter-province circular-trading rings** — each ring takes
//!   one company from `ring_len` consecutive provinces, spreads statutory
//!   tax rates across brackets (so the rate-differential score is
//!   non-zero) and closes the loop, the national version of
//!   [`crate::circular_case_registry`];
//! * **pattern-free controls** — identical open chains (ring minus the
//!   closing arc) planted alongside, which the circular-trading miner
//!   must *not* report.
//!
//! Cross-province arcs outside the rings are provably unsuspicious to the
//! Rule 1/2 miners — no influence trail crosses a province boundary — so
//! Algorithm 1's segmentation discards them before any pattern tree is
//! built, while the planted rings remain visible to the circular miner.

use crate::province::{generate_province, ProvinceConfig};
use crate::trading::{add_random_trading, plant_trading_ring, skip, unrank};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpiin_model::{CompanyId, SourceRegistry, TradingRecord};

/// Statutory tax-rate brackets cycled over planted ring members, so each
/// ring accumulates a non-zero rate differential.
pub const NATION_RATE_BRACKETS: [f64; 6] = [0.05, 0.17, 0.25, 0.13, 0.09, 0.21];

/// Parameters of the national generator.
#[derive(Clone, Debug)]
pub struct NationConfig {
    /// Number of provinces; province `i` is seeded `base.seed + i` and
    /// prefixed `"P{i}:"`.
    pub provinces: usize,
    /// Per-province population template.
    pub base: ProvinceConfig,
    /// ER probability of the intra-province trading layer (applied per
    /// province block, like the paper's single-province sweep).
    pub intra_trading_prob: f64,
    /// Target mean number of *cross-province* trading arcs per company.
    /// Expressed as a degree, not a pair probability, so the arc budget
    /// scales linearly with the nation instead of quadratically.
    pub cross_trading_mean_degree: f64,
    /// Inter-province circular-trading rings to plant.
    pub planted_rings: usize,
    /// Companies per planted ring (must not exceed `provinces`; each
    /// member sits in a distinct province).
    pub ring_len: usize,
    /// Pattern-free open chains planted alongside the rings: identical
    /// member layout and tax rates, closing arc omitted.
    pub control_chains: usize,
    /// RNG seed for the trading layers.
    pub seed: u64,
}

impl Default for NationConfig {
    fn default() -> Self {
        NationConfig {
            // 41 default provinces ≈ 100 k companies — the 10⁵ floor of
            // the nation-scale story; `scaled` shrinks for CI.
            provinces: 41,
            base: ProvinceConfig::default(),
            intra_trading_prob: 0.002,
            cross_trading_mean_degree: 1.0,
            planted_rings: 41,
            ring_len: 4,
            control_chains: 41,
            seed: 20170417,
        }
    }
}

impl NationConfig {
    /// A proportionally scaled-down nation: the province count, ring
    /// count and control count scale with `factor`, the per-province
    /// population keeps the paper's shape.
    pub fn scaled(factor: f64) -> Self {
        let d = NationConfig::default();
        let s = |x: usize| ((x as f64 * factor).round() as usize).max(1);
        let provinces = s(d.provinces).max(d.ring_len);
        NationConfig {
            provinces,
            planted_rings: s(d.planted_rings).min(provinces),
            control_chains: s(d.control_chains).min(provinces),
            ..d
        }
    }

    /// Total companies the generated nation will hold.
    pub fn company_count(&self) -> usize {
        self.provinces * self.base.companies
    }
}

/// Generates `provinces` independent provinces merged into one registry.
/// Province `i` uses `base.seed + i` and prefixes its entities `"P{i}:"`.
/// The trading network is left entirely to the caller — this is the thin
/// merge [`generate_nation_with`] builds on.
pub fn generate_nation(provinces: usize, base: &ProvinceConfig) -> SourceRegistry {
    let mut nation = SourceRegistry::with_capacity(
        provinces * (base.directors + base.legal_persons),
        provinces * base.companies,
    );
    for i in 0..provinces {
        let config = ProvinceConfig {
            seed: base.seed.wrapping_add(i as u64),
            ..base.clone()
        };
        let province = generate_province(&config);
        nation.absorb(&province, &format!("P{i}:"));
    }
    debug_assert!(nation.validate().is_ok());
    nation
}

/// Generates the full national workload: provinces, intra- and
/// cross-province trading, planted inter-province rings and their
/// pattern-free controls.  Deterministic per config.
pub fn generate_nation_with(config: &NationConfig) -> SourceRegistry {
    assert!(config.provinces >= 2, "a nation needs >= 2 provinces");
    assert!(
        config.ring_len >= 2 && config.ring_len <= config.provinces,
        "ring length {} must lie in 2..=provinces ({})",
        config.ring_len,
        config.provinces
    );
    assert!(
        config.planted_rings + config.control_chains <= config.base.companies,
        "rings + controls exceed the per-province company count"
    );

    let per_province = config.base.companies;
    let mut nation = SourceRegistry::with_capacity(
        config.provinces * (config.base.directors + config.base.legal_persons),
        config.provinces * per_province,
    );
    for i in 0..config.provinces {
        let province_config = ProvinceConfig {
            seed: config.base.seed.wrapping_add(i as u64),
            ..config.base.clone()
        };
        let mut province = generate_province(&province_config);
        // Intra-province trading before absorption: company ids are
        // still province-local, so the geometric-skip ER sampler works
        // over the small block.
        add_random_trading(
            &mut province,
            config.intra_trading_prob,
            config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        nation.absorb(&province, &format!("P{i}:"));
    }

    add_cross_province_trading(
        &mut nation,
        per_province,
        config.cross_trading_mean_degree,
        config.seed ^ 0xC0FF_EE00,
    );

    // Planted rings: ring r takes the company at offset r of ring_len
    // consecutive province blocks.  Controls use the offset range just
    // past the rings, so the two populations never share a company.
    let member = |province: usize, offset: usize| -> CompanyId {
        CompanyId((province * per_province + offset) as u32)
    };
    for r in 0..config.planted_rings {
        let members: Vec<CompanyId> = (0..config.ring_len)
            .map(|s| member((r + s) % config.provinces, r))
            .collect();
        for (s, &c) in members.iter().enumerate() {
            nation.set_company_tax_rate(c, NATION_RATE_BRACKETS[s % NATION_RATE_BRACKETS.len()]);
        }
        plant_trading_ring(&mut nation, &members);
    }
    for j in 0..config.control_chains {
        let offset = config.planted_rings + j;
        let members: Vec<CompanyId> = (0..config.ring_len)
            .map(|s| member((j + s) % config.provinces, offset))
            .collect();
        for (s, &c) in members.iter().enumerate() {
            nation.set_company_tax_rate(c, NATION_RATE_BRACKETS[s % NATION_RATE_BRACKETS.len()]);
        }
        // Open chain: the ring minus its closing arc — same structure,
        // no trading cycle, so a circular-trading hit here is a false
        // positive.
        for w in members.windows(2) {
            nation.add_trading(TradingRecord {
                seller: w[0],
                buyer: w[1],
                volume: 1_000.0,
            });
        }
    }

    debug_assert!(nation.validate().is_ok());
    nation
}

/// Sparse cross-province trading: ER over ordered company pairs whose
/// endpoints sit in different province blocks, with the pair probability
/// derived from `mean_degree` so the expected arc count is
/// `companies × mean_degree`.  Samples the full pair space with
/// geometric skips and rejects same-province pairs, so the cost is
/// proportional to the arcs generated.
pub fn add_cross_province_trading(
    registry: &mut SourceRegistry,
    per_province: usize,
    mean_degree: f64,
    seed: u64,
) -> usize {
    let n = registry.company_count();
    assert!(
        per_province > 0 && n.is_multiple_of(per_province),
        "company count {n} is not a whole number of provinces of {per_province}"
    );
    let provinces = n / per_province;
    if provinces < 2 || mean_degree <= 0.0 {
        return 0;
    }
    let total_pairs = (n as u64) * (n as u64 - 1);
    let intra_pairs = provinces as u64 * (per_province as u64) * (per_province as u64 - 1);
    let cross_pairs = total_pairs - intra_pairs;
    let p = ((n as f64 * mean_degree) / cross_pairs as f64).min(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut added = 0usize;
    if p >= 1.0 {
        for idx in 0..total_pairs {
            let (i, j) = unrank(idx, n as u64);
            if i as usize / per_province == j as usize / per_province {
                continue;
            }
            registry.add_trading(TradingRecord {
                seller: CompanyId(i),
                buyer: CompanyId(j),
                volume: rng.gen_range(10.0..10_000.0),
            });
            added += 1;
        }
        return added;
    }
    let log1mp = (1.0 - p).ln();
    let mut idx: u64 = skip(&mut rng, log1mp);
    while idx < total_pairs {
        let (i, j) = unrank(idx, n as u64);
        if i as usize / per_province != j as usize / per_province {
            registry.add_trading(TradingRecord {
                seller: CompanyId(i),
                buyer: CompanyId(j),
                volume: rng.gen_range(10.0..10_000.0),
            });
            added += 1;
        }
        idx = idx.saturating_add(1 + skip(&mut rng, log1mp));
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_core::GroupMiner;
    use tpiin_fusion::ArcColor;

    fn small_config() -> NationConfig {
        NationConfig {
            provinces: 4,
            base: ProvinceConfig::scaled(0.05),
            intra_trading_prob: 0.01,
            cross_trading_mean_degree: 0.5,
            planted_rings: 3,
            ring_len: 4,
            control_chains: 3,
            seed: 11,
        }
    }

    #[test]
    fn nation_scales_linearly_and_validates() {
        let base = ProvinceConfig::scaled(0.05);
        let one = generate_province(&base);
        let nation = generate_nation(3, &base);
        assert_eq!(nation.person_count(), 3 * one.person_count());
        assert_eq!(nation.company_count(), 3 * one.company_count());
        assert!(nation.validate().is_ok());
        // Provinces differ (different seeds).
        assert!(nation
            .person(tpiin_model::PersonId(0))
            .name
            .starts_with("P0:"));
    }

    #[test]
    fn provinces_stay_antecedent_disjoint() {
        let nation = generate_nation_with(&small_config());
        let (tpiin, _) = tpiin_fusion::fuse(&nation).unwrap();
        // No antecedent arc crosses the province boundary: every
        // *influence* arc's endpoints share a name prefix.  Trading arcs
        // are exactly what the national generator sends across.
        let mut cross_trading = 0usize;
        for e in tpiin.graph.edges() {
            let s = tpiin.label(e.source);
            let t = tpiin.label(e.target);
            let prefix = |l: &str| l.split(':').next().unwrap().to_string();
            match e.weight.color {
                ArcColor::Influence => assert_eq!(prefix(s), prefix(t), "{s} -> {t}"),
                ArcColor::Trading => {
                    if prefix(s) != prefix(t) {
                        cross_trading += 1;
                    }
                }
            }
        }
        assert!(cross_trading > 0, "cross-province trading arcs exist");
    }

    #[test]
    fn full_generator_validates_and_is_deterministic() {
        let config = small_config();
        let a = generate_nation_with(&config);
        assert!(a.validate().is_ok());
        let b = generate_nation_with(&config);
        assert_eq!(a.tradings(), b.tradings());
        assert_eq!(a.influences(), b.influences());
        let other = generate_nation_with(&NationConfig { seed: 12, ..config });
        assert_ne!(a.tradings(), other.tradings());
    }

    #[test]
    fn planted_rings_are_found_and_controls_are_not() {
        // Trading comes only from the planted structures: every cycle the
        // circular miner can find is a planted ring, and the open-chain
        // controls must contribute nothing.
        let config = NationConfig {
            intra_trading_prob: 0.0,
            cross_trading_mean_degree: 0.0,
            ..small_config()
        };
        let nation = generate_nation_with(&config);
        let groups = mine_circular(&nation);
        assert_eq!(groups, config.planted_rings, "one group per planted ring");
        let control_only = NationConfig {
            planted_rings: 0,
            ..config
        };
        let nation = generate_nation_with(&control_only);
        assert_eq!(mine_circular(&nation), 0, "open chains are pattern-free");
    }

    fn mine_circular(registry: &SourceRegistry) -> usize {
        let (tpiin, _) = tpiin_fusion::fuse(registry).expect("nation fuses");
        let ctx = tpiin_core::MineContext {
            tax_rates: registry.company_tax_rates(),
            ..tpiin_core::MineContext::default()
        };
        tpiin_core::CircularTradingMiner::default()
            .mine(&tpiin, &ctx)
            .groups
            .len()
    }

    #[test]
    fn cross_trading_tracks_the_degree_budget() {
        let mut nation = generate_nation(3, &ProvinceConfig::scaled(0.05));
        let n = nation.company_count();
        let added = add_cross_province_trading(&mut nation, n / 3, 2.0, 99);
        let expect = n as f64 * 2.0;
        assert!(
            (added as f64 - expect).abs() < 5.0 * expect.sqrt(),
            "added {added}, expected ≈{expect}"
        );
        // Every generated arc crosses a province boundary.
        let per = n / 3;
        for t in nation.tradings() {
            assert_ne!(
                t.seller.index() / per,
                t.buyer.index() / per,
                "intra-province pair leaked"
            );
        }
        assert!(nation.validate().is_ok());
    }

    #[test]
    fn scaled_config_keeps_ring_feasibility() {
        for f in [0.02, 0.1, 0.5, 1.0] {
            let c = NationConfig::scaled(f);
            assert!(c.ring_len <= c.provinces);
            assert!(c.planted_rings + c.control_chains <= c.base.companies);
        }
        assert!(NationConfig::default().company_count() >= 100_000);
    }
}
