//! Multi-province (national-scale) registry assembly.
//!
//! CTAIS shares data between provinces since 2000; the paper's national
//! figures speak of 31.9 M taxpayers across 48 k offices.
//! [`generate_nation`] assembles `k` independently-seeded provinces into
//! one registry — antecedent networks stay province-local (ownership and
//! kinship rarely cross provincial extracts), while the caller's trading
//! network spans everything, exercising Algorithm 1's segmentation at
//! scale: inter-province trades are provably unsuspicious and the
//! subTPIIN split discards them before any pattern tree is built.

use crate::province::{generate_province, ProvinceConfig};
use tpiin_model::SourceRegistry;

/// Generates `provinces` independent provinces merged into one registry.
/// Province `i` uses `base.seed + i` and prefixes its entities `"P{i}:"`.
pub fn generate_nation(provinces: usize, base: &ProvinceConfig) -> SourceRegistry {
    let mut nation = SourceRegistry::new();
    for i in 0..provinces {
        let config = ProvinceConfig {
            seed: base.seed.wrapping_add(i as u64),
            ..base.clone()
        };
        let province = generate_province(&config);
        nation.absorb(&province, &format!("P{i}:"));
    }
    debug_assert!(nation.validate().is_ok());
    nation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nation_scales_linearly_and_validates() {
        let base = ProvinceConfig::scaled(0.05);
        let one = generate_province(&base);
        let nation = generate_nation(3, &base);
        assert_eq!(nation.person_count(), 3 * one.person_count());
        assert_eq!(nation.company_count(), 3 * one.company_count());
        assert!(nation.validate().is_ok());
        // Provinces differ (different seeds).
        assert!(nation
            .person(tpiin_model::PersonId(0))
            .name
            .starts_with("P0:"));
    }

    #[test]
    fn provinces_stay_antecedent_disjoint() {
        let base = ProvinceConfig::scaled(0.05);
        let nation = generate_nation(2, &base);
        let (tpiin, _) = tpiin_fusion::fuse(&nation).unwrap();
        // No antecedent arc crosses the province boundary: every
        // influence arc's endpoints share a name prefix.
        for e in tpiin.graph.edges() {
            let s = tpiin.label(e.source);
            let t = tpiin.label(e.target);
            let prefix = |l: &str| l.split(':').next().unwrap().to_string();
            assert_eq!(prefix(s), prefix(t), "{s} -> {t}");
        }
    }
}
