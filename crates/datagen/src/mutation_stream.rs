//! Replayable mutation feeds for the streaming-ingest path.
//!
//! The delta engine's deployment story is a live CTAIS feed: trading
//! records arrive daily, the antecedent network drifts slowly, and new
//! evasion syndicates register *after* the system is already online.
//! [`generate_mutation_stream`] scripts that scenario as data: a base
//! province registry plus an ordered sequence of [`MutationBatch`]es —
//! mostly trading-only appends (the engine's surgical fast path), with
//! periodic benign registry churn (new companies that share no
//! antecedent), and a configurable number of *planted* evasion rings
//! that appear only in the second half of the stream.
//!
//! Each planted ring is the paper's Rule-1 shape in miniature: a
//! controller person (onboarded in the very first batch, long before
//! the ring exists), two shell companies registered under them as
//! legal person, and a trading arc between the shells — an interest
//! affiliated trading relationship that any correct detector must mine
//! the moment its batch lands.  Because the controller already exists,
//! the ring batch itself registers only companies and a trade — the
//! id-stable *company-append* class the delta engine splices in place —
//! while onboarding and churn batches add persons and exercise the
//! re-contraction path.  Replaying the same stream (same config)
//! always yields the same batches, so feeds can be archived and driven
//! against a live daemon in CI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpiin_model::{
    CompanyId, InfluenceKind, Mutation, MutationBatch, PersonId, Role, RoleSet, SourceRegistry,
    TradingRecord,
};

use crate::province::{generate_province, ProvinceConfig};

/// Shape of a generated mutation stream.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationStreamConfig {
    /// Province scale factor for the base registry (1.0 = 4578 nodes).
    pub scale: f64,
    /// RNG seed: fixes the base registry and every batch.
    pub seed: u64,
    /// Number of batches in the feed.
    pub batches: usize,
    /// Random trading records appended per batch.
    pub records_per_batch: usize,
    /// Evasion rings planted in the second half of the stream.
    pub planted_groups: usize,
}

impl Default for MutationStreamConfig {
    fn default() -> Self {
        MutationStreamConfig {
            scale: 1.0,
            seed: 20170417,
            batches: 20,
            records_per_batch: 64,
            planted_groups: 3,
        }
    }
}

/// A base registry plus the mutation batches to replay over it.
#[derive(Clone, Debug)]
pub struct MutationStream {
    /// The day-0 antecedent network (no trading arcs).
    pub base: SourceRegistry,
    /// The feed, in replay order.
    pub batches: Vec<MutationBatch>,
    /// Batch index where each planted ring lands (all in the second
    /// half of the stream, one entry per ring).
    pub planted_at: Vec<usize>,
}

impl MutationStream {
    /// Replays every batch onto a clone of the base registry — the
    /// from-scratch ground truth the delta engine must match.
    pub fn replayed(&self) -> Result<SourceRegistry, tpiin_model::ModelError> {
        let mut registry = self.base.clone();
        for batch in &self.batches {
            batch.apply_to_registry(&mut registry)?;
        }
        Ok(registry)
    }
}

/// Generates a replayable delta feed: a base province (antecedent
/// network only) and `config.batches` mutation batches.  Most batches
/// are trading-only; every fourth batch registers one benign company
/// (fresh legal person, no shared antecedent, so it adds no groups);
/// and `config.planted_groups` evasion rings are spread over the second
/// half of the stream so suspicious groups appear only mid-stream.
///
/// Deterministic: equal configs yield equal streams.
///
/// # Panics
///
/// Panics when `planted_groups > 0` and `batches < 2` — a planted ring
/// must land mid-stream, which needs at least two batches.
pub fn generate_mutation_stream(config: &MutationStreamConfig) -> MutationStream {
    assert!(
        config.planted_groups == 0 || config.batches >= 2,
        "planted rings land mid-stream; need >= 2 batches"
    );
    let base = generate_province(&ProvinceConfig {
        seed: config.seed,
        ..ProvinceConfig::scaled(config.scale)
    });
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6d75_7461); // "muta"
    let mut np = base.person_count() as u32;
    let mut nc = base.company_count() as u32;

    // Ring k lands at half + k·span/rings: evenly spread, all >= half.
    let half = config.batches / 2;
    let span = config.batches - half;
    let planted_at: Vec<usize> = (0..config.planted_groups)
        .map(|k| half + k * span / config.planted_groups.max(1))
        .collect();

    let mut batches = Vec::with_capacity(config.batches);
    let mut controllers: Vec<PersonId> = Vec::new();
    for b in 0..config.batches {
        let mut mutations = Vec::new();
        if b == 0 && config.planted_groups > 0 {
            // Controller onboarding: every future ring's controller
            // registers as a bare person on day one.  They hold no
            // companies until their ring lands, so the onboarding batch
            // adds no groups — but it does add persons, driving the
            // engine through its re-contraction path.
            for k in 0..config.planted_groups {
                controllers.push(PersonId(np));
                np += 1;
                mutations.push(Mutation::AddPerson {
                    name: format!("RING-P{k}"),
                    roles: RoleSet::of(&[Role::Ceo]),
                });
            }
        }
        for (k, _) in planted_at.iter().enumerate().filter(|&(_, &at)| at == b) {
            // Two shells under the pre-onboarded controller, one
            // intra-ring trade: the Rule-1 interest affiliated
            // relationship, arriving as a pure company-append batch.
            let controller = controllers[k];
            let (shell_a, shell_b) = (CompanyId(nc), CompanyId(nc + 1));
            nc += 2;
            for side in ["A", "B"] {
                mutations.push(Mutation::AddCompany {
                    name: format!("RING-{side}{k}"),
                    legal_person: controller,
                    kind: InfluenceKind::CeoOf,
                });
            }
            mutations.push(Mutation::AddTrading(TradingRecord {
                seller: shell_a,
                buyer: shell_b,
                volume: rng.gen_range(1_000.0..5_000.0),
            }));
        }
        if b % 4 == 1 && mutations.is_empty() {
            // Benign registry churn: a company under a brand-new legal
            // person shares no antecedent, so no group can involve it.
            mutations.push(Mutation::AddPerson {
                name: format!("CHURN-P{b}"),
                roles: RoleSet::of(&[Role::Ceo]),
            });
            mutations.push(Mutation::AddCompany {
                name: format!("CHURN-C{b}"),
                legal_person: PersonId(np),
                kind: InfluenceKind::CeoOf,
            });
            np += 1;
            nc += 1;
        }
        // Registry batches (plants, churn) stay pure: the feed models
        // the slow-moving antecedent extract and the high-volume
        // trading extract as separate drops, which is also what lets a
        // single-batch registry delta measure the bounded incremental
        // path alone.
        if mutations.is_empty() && nc >= 2 {
            for _ in 0..config.records_per_batch {
                let seller = rng.gen_range(0..nc);
                let mut buyer = rng.gen_range(0..nc - 1);
                if buyer >= seller {
                    buyer += 1;
                }
                mutations.push(Mutation::AddTrading(TradingRecord {
                    seller: CompanyId(seller),
                    buyer: CompanyId(buyer),
                    volume: rng.gen_range(10.0..10_000.0),
                }));
            }
        }
        batches.push(MutationBatch::new(mutations));
    }
    MutationStream {
        base,
        batches,
        planted_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_core::detect;
    use tpiin_fusion::fuse;

    fn small() -> MutationStreamConfig {
        MutationStreamConfig {
            scale: 0.05,
            seed: 7,
            batches: 8,
            records_per_batch: 12,
            planted_groups: 2,
        }
    }

    #[test]
    fn deterministic_per_config() {
        let (a, b) = (
            generate_mutation_stream(&small()),
            generate_mutation_stream(&small()),
        );
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.planted_at, b.planted_at);
        assert_eq!(a.base.tradings(), b.base.tradings());
        let other = generate_mutation_stream(&MutationStreamConfig { seed: 8, ..small() });
        assert_ne!(a.batches, other.batches);
    }

    #[test]
    fn feed_replays_onto_a_valid_registry() {
        let stream = generate_mutation_stream(&small());
        assert_eq!(stream.batches.len(), 8);
        let replayed = stream.replayed().unwrap();
        assert!(replayed.validate().is_ok());
        // The plants grew the entity space beyond the base province.
        assert_eq!(replayed.person_count(), stream.base.person_count() + 2 + 2);
        assert_eq!(
            replayed.company_count(),
            stream.base.company_count() + 4 + 2
        );
    }

    #[test]
    fn stream_mixes_fast_path_and_registry_batches() {
        let stream = generate_mutation_stream(&small());
        let trading_only = stream
            .batches
            .iter()
            .filter(|b| b.is_trading_only())
            .count();
        assert!(trading_only > 0, "some batches take the surgical path");
        assert!(
            trading_only < stream.batches.len(),
            "some batches mutate the registry"
        );
        assert!(stream.batches.iter().all(|b| !b.renumbers_ids()));
    }

    #[test]
    fn ring_batches_take_the_company_append_class() {
        let stream = generate_mutation_stream(&small());
        // Controllers onboard in batch 0, so every planted ring is pure
        // AddCompany + AddTrading: the id-stable splice class.
        assert!(!stream.batches[0].is_company_append());
        for &at in &stream.planted_at {
            assert!(
                stream.batches[at].is_company_append(),
                "ring batch {at} should be a company append"
            );
        }
    }

    #[test]
    fn planted_rings_appear_only_mid_stream() {
        let config = small();
        let stream = generate_mutation_stream(&config);
        let half = config.batches / 2;
        assert_eq!(stream.planted_at.len(), config.planted_groups);
        assert!(stream.planted_at.iter().all(|&at| at >= half));

        // Ground truth: groups after the first half vs the whole feed.
        let mut registry = stream.base.clone();
        for batch in &stream.batches[..half] {
            batch.apply_to_registry(&mut registry).unwrap();
        }
        let (tpiin, _) = fuse(&registry).unwrap();
        let before = detect(&tpiin).group_count();
        for batch in &stream.batches[half..] {
            batch.apply_to_registry(&mut registry).unwrap();
        }
        let (tpiin, _) = fuse(&registry).unwrap();
        let after = detect(&tpiin).group_count();
        // Each ring is its own Rule-1 group on top of whatever the
        // random trades produce.
        assert!(
            after >= before + config.planted_groups,
            "{after} groups after vs {before} before"
        );
    }

    #[test]
    #[should_panic(expected = "mid-stream")]
    fn planting_into_a_single_batch_panics() {
        generate_mutation_stream(&MutationStreamConfig {
            batches: 1,
            planted_groups: 1,
            ..small()
        });
    }
}
