//! The three IATs-based tax-evasion case studies of Section 3.1.
//!
//! Each builder returns a registry whose fusion + detection reproduces the
//! graph-based pattern the paper abstracts from the case (Figs. 1–3).
//! Integration tests under `tests/` assert the detected groups; the unit
//! tests here check the builders themselves.

use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

/// Case 1 (Fig. 1): chemistry producer C3 is fully owned by C1 (legal
/// person L1) and sells everything to C2 (legal person L2); L1 and L2 are
/// brothers.  The kinship merges L1/L2 into one antecedent behind the
/// IAT `C3 -> C2` — the pentagon of Fig. 1(b), simplified to Fig. 1(c).
pub fn case1_registry() -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let ceo = RoleSet::of(&[Role::Ceo]);
    let l1 = r.add_person("L1", ceo);
    let l2 = r.add_person("L2", ceo);
    let l3 = r.add_person("L3", ceo);
    let c1 = r.add_company("C1");
    let c2 = r.add_company("C2");
    let c3 = r.add_company("C3");
    for (p, c) in [(l1, c1), (l2, c2), (l3, c3)] {
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    r.add_interdependence(l1, l2, InterdependenceKind::Kinship);
    // "All the shares of C3 were held by C1."
    r.add_investment(InvestmentRecord {
        investor: c1,
        investee: c3,
        share: 1.0,
    });
    // "All the products produced by C3 were sold to C2."  The verified tax
    // adjustment was 25.52 million RMB.
    r.add_trading(TradingRecord {
        seller: c3,
        buyer: c2,
        volume: 25_520_000.0,
    });
    r
}

/// Case 2 (Fig. 2(a) / Fig. 3(a)): C4 partially owns both C5 and C6; C5
/// sells smart meters to C6 far below the market price — the triangle
/// with the same investor behind the IAT `C5 -> C6`.
pub fn case2_registry() -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let ceo = RoleSet::of(&[Role::Ceo]);
    let l4 = r.add_person("L4", ceo);
    let l5 = r.add_person("L5", ceo);
    let l6 = r.add_person("L6", ceo);
    let c4 = r.add_company("C4");
    let c5 = r.add_company("C5");
    let c6 = r.add_company("C6");
    for (p, c) in [(l4, c4), (l5, c5), (l6, c6)] {
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    r.add_investment(InvestmentRecord {
        investor: c4,
        investee: c5,
        share: 0.4,
    });
    r.add_investment(InvestmentRecord {
        investor: c4,
        investee: c6,
        share: 0.35,
    });
    // 5000 smart meters at $20 each.
    r.add_trading(TradingRecord {
        seller: c5,
        buyer: c6,
        volume: 100_000.0,
    });
    r
}

/// Case 3 (Fig. 2(b) / Fig. 3(b)): directors B3, B4, B5 act in concert
/// (director interlocking via the joint control agreement over C9); B3
/// and B4 control C7 and C8 respectively; C7 exports BMX to C8.  The
/// interlocking merges the directors into one syndicate behind the IAT
/// `C7 -> C8`.
pub fn case3_registry() -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let ceo = RoleSet::of(&[Role::Ceo]);
    let dir = RoleSet::of(&[Role::Director, Role::Shareholder]);
    let b3 = r.add_person("B3", dir);
    let b4 = r.add_person("B4", dir);
    let b5 = r.add_person("B5", dir);
    let l7 = r.add_person("L7", ceo);
    let l8 = r.add_person("L8", ceo);
    let l9 = r.add_person("L9", ceo);
    let c7 = r.add_company("C7");
    let c8 = r.add_company("C8");
    let c9 = r.add_company("C9");
    for (p, c) in [(l7, c7), (l8, c8), (l9, c9)] {
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    // Controlling investors (>51 % shares held by B3 in C7 and B4 in C8).
    for (p, c) in [(b3, c7), (b4, c8), (b3, c9), (b4, c9), (b5, c9)] {
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    // The acting-together agreement: pairwise interlocking.
    r.add_interdependence(b3, b4, InterdependenceKind::Interlocking);
    r.add_interdependence(b4, b5, InterdependenceKind::Interlocking);
    // 90 million RMB of BMX exports.
    r.add_trading(TradingRecord {
        seller: c7,
        buyer: c8,
        volume: 90_000_000.0,
    });
    r
}

/// Number of companies in [`circular_case_registry`]'s planted ring.
pub const CIRCULAR_RING_LEN: usize = 4;

/// A planted circular-trading scenario (the GST fraud pattern): four
/// companies `R0 -> R1 -> R2 -> R3 -> R0` pass goods in a ring, with
/// statutory tax rates spread across brackets so the ring accumulates a
/// non-zero rate differential.  Two background companies `X0`, `X1`
/// trade acyclically.  Each company has its own legal person and there
/// is no shared antecedent, so Rule 1/Rule 2 mining finds nothing here
/// — the ring is visible only to the circular-trading miner, which
/// must report exactly one group.
pub fn circular_case_registry() -> SourceRegistry {
    let mut r = circular_control_registry();
    // Close the chain R0 -> R1 -> R2 -> R3 into a ring.
    let r3 = r.company_by_name("R3").expect("control plants R3");
    let r0 = r.company_by_name("R0").expect("control plants R0");
    r.add_trading(TradingRecord {
        seller: r3,
        buyer: r0,
        volume: 1_000.0,
    });
    r
}

/// The pattern-free control for [`circular_case_registry`]: identical
/// companies, rates and background trades, but the ring is left open as
/// the chain `R0 -> R1 -> R2 -> R3` — no trading cycle exists, so the
/// circular-trading miner must report zero groups.
pub fn circular_control_registry() -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let ceo = RoleSet::of(&[Role::Ceo]);
    let rates = [0.05, 0.17, 0.25, 0.13];
    let ring: Vec<_> = (0..CIRCULAR_RING_LEN)
        .map(|i| {
            let p = r.add_person(format!("LR{i}"), ceo);
            let c = r.add_company(format!("R{i}"));
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
            r.set_company_tax_rate(c, rates[i]);
            c
        })
        .collect();
    for w in ring.windows(2) {
        r.add_trading(TradingRecord {
            seller: w[0],
            buyer: w[1],
            volume: 1_000.0,
        });
    }
    for i in 0..2 {
        let p = r.add_person(format!("LX{i}"), ceo);
        let c = r.add_company(format!("X{i}"));
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    let x0 = r.company_by_name("X0").expect("just added");
    let x1 = r.company_by_name("X1").expect("just added");
    r.add_trading(TradingRecord {
        seller: x0,
        buyer: x1,
        volume: 500.0,
    });
    r
}

/// Trading-feed window of [`windowed_case_registry`] containing only
/// the early group's trade.
pub const WINDOWED_EARLY: (u32, u32) = (0, 1);
/// Window containing only the late group's trade.
pub const WINDOWED_LATE: (u32, u32) = (1, 2);
/// Window containing only the background trade — a trading arc exists
/// in the window but no suspicious group does.
pub const WINDOWED_QUIET: (u32, u32) = (2, 3);

/// A time-windowed scenario: two independent Rule 1 structures whose
/// suspicious trades are appended to the trading feed in a known order,
/// plus one innocent background trade.
///
/// * feed record 0 — `EA1 -> EA2`, the trade of the *early* group
///   (person `LE` controls both companies);
/// * feed record 1 — `TB1 -> TB2`, the trade of the *late* group
///   (person `LT` controls both);
/// * feed record 2 — `X0 -> X1`, unrelated companies, no group.
///
/// Mining through `windowed:rules@start..end` with [`WINDOWED_EARLY`] /
/// [`WINDOWED_LATE`] must each find exactly their own group; the full
/// window `0..3` finds both; [`WINDOWED_QUIET`] finds none.
pub fn windowed_case_registry() -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let ceo = RoleSet::of(&[Role::Ceo]);
    let pair = |r: &mut SourceRegistry, person: &str, a: &str, b: &str| {
        let p = r.add_person(person, ceo);
        let ca = r.add_company(a);
        let cb = r.add_company(b);
        for c in [ca, cb] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        (ca, cb)
    };
    let (ea1, ea2) = pair(&mut r, "LE", "EA1", "EA2");
    let (tb1, tb2) = pair(&mut r, "LT", "TB1", "TB2");
    // X0/X1 must not share an antecedent, or the background trade would
    // itself form a group: each gets its own legal person.
    let solo = |r: &mut SourceRegistry, person: &str, name: &str| {
        let p = r.add_person(person, ceo);
        let c = r.add_company(name);
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        c
    };
    let x0 = solo(&mut r, "LX0", "X0");
    let x1 = solo(&mut r, "LX1", "X1");
    r.add_trading(TradingRecord {
        seller: ea1,
        buyer: ea2,
        volume: 10_000.0,
    });
    r.add_trading(TradingRecord {
        seller: tb1,
        buyer: tb2,
        volume: 20_000.0,
    });
    r.add_trading(TradingRecord {
        seller: x0,
        buyer: x1,
        volume: 50.0,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_validate() {
        for r in [case1_registry(), case2_registry(), case3_registry()] {
            assert!(r.validate().is_ok());
        }
    }

    #[test]
    fn case1_fuses_the_brothers() {
        let (tpiin, report) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        assert_eq!(report.person_syndicates_merged, 1);
        assert!(tpiin.graph.nodes().any(|(_, n)| n.label() == "L1+L2"));
    }

    #[test]
    fn case2_keeps_all_nodes_separate() {
        let (_, report) = tpiin_fusion::fuse(&case2_registry()).unwrap();
        assert_eq!(report.person_syndicates_merged, 0);
        assert_eq!(report.company_syndicates_merged, 0);
    }

    #[test]
    fn case3_merges_the_interlocked_board() {
        let (tpiin, report) = tpiin_fusion::fuse(&case3_registry()).unwrap();
        assert_eq!(report.person_syndicates_merged, 1);
        assert!(tpiin.graph.nodes().any(|(_, n)| n.label() == "B3+B4+B5"));
    }
}
