//! Synthetic province population generator.
//!
//! Companies are organized into disjoint *conglomerate clusters*: each
//! cluster has a root company and an investment DAG (a random recursive
//! tree plus a few extra arcs) reaching every member, so any two companies
//! of one cluster share an ancestor — exactly the condition that makes a
//! trading arc between them suspicious.  Clusters are antecedent-disjoint
//! (no shared persons or investments), so the expected suspicious fraction
//! of a uniform random trading network is
//!
//! ```text
//!   sum_i s_i (s_i - 1)  /  n (n - 1)
//! ```
//!
//! over cluster sizes `s_i`.  The default [`ProvinceConfig`] matches the
//! paper's node counts (776 directors, 1350 legal persons, 2452
//! companies) and calibrates the cluster-size spectrum to ≈5.2 %,
//! inside Table 1's observed 4.92–5.35 % band.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tpiin_model::{
    CompanyId, InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, PersonId,
    Role, RoleSet, SourceRegistry,
};

/// Parameters of the synthetic province.
#[derive(Clone, Debug)]
pub struct ProvinceConfig {
    /// Number of director persons (paper: 776).
    pub directors: usize,
    /// Number of legal-person persons (paper: 1350).
    pub legal_persons: usize,
    /// Number of companies (paper: 2452).
    pub companies: usize,
    /// Conglomerate size spectrum as `(count, size)` pairs; companies not
    /// covered become singleton clusters.
    pub cluster_spec: Vec<(usize, usize)>,
    /// Probability that a non-root cluster company receives a second
    /// investment arc (extra DAG paths -> more groups per arc).
    pub extra_investment_prob: f64,
    /// Kinship edges to draw between persons of the same cluster.
    pub kinship_edges: usize,
    /// Interlocking edges to draw between directors of the same cluster.
    pub interlocking_edges: usize,
    /// Mutual-investment pairs (two-company SCCs) to plant, exercising the
    /// SCC-contraction path; the paper's province had none.
    pub investment_cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProvinceConfig {
    fn default() -> Self {
        ProvinceConfig {
            directors: 776,
            legal_persons: 1350,
            companies: 2452,
            // sum s(s-1) = 311_060 over 2452 companies => 5.17 % of the
            // 2452*2451 ordered pairs are co-influenced.
            cluster_spec: vec![(2, 300), (3, 160), (5, 80), (10, 40), (20, 20), (30, 5)],
            extra_investment_prob: 0.21,
            kinship_edges: 150,
            interlocking_edges: 120,
            investment_cycles: 0,
            seed: 20170417,
        }
    }
}

impl ProvinceConfig {
    /// A proportionally scaled-down province (for fast tests/benches):
    /// all entity counts and cluster counts multiplied by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let d = ProvinceConfig::default();
        let s = |x: usize| ((x as f64 * factor).round() as usize).max(1);
        let companies = s(d.companies);
        ProvinceConfig {
            directors: s(d.directors),
            legal_persons: s(d.legal_persons),
            companies,
            // Keep the size *spectrum* but cap cluster sizes so one
            // conglomerate cannot swallow the scaled-down province.
            cluster_spec: d
                .cluster_spec
                .iter()
                .map(|&(count, size)| (s(count), size.min((companies / 4).max(2))))
                .collect(),
            kinship_edges: s(d.kinship_edges),
            interlocking_edges: s(d.interlocking_edges),
            ..d
        }
    }

    /// Expected fraction (0–1) of ordered company pairs that are
    /// co-influenced, i.e. the expected suspicious trading percentage.
    pub fn expected_suspicious_fraction(&self) -> f64 {
        let n = self.companies as f64;
        let mut covered = 0usize;
        let mut pairs = 0f64;
        for &(count, size) in &self.cluster_spec {
            for _ in 0..count {
                if covered + size > self.companies {
                    break;
                }
                covered += size;
                pairs += (size * (size - 1)) as f64;
            }
        }
        pairs / (n * (n - 1.0))
    }
}

/// Generates the synthetic province registry (no trading records; add a
/// trading network with [`crate::add_random_trading`]).
pub fn generate_province(config: &ProvinceConfig) -> SourceRegistry {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut registry = SourceRegistry::new();

    // --- Persons: legal persons first, then directors. ---
    let lp_roles = [
        RoleSet::of(&[Role::Ceo]),
        RoleSet::of(&[Role::Ceo, Role::Director]),
        RoleSet::of(&[Role::Chairman]),
        RoleSet::of(&[Role::Ceo, Role::Chairman]),
    ];
    let lps: Vec<PersonId> = (0..config.legal_persons)
        .map(|i| registry.add_person(format!("L{i}"), lp_roles[rng.gen_range(0..lp_roles.len())]))
        .collect();
    let director_roles = [
        RoleSet::of(&[Role::Director]),
        RoleSet::of(&[Role::Director, Role::Shareholder]),
        RoleSet::of(&[Role::Shareholder]),
    ];
    let directors: Vec<PersonId> = (0..config.directors)
        .map(|i| {
            registry.add_person(
                format!("D{i}"),
                director_roles[rng.gen_range(0..director_roles.len())],
            )
        })
        .collect();

    // --- Companies and clusters. ---
    let companies: Vec<CompanyId> = (0..config.companies)
        .map(|i| registry.add_company(format!("C{i}")))
        .collect();
    let mut clusters: Vec<Vec<CompanyId>> = Vec::new();
    let mut next = 0usize;
    for &(count, size) in &config.cluster_spec {
        for _ in 0..count {
            if next + size > config.companies {
                break;
            }
            clusters.push(companies[next..next + size].to_vec());
            next += size;
        }
    }
    while next < config.companies {
        clusters.push(vec![companies[next]]);
        next += 1;
    }

    // --- Investment DAG per cluster: random recursive tree + extras. ---
    for cluster in &clusters {
        for k in 1..cluster.len() {
            let parent = cluster[rng.gen_range(0..k.min(25))];
            registry.add_investment(InvestmentRecord {
                investor: parent,
                investee: cluster[k],
                share: rng.gen_range(0.3..=1.0),
            });
            if k >= 2 && rng.gen_bool(config.extra_investment_prob) {
                let second = cluster[rng.gen_range(0..k)];
                if second != parent {
                    registry.add_investment(InvestmentRecord {
                        investor: second,
                        investee: cluster[k],
                        share: rng.gen_range(0.05..0.3),
                    });
                }
            }
        }
    }

    // --- Legal persons: each serves 1..=3 companies of a single cluster.
    // Clusters are walked in order; LPs are consumed round-robin so all
    // 1350 appear.  If LPs run short the pool wraps around.
    let mut lp_cursor = 0usize;
    let mut lp_cluster: Vec<Option<usize>> = vec![None; lps.len()];
    let mut person_cluster: std::collections::HashMap<PersonId, usize> =
        std::collections::HashMap::new();
    // Budget so the LP pool stretches over all companies: average
    // companies-per-LP, randomized 1..=3.
    for (ci, cluster) in clusters.iter().enumerate() {
        let mut pending = cluster.as_slice();
        while !pending.is_empty() {
            let lp = lps[lp_cursor % lps.len()];
            lp_cluster[lp_cursor % lps.len()] = Some(ci);
            lp_cursor += 1;
            let remaining_companies = (config.companies
                - (companies.len() - remaining_after(&clusters, ci, pending)))
            .max(1);
            let remaining_lps = lps.len().saturating_sub(lp_cursor) + 1;
            let avg = (remaining_companies as f64 / remaining_lps as f64).ceil() as usize;
            let take = rng.gen_range(1..=avg.clamp(1, 3)).min(pending.len());
            // Pick the influence subclass consistent with the LP's roles
            // (strict validation checks this).
            let lp_kind = if registry.person(lp).roles.contains(Role::Ceo) {
                InfluenceKind::CeoOf
            } else {
                InfluenceKind::ChairmanOf
            };
            for &c in &pending[..take] {
                registry.add_influence(InfluenceRecord {
                    person: lp,
                    company: c,
                    kind: lp_kind,
                    is_legal_person: true,
                });
            }
            person_cluster.insert(lp, ci);
            pending = &pending[take..];
        }
    }

    // --- Directors: 1..=3 directorships inside one random cluster. ---
    // Weight cluster choice by size so big conglomerates get real boards.
    let cluster_weights: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
    let total_weight: usize = cluster_weights.iter().sum();
    for &d in &directors {
        let mut pick = rng.gen_range(0..total_weight);
        let mut ci = 0;
        for (i, &w) in cluster_weights.iter().enumerate() {
            if pick < w {
                ci = i;
                break;
            }
            pick -= w;
        }
        let cluster = &clusters[ci];
        let seats = rng.gen_range(1..=2usize).min(cluster.len());
        let mut targets = cluster.clone();
        targets.shuffle(&mut rng);
        for &c in &targets[..seats] {
            registry.add_influence(InfluenceRecord {
                person: d,
                company: c,
                kind: InfluenceKind::DirectorOf,
                is_legal_person: false,
            });
        }
        person_cluster.insert(d, ci);
    }

    // --- Interdependence edges, kept inside clusters. ---
    let mut by_cluster: Vec<Vec<PersonId>> = vec![Vec::new(); clusters.len()];
    for (&p, &ci) in &person_cluster {
        by_cluster[ci].push(p);
    }
    for members in &mut by_cluster {
        members.sort_unstable(); // HashMap order is nondeterministic
    }
    let eligible: Vec<usize> = (0..clusters.len())
        .filter(|&ci| by_cluster[ci].len() >= 2)
        .collect();
    let draw_edges = |rng: &mut StdRng,
                      registry: &mut SourceRegistry,
                      count: usize,
                      kind: InterdependenceKind| {
        let mut placed = 0;
        let mut attempts = 0;
        while placed < count && attempts < count * 20 {
            attempts += 1;
            let ci = eligible[rng.gen_range(0..eligible.len())];
            let members = &by_cluster[ci];
            let a = members[rng.gen_range(0..members.len())];
            let b = members[rng.gen_range(0..members.len())];
            if a != b && registry.add_interdependence(a, b, kind) {
                placed += 1;
            }
        }
    };
    draw_edges(
        &mut rng,
        &mut registry,
        config.kinship_edges,
        InterdependenceKind::Kinship,
    );
    draw_edges(
        &mut rng,
        &mut registry,
        config.interlocking_edges,
        InterdependenceKind::Interlocking,
    );

    // --- Optional mutual-investment cycles (SCC exercise). ---
    for cluster in clusters
        .iter()
        .filter(|c| c.len() >= 3)
        .take(config.investment_cycles)
    {
        // Close a cycle: the last company invests back into the root.
        registry.add_investment(InvestmentRecord {
            investor: *cluster.last().expect("cluster non-empty"),
            investee: cluster[0],
            share: 0.2,
        });
    }

    debug_assert!(registry.validate().is_ok());
    registry
}

/// Companies still pending across clusters `ci..` given `pending` left in
/// cluster `ci` — used to stretch the LP pool across the whole province.
fn remaining_after(clusters: &[Vec<CompanyId>], ci: usize, pending: &[CompanyId]) -> usize {
    pending.len() + clusters[ci + 1..].iter().map(Vec::len).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_counts() {
        let c = ProvinceConfig::default();
        assert_eq!(c.directors, 776);
        assert_eq!(c.legal_persons, 1350);
        assert_eq!(c.companies, 2452);
        assert_eq!(c.directors + c.legal_persons + c.companies, 4578);
        let f = c.expected_suspicious_fraction();
        assert!((0.045..0.057).contains(&f), "calibrated fraction {f}");
    }

    #[test]
    fn generated_registry_validates_and_has_exact_counts() {
        let config = ProvinceConfig::scaled(0.1);
        let r = generate_province(&config);
        assert!(r.validate().is_ok());
        assert_eq!(r.person_count(), config.directors + config.legal_persons);
        assert_eq!(r.company_count(), config.companies);
        assert!(r.investments().len() >= config.companies - 200);
        assert!(!r.interdependencies().is_empty());
    }

    #[test]
    fn generated_registry_passes_strict_validation() {
        let r = generate_province(&ProvinceConfig::scaled(0.1));
        assert!(r.validate_strict().is_ok());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = ProvinceConfig {
            seed: 7,
            ..ProvinceConfig::scaled(0.05)
        };
        let a = generate_province(&config);
        let b = generate_province(&config);
        assert_eq!(a.investments().len(), b.investments().len());
        assert_eq!(a.influences(), b.influences());
        assert_eq!(a.interdependencies(), b.interdependencies());
        let c = generate_province(&ProvinceConfig { seed: 8, ..config });
        assert!(
            a.influences() != c.influences(),
            "different seed, different data"
        );
    }

    #[test]
    fn every_company_has_exactly_one_legal_person() {
        let r = generate_province(&ProvinceConfig::scaled(0.08));
        let lps = r.legal_persons();
        assert!(lps.iter().all(Option::is_some));
    }

    #[test]
    fn investment_cycles_knob_plants_sccs() {
        let config = ProvinceConfig {
            investment_cycles: 2,
            ..ProvinceConfig::scaled(0.1)
        };
        let r = generate_province(&config);
        let gi = tpiin_fusion::stages::build_investment_graph(&r);
        let sccs = tpiin_graph::tarjan_scc(&gi);
        let nontrivial = sccs.iter().filter(|c| c.len() >= 2).count();
        assert_eq!(nontrivial, 2);
    }

    #[test]
    fn scaled_config_shrinks_proportionally() {
        let c = ProvinceConfig::scaled(0.5);
        assert_eq!(c.directors, 388);
        assert_eq!(c.legal_persons, 675);
        assert_eq!(c.companies, 1226);
    }
}
