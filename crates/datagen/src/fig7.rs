//! The paper's worked example: the un-contracted network of Fig. 7.
//!
//! Fusing this registry reproduces the subTPIIN of Fig. 8 (persons L6/LB
//! merge into the syndicate the paper calls `L1`; directors B5/B6 merge
//! into `B2`), the patterns tree of Fig. 9, the 15-row potential component
//! pattern base of Fig. 10, and the three suspicious groups of Section
//! 4.3: `(L1, C1, C2, C3, C5)`, `(B1, C5, C6)` and `(B2, C7, C8)`.
//!
//! Syndicate labels concatenate member names, so the paper's `L1` appears
//! as `"L6+LB"` and its `B2` as `"B5+B6"`.

use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

/// The expected component pattern base (Fig. 10) in label form: prefix
/// labels plus the optional trading target label.
pub const FIG7_EXPECTED_PATTERNS: [(&[&str], Option<&str>); 15] = [
    (&["L6+LB", "C2", "C5"], Some("C6")),
    (&["L6+LB", "C2", "C5"], Some("C7")),
    (&["L6+LB", "C1", "C3"], Some("C5")),
    (&["L6+LB", "C4"], None),
    (&["L3", "C5"], Some("C7")),
    (&["L3", "C5"], Some("C6")),
    (&["L2", "C3"], Some("C5")),
    (&["B1", "C5"], Some("C6")),
    (&["B1", "C5"], Some("C7")),
    (&["B1", "C6"], None),
    (&["L4", "C6"], None),
    (&["L4", "C7"], Some("C8")),
    (&["B5+B6", "C7"], Some("C8")),
    (&["B5+B6", "C8"], Some("C4")),
    (&["L5", "C8"], Some("C4")),
];

/// Builds the un-contracted taxpayer interest interacted network of
/// Fig. 7 as a source registry.
pub fn fig7_registry() -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let ceo = RoleSet::of(&[Role::Ceo]);
    let dir = RoleSet::of(&[Role::Director]);

    let l6 = r.add_person("L6", ceo);
    let lb = r.add_person("LB", ceo);
    let l2 = r.add_person("L2", ceo);
    let l3 = r.add_person("L3", ceo);
    let l4 = r.add_person("L4", ceo);
    let l5 = r.add_person("L5", ceo);
    let b1 = r.add_person("B1", dir);
    let b5 = r.add_person("B5", dir);
    let b6 = r.add_person("B6", dir);

    let c: Vec<_> = (1..=8).map(|i| r.add_company(format!("C{i}"))).collect();
    let company = |i: usize| c[i - 1];

    // Kinship L6–LB (the paper's syndicate L1) and interlocking B5–B6
    // (the paper's syndicate B2).
    r.add_interdependence(l6, lb, InterdependenceKind::Kinship);
    r.add_interdependence(b5, b6, InterdependenceKind::Interlocking);

    // Legal-person links (every company exactly one).
    for (p, i) in [
        (l6, 1),
        (lb, 2),
        (l2, 3),
        (lb, 4),
        (l3, 5),
        (l4, 6),
        (l4, 7),
        (l5, 8),
    ] {
        r.add_influence(InfluenceRecord {
            person: p,
            company: company(i),
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    // Directorships.
    for (p, i) in [(b1, 5), (b1, 6), (b5, 7), (b6, 8)] {
        r.add_influence(InfluenceRecord {
            person: p,
            company: company(i),
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    // Investment arcs C1 -> C3 and C2 -> C5.
    r.add_investment(InvestmentRecord {
        investor: company(1),
        investee: company(3),
        share: 0.8,
    });
    r.add_investment(InvestmentRecord {
        investor: company(2),
        investee: company(5),
        share: 0.6,
    });
    // Trading arcs (Fig. 8's `Trade` table).
    for (s, b) in [(3, 5), (5, 6), (5, 7), (7, 8), (8, 4)] {
        r.add_trading(TradingRecord {
            seller: company(s),
            buyer: company(b),
            volume: 100.0,
        });
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_validates() {
        assert!(fig7_registry().validate().is_ok());
    }

    #[test]
    fn fusion_merges_the_two_syndicates_of_fig8() {
        let (tpiin, report) = tpiin_fusion::fuse(&fig7_registry()).unwrap();
        assert_eq!(report.person_syndicates_merged, 2);
        // 9 persons -> 7 person nodes; 8 companies unchanged.
        assert_eq!(report.person_syndicate_count, 7);
        assert_eq!(report.company_syndicate_count, 8);
        assert_eq!(tpiin.node_count(), 15);
        let labels: Vec<&str> = tpiin.graph.nodes().map(|(_, n)| n.label()).collect();
        assert!(labels.contains(&"L6+LB"), "{labels:?}");
        assert!(labels.contains(&"B5+B6"), "{labels:?}");
    }

    #[test]
    fn fused_arc_counts_match_fig8() {
        let (tpiin, _) = tpiin_fusion::fuse(&fig7_registry()).unwrap();
        // 12 person->company arcs + 2 investment arcs.
        assert_eq!(tpiin.influence_arc_count, 14);
        assert_eq!(tpiin.trading_arc_count, 5);
    }
}
