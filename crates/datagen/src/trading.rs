//! Random trading-network generation (the Gephi sweep of Section 5.1).
//!
//! "a trading network is produced according to the rules of random network
//! […] the value of trading probability of each node (company) trading
//! with other companies in the network has a range of 0.002 to 0.1".  We
//! model this as a directed Erdős–Rényi graph over ordered company pairs:
//! each of the `n·(n-1)` possible arcs exists independently with
//! probability `p`.  For the paper's 2452 companies this reproduces the
//! Table 1 totals within sampling noise (e.g. `p = 0.002` →
//! `E ≈ 12 020` vs the paper's 11 939).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpiin_model::{CompanyId, SourceRegistry, TradingRecord};

/// Expected number of trading arcs for `n` companies at probability `p`.
pub fn expected_trading_arcs(n: usize, p: f64) -> f64 {
    (n * (n - 1)) as f64 * p
}

/// Appends a random trading network to `registry`: each ordered company
/// pair `(i, j)`, `i ≠ j`, trades with probability `p`.  Volumes are
/// drawn uniformly from `10..10_000`.  Returns the number of arcs added.
///
/// Sampling skips between successes geometrically, so the cost is
/// proportional to the number of arcs generated, not to `n²` — at
/// `p = 0.002` over 2452 companies that is ~12 k samples instead of 6 M.
pub fn add_random_trading(registry: &mut SourceRegistry, p: f64, seed: u64) -> usize {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let n = registry.company_count();
    if n < 2 || p == 0.0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let total = (n as u64) * (n as u64 - 1);
    let mut added = 0usize;
    if p >= 1.0 {
        for idx in 0..total {
            let (i, j) = unrank(idx, n as u64);
            registry.add_trading(TradingRecord {
                seller: CompanyId(i),
                buyer: CompanyId(j),
                volume: rng.gen_range(10.0..10_000.0),
            });
            added += 1;
        }
        return added;
    }
    let log1mp = (1.0 - p).ln();
    // First success position via the geometric distribution, then gaps.
    let mut idx: u64 = skip(&mut rng, log1mp);
    while idx < total {
        let (i, j) = unrank(idx, n as u64);
        registry.add_trading(TradingRecord {
            seller: CompanyId(i),
            buyer: CompanyId(j),
            volume: rng.gen_range(10.0..10_000.0),
        });
        added += 1;
        idx = idx.saturating_add(1 + skip(&mut rng, log1mp));
    }
    added
}

/// Plants a circular-trading ring: one trading arc from each member to
/// the next, closing back to the first.  Returns the number of arcs
/// appended (`members.len()`).  The ring is the pattern the
/// circular-trading miner looks for; callers typically also spread
/// distinct tax rates over the members so the rate-differential score
/// is non-zero.
///
/// # Panics
///
/// Panics when fewer than two members are given (a 1-ring would be a
/// self-trade, which registry validation rejects).
pub fn plant_trading_ring(registry: &mut SourceRegistry, members: &[CompanyId]) -> usize {
    assert!(members.len() >= 2, "a trading ring needs >= 2 companies");
    for (i, &seller) in members.iter().enumerate() {
        registry.add_trading(TradingRecord {
            seller,
            buyer: members[(i + 1) % members.len()],
            volume: 1_000.0,
        });
    }
    members.len()
}

/// Geometric gap: number of failures before the next success.
pub(crate) fn skip(rng: &mut StdRng, log1mp: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let g = (u.ln() / log1mp).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Maps a rank in `0..n(n-1)` to the ordered pair `(i, j)`, `i != j`.
pub(crate) fn unrank(idx: u64, n: u64) -> (u32, u32) {
    let i = idx / (n - 1);
    let r = idx % (n - 1);
    let j = if r >= i { r + 1 } else { r };
    (i as u32, j as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{InfluenceKind, InfluenceRecord, Role, RoleSet};

    fn companies(n: usize) -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let lp = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        for i in 0..n {
            let c = r.add_company(format!("C{i}"));
            r.add_influence(InfluenceRecord {
                person: lp,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r
    }

    #[test]
    fn unrank_enumerates_all_offdiagonal_pairs() {
        let n = 5u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) {
            let (i, j) = unrank(idx, n);
            assert_ne!(i, j);
            assert!(u64::from(i) < n && u64::from(j) < n);
            assert!(seen.insert((i, j)), "pair repeated at rank {idx}");
        }
        assert_eq!(seen.len(), (n * (n - 1)) as usize);
    }

    #[test]
    fn arc_count_tracks_expectation() {
        let mut r = companies(500);
        let p = 0.01;
        let added = add_random_trading(&mut r, p, 42);
        let expect = expected_trading_arcs(500, p);
        // Binomial std-dev is ~49.7; allow 5 sigma.
        assert!(
            (added as f64 - expect).abs() < 5.0 * (expect * (1.0 - p)).sqrt(),
            "added {added}, expected {expect}"
        );
        assert_eq!(r.tradings().len(), added);
        assert!(r.validate().is_ok(), "no self arcs generated");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = companies(100);
        let mut b = companies(100);
        add_random_trading(&mut a, 0.05, 7);
        add_random_trading(&mut b, 0.05, 7);
        assert_eq!(a.tradings(), b.tradings());
        let mut c = companies(100);
        add_random_trading(&mut c, 0.05, 8);
        assert_ne!(a.tradings(), c.tradings());
    }

    #[test]
    fn p_zero_and_tiny_registries_add_nothing() {
        let mut r = companies(1);
        assert_eq!(add_random_trading(&mut r, 0.5, 1), 0);
        let mut r = companies(10);
        assert_eq!(add_random_trading(&mut r, 0.0, 1), 0);
    }

    #[test]
    fn p_one_generates_the_complete_digraph() {
        let mut r = companies(6);
        let added = add_random_trading(&mut r, 1.0, 1);
        assert_eq!(added, 30);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let mut r = companies(3);
        add_random_trading(&mut r, 1.5, 1);
    }
}
