//! `tpiin-datagen` — synthetic data for the TPIIN experiments.
//!
//! The paper evaluates on real CSRC/HRDPSC/PTAOS extracts from one Chinese
//! province (776 directors, 1350 legal persons, 2452 companies — 4578
//! TPIIN nodes) plus Gephi-generated random trading networks with per-node
//! trading probability 0.002–0.1.  The real extracts are not available, so
//! [`generate_province`] produces a seeded synthetic population with the
//! same node counts and a conglomerate structure calibrated so that the
//! fraction of co-influenced company pairs — and therefore the suspicious
//! trading-relationship percentage of Table 1 — lands in the paper's
//! 4.9–5.4 % band.  [`add_random_trading`] reproduces the trading sweep as
//! a directed Erdős–Rényi graph over ordered company pairs.
//!
//! The module also ships exact builders for the paper's worked examples:
//! [`fig7_registry`] (the un-contracted network of Fig. 7, whose fusion
//! and mining reproduce Figs. 8–10) and the three case studies of
//! Section 3.1 ([`case1_registry`], [`case2_registry`], [`case3_registry`]).

mod cases;
mod fig7;
mod mutation_stream;
mod nation;
mod province;
mod trading;

pub use cases::{
    case1_registry, case2_registry, case3_registry, circular_case_registry,
    circular_control_registry, windowed_case_registry, CIRCULAR_RING_LEN, WINDOWED_EARLY,
    WINDOWED_LATE, WINDOWED_QUIET,
};
pub use fig7::{fig7_registry, FIG7_EXPECTED_PATTERNS};
pub use mutation_stream::{generate_mutation_stream, MutationStream, MutationStreamConfig};
pub use nation::{
    add_cross_province_trading, generate_nation, generate_nation_with, NationConfig,
    NATION_RATE_BRACKETS,
};
pub use province::{generate_province, ProvinceConfig};
pub use trading::{add_random_trading, expected_trading_arcs, plant_trading_ring};
