//! A deliberately small HTTP/1.1 subset over blocking sockets.
//!
//! The daemon speaks just enough HTTP for investigator tools and
//! scrapers: one request per connection (`Connection: close`), GET and
//! POST, `Content-Length` bodies, percent-encoded query strings.  The
//! parser works on raw bytes with hard limits on every dimension
//! (request-line length, header count and size, body size) and returns
//! an error instead of panicking on arbitrary input — the accept loop
//! feeds it whatever the network delivers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on one header line (and the request line), in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of header lines.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, decoded path, decoded query pairs, body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string excluded.
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in
    /// order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps onto a 4xx response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header or encoding.
    Bad(String),
    /// A line, the header block or the body exceeded its limit.
    TooLarge(String),
    /// The socket closed or timed out before a full request arrived.
    Incomplete,
}

impl ParseError {
    /// The HTTP status this error should produce.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Bad(_) => 400,
            ParseError::TooLarge(_) => 413,
            ParseError::Incomplete => 408,
        }
    }

    /// Human-readable reason for the response body.
    pub fn reason(&self) -> String {
        match self {
            ParseError::Bad(msg) => format!("bad request: {msg}"),
            ParseError::TooLarge(what) => format!("request too large: {what}"),
            ParseError::Incomplete => "incomplete request".to_string(),
        }
    }
}

/// Reads one `\r\n`- (or `\n`-) terminated line as raw bytes, bounded.
fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<Vec<u8>, ParseError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(|_| ParseError::Incomplete)?;
        if buf.is_empty() {
            return Err(ParseError::Incomplete);
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(line);
        }
        let len = buf.len();
        line.extend_from_slice(buf);
        reader.consume(len);
        if line.len() > MAX_LINE_BYTES {
            return Err(ParseError::TooLarge("header line".into()));
        }
    }
}

/// Decodes `%XX` escapes (and `+` as space) into bytes, then UTF-8.
pub fn percent_decode(text: &str) -> Result<String, ParseError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| ParseError::Bad("bad percent escape".into()))?;
                out.push(hex);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| ParseError::Bad("escape decodes to invalid UTF-8".into()))
}

/// Splits and decodes `a=1&b=2` query text.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut pairs = Vec::new();
    for piece in raw.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = piece.split_once('=').unwrap_or((piece, ""));
        pairs.push((percent_decode(key)?, percent_decode(value)?));
    }
    Ok(pairs)
}

/// Parses one request from `stream`, honouring `max_body_bytes`.
pub fn parse_request(
    reader: &mut BufReader<&TcpStream>,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    let request_line = read_line(reader)?;
    let request_line = std::str::from_utf8(&request_line)
        .map_err(|_| ParseError::Bad("request line is not UTF-8".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version `{version}`")));
    }

    let mut content_length = 0usize;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let line = std::str::from_utf8(&line)
            .map_err(|_| ParseError::Bad("header is not UTF-8".into()))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header `{line}`")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad("bad Content-Length".into()))?;
        }
    }
    if content_length > max_body_bytes {
        return Err(ParseError::TooLarge(format!(
            "body of {content_length} bytes (limit {max_body_bytes})"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|_| ParseError::Incomplete)?;
    }

    let (raw_path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    Ok(Request {
        method,
        path: percent_decode(raw_path)?,
        query: parse_query(raw_query)?,
        body,
    })
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written after the standard
    /// ones — e.g. the per-request `x-tpiin-trace` id.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (compact encoding).
    pub fn json(status: u16, value: &tpiin_io::json::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: value.to_string().into_bytes(),
        }
    }

    /// A JSON response from an already-encoded body (e.g. the Chrome
    /// trace export, which is produced by `tpiin-obs`'s own encoder).
    pub fn json_text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds an extra response header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// A JSON error envelope `{"error": reason}`.
    pub fn error(status: u16, reason: impl Into<String>) -> Response {
        Response::json(
            status,
            &tpiin_io::json::Json::Object(vec![(
                "error".to_string(),
                tpiin_io::json::Json::String(reason.into()),
            )]),
        )
    }

    /// Serializes status line, headers and body onto `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs the parser against raw bytes via a real socket pair.
    fn parse_bytes(bytes: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(bytes).unwrap();
        drop(client); // EOF so Incomplete surfaces instead of blocking
        let (server, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(&server);
        parse_request(&mut reader, 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse_bytes(b"GET /groups_behind_arc?src=C%203&dst=C5 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/groups_behind_arc");
        assert_eq!(req.query_param("src"), Some("C 3"));
        assert_eq!(req.query_param("dst"), Some("C5"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body() {
        let req = parse_bytes(b"POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            &b"\xff\xfe\xfd\xfc\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\nshort",
            b"GET /%zz HTTP/1.1\r\n\r\n",
            b"",
        ] {
            assert!(parse_bytes(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn body_limit_is_enforced() {
        let err = parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn percent_decoding_is_byte_level() {
        // UTF-8 bytes of '中' escaped individually must reassemble.
        assert_eq!(percent_decode("%E4%B8%AD").unwrap(), "中");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert!(percent_decode("%E4").is_err(), "lone UTF-8 byte rejected");
    }

    #[test]
    fn response_serializes_with_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        Response::text(200, "hello").write_to(&mut server).unwrap();
        drop(server);
        let mut text = String::new();
        let mut reader = BufReader::new(&client);
        reader.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"), "{text}");
        assert!(text.ends_with("hello"), "{text}");
    }

    #[test]
    fn extra_headers_are_written_before_the_blank_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        Response::text(200, "ok")
            .with_header("x-tpiin-trace", "deadbeef")
            .write_to(&mut server)
            .unwrap();
        drop(server);
        let mut text = String::new();
        let mut reader = BufReader::new(&client);
        reader.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("x-tpiin-trace: deadbeef"), "{head}");
        assert_eq!(body, "ok");
    }
}
