//! Immutable serving snapshots with atomic hot swap.
//!
//! A [`ServeSnapshot`] bundles everything one request needs — the fused
//! TPIIN, a full detection result and a label index — behind an `Arc`.
//! The [`SnapshotStore`] holds the current snapshot under a `RwLock`
//! taken only long enough to clone the `Arc`: readers never block each
//! other, never block on detection, and in-flight requests keep serving
//! the epoch they started on while a reload or ingest swaps a newer
//! snapshot in behind them.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use tpiin_core::{mine_with_obs, DetectionResult, MineContext, MinerRegistry, RULES_MINER};
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;

/// One immutable epoch of the served network.
pub struct ServeSnapshot {
    /// Monotone generation counter; bumps on every swap.
    pub epoch: u64,
    /// The fused network this epoch serves.
    pub tpiin: Tpiin,
    /// Full detection over `tpiin`, keyed by miner name in mining
    /// order.  The primary strategy — the Rule 1/Rule 2 detector — is
    /// always first; `/groups?miner=...` selects the others.
    pub detections: Vec<(String, DetectionResult)>,
    /// Label -> node index for query-by-label endpoints.
    labels: BTreeMap<String, NodeId>,
}

impl ServeSnapshot {
    /// Runs the default serving miner set
    /// ([`MinerRegistry::with_defaults`]: Rule 1/Rule 2 plus
    /// circular trading) over `tpiin` and indexes its labels.
    pub fn build(epoch: u64, tpiin: Tpiin) -> ServeSnapshot {
        ServeSnapshot::build_with(epoch, tpiin, &MinerRegistry::with_defaults())
    }

    /// Runs an explicit miner set over `tpiin`.
    pub fn build_with(epoch: u64, tpiin: Tpiin, miners: &MinerRegistry) -> ServeSnapshot {
        let ctx = MineContext::default();
        let detections = miners
            .iter()
            .map(|m| (m.name().to_string(), mine_with_obs(m, &tpiin, &ctx)))
            .collect();
        ServeSnapshot::with_detections(epoch, tpiin, detections)
    }

    /// Wraps an already-computed primary detection result as a
    /// rules-only snapshot (the ingest path extends the previous
    /// epoch's result instead of re-detecting).
    pub fn with_detection(epoch: u64, tpiin: Tpiin, detection: DetectionResult) -> ServeSnapshot {
        ServeSnapshot::with_detections(epoch, tpiin, vec![(RULES_MINER.to_string(), detection)])
    }

    /// Wraps already-computed per-miner detection results.
    ///
    /// # Panics
    ///
    /// Panics when `detections` is empty — a snapshot always serves at
    /// least its primary result.
    pub fn with_detections(
        epoch: u64,
        tpiin: Tpiin,
        detections: Vec<(String, DetectionResult)>,
    ) -> ServeSnapshot {
        assert!(!detections.is_empty(), "a snapshot needs >= 1 detection");
        let labels = tpiin
            .graph
            .nodes()
            .map(|(id, node)| (node.label().to_string(), id))
            .collect();
        ServeSnapshot {
            epoch,
            tpiin,
            detections,
            labels,
        }
    }

    /// The primary detection result (the first configured miner's —
    /// the Rule 1/Rule 2 detector in every built-in configuration).
    pub fn detection(&self) -> &DetectionResult {
        &self.detections[0].1
    }

    /// Name of the primary miner.
    pub fn primary_miner(&self) -> &str {
        &self.detections[0].0
    }

    /// The detection result of the miner named `name`.
    pub fn detection_for(&self, name: &str) -> Option<&DetectionResult> {
        self.detections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
    }

    /// The served miner names, in mining order.
    pub fn miner_names(&self) -> Vec<&str> {
        self.detections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Resolves `text` to a node: exact label first, then a bare node
    /// index (useful for syndicate nodes with long composite labels).
    pub fn resolve_node(&self, text: &str) -> Option<NodeId> {
        if let Some(&id) = self.labels.get(text) {
            return Some(id);
        }
        let index: usize = text.parse().ok()?;
        (index < self.tpiin.node_count()).then(|| NodeId::from_index(index))
    }

    /// The detection set for the next epoch after an ingest batch: the
    /// delta engine's freshly maintained primary result replaces the
    /// Rule 1/Rule 2 entry; other miners' results are carried over
    /// unchanged and refresh on the next full snapshot reload.
    pub fn detections_with_primary(
        &self,
        primary: DetectionResult,
    ) -> Vec<(String, DetectionResult)> {
        let mut next: Vec<(String, DetectionResult)> = self.detections.clone();
        next[0].1 = primary;
        next
    }
}

/// The hot-swap cell: readers clone the `Arc`, the single writer
/// replaces it.
pub struct SnapshotStore {
    current: RwLock<Arc<ServeSnapshot>>,
}

impl SnapshotStore {
    /// Starts serving `snapshot`.
    pub fn new(snapshot: ServeSnapshot) -> SnapshotStore {
        SnapshotStore {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The snapshot to serve this request from.  The read lock is held
    /// only for the `Arc` clone; the request then runs lock-free.
    pub fn current(&self) -> Arc<ServeSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Atomically replaces the served snapshot; returns its epoch.
    /// In-flight requests holding the old `Arc` finish undisturbed.
    pub fn swap(&self, snapshot: ServeSnapshot) -> u64 {
        let epoch = snapshot.epoch;
        *self.current.write() = Arc::new(snapshot);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_snapshot() -> ServeSnapshot {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        ServeSnapshot::build(1, tpiin)
    }

    #[test]
    fn build_detects_and_indexes_labels() {
        let snap = fig7_snapshot();
        assert!(snap.detection().group_count() > 0);
        assert_eq!(snap.primary_miner(), "rules");
        assert_eq!(snap.miner_names(), ["rules", "circular"]);
        assert!(snap.detection_for("circular").is_some());
        assert!(snap.detection_for("no-such-miner").is_none());
        let c3 = snap.resolve_node("C3").expect("C3 label resolves");
        assert_eq!(snap.tpiin.label(c3), "C3");
        // Bare indexes resolve too.
        assert_eq!(snap.resolve_node("0"), Some(NodeId::from_index(0)));
        assert_eq!(snap.resolve_node("no-such-label"), None);
        assert_eq!(snap.resolve_node("999999"), None);
    }

    #[test]
    fn swap_replaces_while_old_arc_keeps_serving() {
        let store = SnapshotStore::new(fig7_snapshot());
        let old = store.current();
        assert_eq!(old.epoch, 1);
        let mut next = fig7_snapshot();
        next.epoch = 2;
        assert_eq!(store.swap(next), 2);
        assert_eq!(store.current().epoch, 2);
        // The in-flight reader still owns the old epoch.
        assert_eq!(old.epoch, 1);
        assert!(old.detection().group_count() > 0);
    }
}
