//! JSON response builders for every daemon endpoint.
//!
//! These are plain functions from snapshot data to [`Json`] values so
//! the integration tests can assert that an HTTP body is bit-identical
//! to what the offline pipeline produces: both sides call the same
//! builder and the compact `Display` encoding of [`Json`] is
//! deterministic.  Nodes are reported by label (stable across runs),
//! never by internal node id.

use crate::store::ServeSnapshot;
use tpiin_core::{DetectionResult, GroupKind, SuspiciousGroup, RULES_MINER};
use tpiin_delta::{ApplyOutcome, DeltaStats};
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;
use tpiin_io::json::Json;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(value: usize) -> Json {
    Json::Number(value as f64)
}

fn s(text: impl Into<String>) -> Json {
    Json::String(text.into())
}

fn label_array(tpiin: &Tpiin, nodes: impl IntoIterator<Item = NodeId>) -> Json {
    Json::Array(nodes.into_iter().map(|n| s(tpiin.label(n))).collect())
}

/// One suspicious group with its proof chain, fully labelled.  `miner`
/// names the strategy that mined it, so a paginated or merged listing
/// stays self-describing.
pub fn group_json(tpiin: &Tpiin, group: &SuspiciousGroup, miner: &str) -> Json {
    let kind = match group.kind {
        GroupKind::Circle => "circle",
        GroupKind::Matched if group.simple => "simple",
        GroupKind::Matched => "complex",
    };
    obj(vec![
        ("kind", s(kind)),
        ("miner", s(miner)),
        ("antecedent", s(tpiin.label(group.antecedent))),
        ("end", s(tpiin.label(group.end))),
        (
            "trading_arc",
            label_array(tpiin, [group.trading_arc.0, group.trading_arc.1]),
        ),
        (
            "trail_with_trade",
            label_array(tpiin, group.trail_with_trade.iter().copied()),
        ),
        (
            "trail_plain",
            label_array(tpiin, group.trail_plain.iter().copied()),
        ),
        ("members", label_array(tpiin, group.members())),
        ("explanation", s(group.explain(tpiin))),
    ])
}

/// The `/groups` body: headline counters for one miner's detection plus
/// the `[offset, offset + limit)` page of its groups.
pub fn groups_json(
    snapshot: &ServeSnapshot,
    miner: &str,
    detection: &DetectionResult,
    limit: Option<usize>,
    offset: usize,
) -> Json {
    let total = detection.groups.len();
    let offset = offset.min(total);
    let shown = limit.unwrap_or(total - offset).min(total - offset);
    obj(vec![
        ("epoch", num(snapshot.epoch as usize)),
        ("miner", s(miner)),
        ("group_count", num(detection.group_count())),
        ("complex", num(detection.complex_group_count)),
        ("simple", num(detection.simple_group_count)),
        (
            "suspicious_trading_arcs",
            num(detection.suspicious_trading_arcs.len()),
        ),
        ("total_trading_arcs", num(detection.total_trading_arcs)),
        (
            "intra_syndicate_trades",
            num(detection.intra_syndicate_trades),
        ),
        ("offset", num(offset)),
        ("shown", num(shown)),
        (
            "groups",
            Json::Array(
                detection.groups[offset..offset + shown]
                    .iter()
                    .map(|g| group_json(&snapshot.tpiin, g, miner))
                    .collect(),
            ),
        ),
    ])
}

/// The `/groups_behind_arc` body: the Section 6 investigator query.
pub fn arc_query_json(
    tpiin: &Tpiin,
    epoch: u64,
    src: NodeId,
    dst: NodeId,
    groups: &[SuspiciousGroup],
) -> Json {
    obj(vec![
        ("epoch", num(epoch as usize)),
        ("src", s(tpiin.label(src))),
        ("dst", s(tpiin.label(dst))),
        (
            "arc_exists",
            Json::Bool(tpiin.graph.contains_edge(src, dst)),
        ),
        ("group_count", num(groups.len())),
        (
            "groups",
            Json::Array(
                groups
                    .iter()
                    .map(|g| group_json(tpiin, g, RULES_MINER))
                    .collect(),
            ),
        ),
    ])
}

/// The `/company/{id}` body: one node's profile plus the primary
/// miner's groups it belongs to.
pub fn company_json(snapshot: &ServeSnapshot, node: NodeId) -> Json {
    let tpiin = &snapshot.tpiin;
    let miner = snapshot.primary_miner();
    let groups: Vec<&SuspiciousGroup> = snapshot.detection().groups_involving(node).collect();
    obj(vec![
        ("epoch", num(snapshot.epoch as usize)),
        ("label", s(tpiin.label(node))),
        ("node", num(node.index())),
        (
            "color",
            s(format!("{:?}", tpiin.color(node)).to_ascii_lowercase()),
        ),
        ("out_degree", num(tpiin.graph.out_degree(node))),
        ("in_degree", num(tpiin.graph.in_degree(node))),
        ("group_count", num(groups.len())),
        (
            "groups",
            Json::Array(groups.iter().map(|g| group_json(tpiin, g, miner)).collect()),
        ),
    ])
}

/// The `POST /ingest` body: which delta path ran, only what this batch
/// changed, plus the engine's lifetime totals.  The original
/// trading-append fields keep their names so pre-delta clients parse
/// the response unchanged.
pub fn ingest_json(tpiin: &Tpiin, epoch: u64, outcome: &ApplyOutcome, stats: &DeltaStats) -> Json {
    obj(vec![
        ("epoch", num(epoch as usize)),
        ("path", s(outcome.path.as_str())),
        ("mutations_applied", num(outcome.mutations_applied)),
        ("new_group_count", num(outcome.new_groups.len())),
        (
            "new_groups",
            Json::Array(
                outcome
                    .new_groups
                    .iter()
                    .map(|g| group_json(tpiin, g, RULES_MINER))
                    .collect(),
            ),
        ),
        (
            "new_suspicious_arcs",
            Json::Array(
                outcome
                    .new_suspicious_arcs
                    .iter()
                    .map(|&(a, b)| label_array(tpiin, [a, b]))
                    .collect(),
            ),
        ),
        ("duplicates", num(outcome.duplicates)),
        ("intra_syndicate", num(outcome.intra_syndicate)),
        ("arcs_patched", num(outcome.arcs_patched)),
        ("shards_remined", num(outcome.shards_remined)),
        ("cache_hits", num(outcome.cache_hits)),
        (
            "totals",
            obj(vec![
                ("records", num(stats.records_ingested as usize)),
                ("duplicates", num(stats.duplicates as usize)),
                ("intra_syndicate", num(stats.intra_syndicate as usize)),
                ("arcs_added", num(stats.arcs_added as usize)),
                ("groups", num(stats.groups_found as usize)),
                ("batches", num(stats.batches_applied as usize)),
                ("arcs_patched", num(stats.arcs_patched as usize)),
                ("company_appends", num(stats.company_appends as usize)),
                ("sccs_rerun", num(stats.sccs_rerun as usize)),
                ("full_rebuilds", num(stats.full_rebuilds as usize)),
                ("shards_remined", num(stats.shards_remined as usize)),
                ("cache_hits", num(stats.shard_cache_hits as usize)),
            ]),
        ),
    ])
}

fn fnum(value: f64) -> Json {
    Json::Number(value)
}

fn arc_provenance_json(arc: &tpiin_core::ArcProvenance) -> Json {
    obj(vec![
        ("source", s(arc.source_label.clone())),
        ("target", s(arc.target_label.clone())),
        ("color", s(format!("{:?}", arc.color).to_ascii_lowercase())),
        ("weight", fnum(arc.weight)),
        (
            "source_record",
            match arc.source_record {
                Some(seq) => num(seq as usize),
                None => Json::Null,
            },
        ),
    ])
}

/// The `/groups/{id}/provenance` body: rule, arc lineage (each arc
/// resolved to its winning source record), contraction lineage and the
/// per-term score breakdown of one mined group.  The handler resolves
/// `prov` through the owning miner's provenance hook (or the detection's
/// pre-assembled list) before calling this.
pub fn provenance_json(
    snapshot: &ServeSnapshot,
    miner: &str,
    group: &SuspiciousGroup,
    index: usize,
    prov: &tpiin_core::Provenance,
) -> Json {
    let tpiin = &snapshot.tpiin;
    let (influence_records, trading_records) = prov.source_records();
    let record_array =
        |records: Vec<u32>| Json::Array(records.into_iter().map(|r| num(r as usize)).collect());
    obj(vec![
        ("epoch", num(snapshot.epoch as usize)),
        ("miner", s(miner)),
        ("group_id", num(index)),
        ("group", group_json(tpiin, group, miner)),
        ("rule", s(prov.rule.describe())),
        (
            "influence_arcs",
            Json::Array(
                prov.influence_arcs
                    .iter()
                    .map(arc_provenance_json)
                    .collect(),
            ),
        ),
        ("trading_arc", arc_provenance_json(&prov.trading_arc)),
        (
            "members",
            Json::Array(
                prov.members
                    .iter()
                    .map(|m| {
                        obj(vec![
                            ("label", s(m.label.clone())),
                            ("color", s(format!("{:?}", m.color).to_ascii_lowercase())),
                            ("person_members", record_array(m.person_members.clone())),
                            ("company_members", record_array(m.company_members.clone())),
                            ("syndicate", Json::Bool(m.is_syndicate())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "score",
            obj(vec![
                (
                    "influence_weights",
                    Json::Array(
                        prov.score
                            .influence_weights
                            .iter()
                            .map(|&w| fnum(w))
                            .collect(),
                    ),
                ),
                ("chain_strength", fnum(prov.score.chain_strength)),
                ("trade_volume", fnum(prov.score.trade_volume)),
                ("score", fnum(prov.score.score)),
            ]),
        ),
        (
            "source_records",
            obj(vec![
                ("influence", record_array(influence_records)),
                ("trading", record_array(trading_records)),
            ]),
        ),
        ("rendered", s(prov.render(group, tpiin))),
    ])
}

/// The `/healthz` body.
pub fn health_json(snapshot: &ServeSnapshot) -> Json {
    obj(vec![
        ("status", s("ok")),
        ("epoch", num(snapshot.epoch as usize)),
        ("nodes", num(snapshot.tpiin.node_count())),
        ("trading_arcs", num(snapshot.tpiin.trading_arc_count)),
        ("groups", num(snapshot.detection().group_count())),
    ])
}

/// Everything `/status` reports beyond the snapshot itself, gathered
/// by the handler (pool occupancy, counters, process resources).
pub struct StatusReport {
    /// Seconds since the daemon bound its listener.
    pub uptime_secs: f64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Workers executing a request right now.
    pub busy_workers: usize,
    /// Requests waiting in the pool queue right now.
    pub queued_requests: usize,
    /// Queue capacity before load shedding kicks in.
    pub queue_capacity: usize,
    /// Requests shed with 503 since start.
    pub shed_requests: u64,
    /// Snapshot reloads since start.
    pub reloads: u64,
    /// Milliseconds the most recent snapshot load+swap took (0 until
    /// the first startup load or `/reload`).
    pub snapshot_load_ms: f64,
    /// Mutation batches the delta engine applied since start.
    pub batches_applied: u64,
    /// Trading arcs surgically patched into the TPIIN (no re-fuse).
    pub arcs_patched: u64,
    /// Batches absorbed by the surgical company-append path.
    pub company_appends: u64,
    /// Company SCCs re-run by bounded re-Tarjan under investment deltas.
    pub sccs_rerun: u64,
    /// Times a delta exceeded the blast radius (or removed entities)
    /// and fell back to a full re-fuse.
    pub full_rebuilds: u64,
    /// SubTPIINs re-mined across all applied batches.
    pub shards_remined: u64,
    /// SubTPIINs replayed from the shard cache instead of re-mined.
    pub shard_cache_hits: u64,
    /// Process allocator ledger.
    pub alloc: tpiin_obs::AllocStats,
    /// Kernel view (`None` off Linux).
    pub proc: Option<tpiin_obs::ProcSample>,
    /// Worst SLO alert state across the health engine (`ok`/`warn`/
    /// `page`), or `off` when the daemon runs without telemetry.
    pub health: String,
    /// SLO specs currently at `ok`.
    pub alerts_ok: usize,
    /// SLO specs currently at `warn`.
    pub alerts_warn: usize,
    /// SLO specs currently at `page`.
    pub alerts_page: usize,
}

/// The `/status` body: served-epoch shape, uptime, pool occupancy and
/// the process resource state.
pub fn status_json(snapshot: &ServeSnapshot, report: &StatusReport) -> Json {
    let mut fields = vec![
        ("status", s("ok")),
        ("epoch", num(snapshot.epoch as usize)),
        (
            "snapshot_bytes",
            Json::Number(snapshot.tpiin.approx_heap_bytes() as f64),
        ),
        ("nodes", num(snapshot.tpiin.node_count())),
        ("trading_arcs", num(snapshot.tpiin.trading_arc_count)),
        ("influence_arcs", num(snapshot.tpiin.influence_arc_count)),
        ("groups", num(snapshot.detection().group_count())),
        (
            "miners",
            Json::Array(snapshot.miner_names().into_iter().map(s).collect()),
        ),
        ("uptime_secs", Json::Number(report.uptime_secs)),
        ("workers", num(report.workers)),
        ("busy_workers", num(report.busy_workers)),
        ("queued_requests", num(report.queued_requests)),
        ("queue_capacity", num(report.queue_capacity)),
        ("shed_requests", Json::Number(report.shed_requests as f64)),
        ("reloads", Json::Number(report.reloads as f64)),
        ("snapshot_load_ms", Json::Number(report.snapshot_load_ms)),
        ("health", s(report.health.clone())),
        (
            "alerts",
            obj(vec![
                ("ok", num(report.alerts_ok)),
                ("warn", num(report.alerts_warn)),
                ("page", num(report.alerts_page)),
            ]),
        ),
        (
            "delta",
            obj(vec![
                ("batches", Json::Number(report.batches_applied as f64)),
                ("arcs_patched", Json::Number(report.arcs_patched as f64)),
                (
                    "company_appends",
                    Json::Number(report.company_appends as f64),
                ),
                ("sccs_rerun", Json::Number(report.sccs_rerun as f64)),
                ("full_rebuilds", Json::Number(report.full_rebuilds as f64)),
                ("shards_remined", Json::Number(report.shards_remined as f64)),
                ("cache_hits", Json::Number(report.shard_cache_hits as f64)),
            ]),
        ),
        (
            "alloc_live_bytes",
            Json::Number(report.alloc.live_bytes as f64),
        ),
        (
            "alloc_peak_bytes",
            Json::Number(report.alloc.peak_bytes as f64),
        ),
        (
            "alloc_total_bytes",
            Json::Number(report.alloc.total_bytes as f64),
        ),
        (
            "alloc_total_allocs",
            Json::Number(report.alloc.total_allocs as f64),
        ),
    ];
    if let Some(proc) = &report.proc {
        fields.push(("rss_bytes", Json::Number(proc.rss_bytes as f64)));
        fields.push(("minor_faults", Json::Number(proc.minor_faults as f64)));
        fields.push(("major_faults", Json::Number(proc.major_faults as f64)));
    }
    obj(fields)
}

/// `GET /timeline` with no `metric` parameter: the queryable series
/// index plus the recorder's tier configuration, so a client can pick
/// a series and know what resolution to expect.
pub fn timeline_index_json(
    names: &[String],
    last_tick: Option<u64>,
    config: &tpiin_obs::TimelineConfig,
) -> Json {
    obj(vec![
        ("last_tick", num(last_tick.unwrap_or(0) as usize)),
        ("fine_capacity", num(config.fine_capacity)),
        ("coarse_every", num(config.coarse_every as usize)),
        ("coarse_capacity", num(config.coarse_capacity)),
        (
            "metrics",
            Json::Array(names.iter().map(|n| s(n.clone())).collect()),
        ),
    ])
}

/// `GET /timeline?metric=..&since=..` — one series' points.
pub fn timeline_json(metric: &str, since: u64, points: &[tpiin_obs::TimelinePoint]) -> Json {
    obj(vec![
        ("metric", s(metric)),
        ("since", num(since as usize)),
        (
            "points",
            Json::Array(
                points
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("tick", num(p.tick as usize)),
                            ("value", Json::Number(p.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `GET /alerts` — every SLO state machine's standing.
pub fn alerts_json(
    statuses: &[tpiin_obs::AlertStatus],
    worst: tpiin_obs::AlertState,
    last_tick: Option<u64>,
) -> Json {
    obj(vec![
        ("worst", s(worst.as_str())),
        ("last_tick", num(last_tick.unwrap_or(0) as usize)),
        (
            "alerts",
            Json::Array(
                statuses
                    .iter()
                    .map(|status| {
                        obj(vec![
                            ("name", s(status.name.clone())),
                            ("state", s(status.state.as_str())),
                            ("objective", s(status.objective.clone())),
                            ("burn_short", Json::Number(status.burn_short)),
                            ("burn_long", Json::Number(status.burn_long)),
                            ("since_tick", num(status.since_tick as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `GET /slowlog` — the slow-request exemplar ring, oldest first.
/// Every entry links to its trace replay so a latency outlier is one
/// request away from its span breakdown.
pub fn slowlog_json(
    threshold_ms: f64,
    capacity: usize,
    entries: &[crate::handlers::SlowEntry],
) -> Json {
    obj(vec![
        ("threshold_ms", Json::Number(threshold_ms)),
        ("capacity", num(capacity)),
        ("count", num(entries.len())),
        (
            "entries",
            Json::Array(
                entries
                    .iter()
                    .map(|entry| {
                        let mut fields = vec![
                            ("at_secs", Json::Number(entry.at_secs)),
                            ("endpoint", s(entry.endpoint)),
                            ("status", num(entry.status as usize)),
                            ("epoch", num(entry.epoch as usize)),
                            ("latency_ms", Json::Number(entry.latency_us as f64 / 1e3)),
                            ("alloc_bytes", Json::Number(entry.alloc_bytes as f64)),
                            ("allocs", Json::Number(entry.allocs as f64)),
                        ];
                        match &entry.trace {
                            Some(id) => {
                                fields.push(("trace", s(id.clone())));
                                fields.push(("trace_url", s(format!("/trace/{id}"))));
                            }
                            None => fields.push(("trace", Json::Null)),
                        }
                        obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ServeSnapshot;

    fn snapshot() -> ServeSnapshot {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        ServeSnapshot::build(7, tpiin)
    }

    fn primary_groups(snap: &ServeSnapshot, limit: Option<usize>, offset: usize) -> Json {
        groups_json(snap, snap.primary_miner(), snap.detection(), limit, offset)
    }

    #[test]
    fn groups_json_reports_fig7_counts() {
        let snap = snapshot();
        let json = primary_groups(&snap, None, 0);
        assert_eq!(json.get("epoch").and_then(Json::as_f64), Some(7.0));
        assert_eq!(json.get("miner").and_then(Json::as_str), Some("rules"));
        let count = json.get("group_count").and_then(Json::as_f64).unwrap();
        assert!(count > 0.0);
        let Some(Json::Array(groups)) = json.get("groups") else {
            panic!("groups array missing");
        };
        assert_eq!(groups.len() as f64, count);
        // Every listed group names its owning miner.
        for group in groups {
            assert_eq!(group.get("miner").and_then(Json::as_str), Some("rules"));
        }
        // Limit truncates the list but not the counters.
        let limited = primary_groups(&snap, Some(1), 0);
        let Some(Json::Array(one)) = limited.get("groups") else {
            panic!("groups array missing");
        };
        assert_eq!(one.len(), 1);
        assert_eq!(
            limited.get("group_count").and_then(Json::as_f64),
            Some(count)
        );
    }

    #[test]
    fn groups_json_paginates_with_offset() {
        let snap = snapshot();
        let all = primary_groups(&snap, None, 0);
        let Some(Json::Array(every)) = all.get("groups") else {
            panic!("groups array missing");
        };
        assert!(every.len() >= 2, "fig7 mines multiple groups");
        // Page [1, 2) is the second element of the full listing.
        let page = primary_groups(&snap, Some(1), 1);
        assert_eq!(page.get("offset").and_then(Json::as_f64), Some(1.0));
        assert_eq!(page.get("shown").and_then(Json::as_f64), Some(1.0));
        let Some(Json::Array(items)) = page.get("groups") else {
            panic!("groups array missing");
        };
        assert_eq!(items[0].to_string(), every[1].to_string());
        // An offset past the end yields an empty page, not a panic.
        let past = primary_groups(&snap, None, 10_000);
        assert_eq!(past.get("shown").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn groups_json_serves_secondary_miners() {
        let snap = snapshot();
        let detection = snap.detection_for("circular").expect("default set");
        let json = groups_json(&snap, "circular", detection, None, 0);
        assert_eq!(json.get("miner").and_then(Json::as_str), Some("circular"));
        assert_eq!(
            json.get("group_count").and_then(Json::as_f64),
            Some(detection.group_count() as f64)
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let snap = snapshot();
        let a = primary_groups(&snap, None, 0).to_string();
        let b = primary_groups(&snap, None, 0).to_string();
        assert_eq!(a, b);
        assert!(Json::parse(&a).is_ok(), "round-trips through the parser");
    }

    #[test]
    fn arc_query_json_labels_both_ends() {
        let snap = snapshot();
        let src = snap.resolve_node("C3").unwrap();
        let dst = snap.resolve_node("C5").unwrap();
        let groups = tpiin_core::groups_behind_arc(&snap.tpiin, src, dst);
        let json = arc_query_json(&snap.tpiin, snap.epoch, src, dst, &groups);
        assert_eq!(json.get("src").and_then(Json::as_str), Some("C3"));
        assert_eq!(json.get("arc_exists"), Some(&Json::Bool(true)));
        assert_eq!(
            json.get("group_count").and_then(Json::as_f64),
            Some(groups.len() as f64)
        );
    }
}
