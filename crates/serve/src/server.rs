//! The daemon: accept loop, per-request metrics, graceful shutdown and
//! the optional snapshot file watcher.

use crate::handlers::{self, ServerState};
use crate::http::{parse_request, Response};
use crate::pool::{BoundedPool, PoolMetrics};
use crate::store::{ServeSnapshot, SnapshotStore};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};
use tpiin_core::MinerRegistry;
use tpiin_delta::DeltaEngine;
use tpiin_fusion::Tpiin;
use tpiin_model::SourceRegistry;

/// How the daemon listens and sheds load.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Connections allowed to wait for a worker before 503.
    pub queue_capacity: usize,
    /// Per-request deadline, enforced as socket read/write timeouts.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Snapshot file served on `/reload` (and watched when `watch`).
    pub snapshot_path: Option<PathBuf>,
    /// Poll `snapshot_path` for modification and hot-reload it.
    pub watch: bool,
    /// Write a final [`tpiin_obs::RunProfile`] here on shutdown.
    pub profile_out: Option<PathBuf>,
    /// Mint a [`tpiin_obs::TraceContext`] per request, echo its id in
    /// the `x-tpiin-trace` response header and keep the last
    /// `trace_ring` traces for `GET /trace/{id}`.  Off for overhead
    /// benchmarking.
    pub tracing: bool,
    /// How many recent request traces `GET /trace/{id}` can replay.
    pub trace_ring: usize,
    /// Miner specs to run on every full snapshot build (startup and
    /// reload), e.g. `["rules", "circular", "windowed:rules@0..100"]`.
    /// The first is the primary strategy served by default.  Empty means
    /// the built-in default set (`rules` + `circular`).
    pub miners: Vec<String>,
    /// Run the continuous telemetry recorder (timeline sampling + SLO
    /// evaluation once per [`ServeConfig::telemetry_tick`]).  Off for
    /// overhead benchmarking; `/timeline` and `/alerts` then 404.
    pub telemetry: bool,
    /// Wall-clock length of one recorder tick (default 1 s).
    pub telemetry_tick: Duration,
    /// Timeline retention tiers (default: 600 fine points, one coarse
    /// point per 15 ticks, 480 coarse points — 10 min + 2 h at a 1 s
    /// tick).
    pub timeline: tpiin_obs::TimelineConfig,
    /// SLO specs for the health engine; `None` means the built-in serve
    /// objectives ([`default_slos`]).
    pub slos: Option<Vec<tpiin_obs::SloSpec>>,
    /// Requests at or above this latency enter the slowlog ring.
    pub slowlog_threshold: Duration,
    /// Slow-request exemplars the slowlog ring retains.
    pub slowlog_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(2),
            max_body_bytes: 1 << 20,
            snapshot_path: None,
            watch: false,
            profile_out: None,
            tracing: true,
            trace_ring: 64,
            miners: Vec::new(),
            telemetry: true,
            telemetry_tick: Duration::from_secs(1),
            timeline: tpiin_obs::TimelineConfig::default(),
            slos: None,
            slowlog_threshold: Duration::from_millis(250),
            slowlog_capacity: 64,
        }
    }
}

/// The built-in serve objectives: per-endpoint p99 latency, error and
/// shed fractions, reload latency, and the delta engine's full-rebuild
/// rate.  Windows assume the default 1 s tick (short 60 ticks / long
/// 300 ticks); thresholds are deliberately loose — they are floors for
/// "something is clearly wrong", not tuning targets.
pub fn default_slos() -> Vec<tpiin_obs::SloSpec> {
    use tpiin_obs::SloSpec;
    vec![
        SloSpec::latency_p99("serve.groups.p99", "serve.latency.groups", 250e6),
        SloSpec::latency_p99(
            "serve.groups_behind_arc.p99",
            "serve.latency.groups_behind_arc",
            250e6,
        ),
        SloSpec::latency_p99("serve.company.p99", "serve.latency.company", 250e6),
        SloSpec::latency_p99("serve.healthz.p99", "serve.latency.healthz", 50e6),
        SloSpec::latency_p99("serve.ingest.p99", "serve.latency.ingest", 1e9),
        SloSpec::latency_p99("serve.reload.p99", "serve.latency.reload", 4e9),
        // 5xx responses against a 1% error budget.
        SloSpec::rate_ratio(
            "serve.error_rate",
            &["serve.responses.5xx"],
            &["serve.responses."],
            0.01,
        ),
        // Shed connections never reach the response counters, so the
        // denominator is answered + shed.
        SloSpec::rate_ratio(
            "serve.shed_rate",
            &["serve.shed"],
            &["serve.responses.", "serve.shed"],
            0.01,
        ),
        // The delta engine budgets one full rebuild per minute of
        // ticks; a rebuild storm means the surgical paths stopped
        // absorbing the feed.
        SloSpec::event_rate("delta.full_rebuilds", "delta.full_rebuilds", 1.0 / 60.0),
    ]
}

/// Errors starting or feeding the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the listen address.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// Could not read the snapshot file.
    File {
        /// The offending path.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The snapshot file did not parse.
    Snapshot(tpiin_io::IoError),
    /// A configured miner spec did not resolve.
    Miner(String),
    /// The source registry handed to [`ServerHandle::bind_with_registry`]
    /// did not fuse.
    Registry(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "binding {addr}: {source}"),
            ServeError::File { path, source } => {
                write!(f, "reading {}: {source}", path.display())
            }
            ServeError::Snapshot(err) => write!(f, "snapshot: {err}"),
            ServeError::Miner(reason) => write!(f, "miner config: {reason}"),
            ServeError::Registry(reason) => write!(f, "registry: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } | ServeError::File { source, .. } => Some(source),
            ServeError::Snapshot(err) => Some(err),
            ServeError::Miner(_) | ServeError::Registry(_) => None,
        }
    }
}

/// Loads and parses a snapshot file (CLI and daemon startup).  The
/// format is auto-detected: files starting with the `TPIINBIN` magic
/// take the zero-copy binary path, everything else parses as the text
/// `tpiin-snapshot` format.
pub fn load_snapshot_file(path: &std::path::Path) -> Result<Tpiin, ServeError> {
    let bytes = std::fs::read(path).map_err(|source| ServeError::File {
        path: path.to_path_buf(),
        source,
    })?;
    tpiin_io::snapshot::read_snapshot_bytes(&bytes).map_err(ServeError::Snapshot)
}

/// A running daemon; dropping it (or calling [`ServerHandle::shutdown`])
/// stops accepting, drains in-flight requests and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    recorder: Option<JoinHandle<()>>,
    profile_out: Option<PathBuf>,
}

impl ServerHandle {
    /// Builds the initial snapshot from `tpiin` (full detection), binds
    /// `config.addr` and starts serving.  The ingest writer runs in
    /// trading-append mode: registry mutations get 422 because no
    /// source registry backs the snapshot.
    pub fn bind(tpiin: Tpiin, config: ServeConfig) -> Result<ServerHandle, ServeError> {
        ServerHandle::bind_engine(DeltaEngine::from_tpiin(tpiin), config)
    }

    /// Fuses `registry`, binds `config.addr` and starts serving with a
    /// registry-backed delta engine: `POST /ingest` then accepts the
    /// full mutation vocabulary (companies, directors, investments,
    /// trading) and maintains the served TPIIN incrementally.
    pub fn bind_with_registry(
        registry: SourceRegistry,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        let engine =
            DeltaEngine::new(registry).map_err(|err| ServeError::Registry(err.to_string()))?;
        ServerHandle::bind_engine(engine, config)
    }

    fn bind_engine(engine: DeltaEngine, config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let tpiin = engine.tpiin().clone();
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;

        let miners = if config.miners.is_empty() {
            MinerRegistry::with_defaults()
        } else {
            MinerRegistry::from_specs(&config.miners).map_err(ServeError::Miner)?
        };
        let snapshot = ServeSnapshot::build_with(1, tpiin, &miners);
        let telemetry = config.telemetry.then(|| {
            Arc::new(handlers::Telemetry {
                timeline: tpiin_obs::Timeline::new(config.timeline.clone()),
                slo: tpiin_obs::SloEngine::new(config.slos.clone().unwrap_or_else(default_slos)),
                tick: config.telemetry_tick.max(Duration::from_millis(1)),
            })
        });
        let state = Arc::new(ServerState {
            store: SnapshotStore::new(snapshot),
            miners,
            writer: Mutex::new(engine),
            epoch: AtomicU64::new(1),
            snapshot_path: config.snapshot_path.clone(),
            shutting_down: AtomicBool::new(false),
            addr,
            tracing: config.tracing,
            trace_ring: config.trace_ring.max(1),
            traces: Mutex::new(std::collections::VecDeque::new()),
            started: Instant::now(),
            last_load_micros: AtomicU64::new(0),
            pool: Arc::new(PoolMetrics::default()),
            telemetry,
            slowlog: Mutex::new(std::collections::VecDeque::new()),
            slowlog_threshold: config.slowlog_threshold,
            slowlog_capacity: config.slowlog_capacity.max(1),
            cancel: handlers::Cancel::new(),
        });

        let accept = {
            let state = Arc::clone(&state);
            let config = config.clone();
            std::thread::Builder::new()
                .name("tpiin-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &state, &config))
                .expect("spawning accept thread")
        };
        // The flight recorder's OS-view sampler: refresh RSS/page-fault
        // and allocator gauges a few times a second so `/metrics` and
        // `/status` report a current process view, not a stale one.
        // Parks on the cancellation latch (not `thread::sleep`), so
        // `POST /shutdown` wakes and joins it without waiting out the
        // sampling interval.
        let sampler = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("tpiin-serve-sampler".to_string())
                .spawn(move || loop {
                    tpiin_obs::proc::record_gauges(tpiin_obs::global());
                    if state.cancel.wait_for(Duration::from_millis(250)) {
                        break;
                    }
                })
                .expect("spawning sampler thread")
        };
        // The telemetry recorder: once per tick, snapshot every
        // registered metric into the timeline and run the SLO machines.
        // Ticks are derived from uptime, so a stalled recorder skips
        // ticks instead of drifting the timeline's clock.
        let recorder = state.telemetry.as_ref().map(|telemetry| {
            let telemetry = Arc::clone(telemetry);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("tpiin-serve-telemetry".to_string())
                .spawn(move || {
                    let tick_len = telemetry.tick;
                    loop {
                        if state.cancel.wait_for(tick_len) {
                            break;
                        }
                        let tick = (state.started.elapsed().as_nanos() / tick_len.as_nanos()).max(1)
                            as u64;
                        telemetry.timeline.sample(tick, tpiin_obs::global());
                        telemetry.slo.evaluate(tick, &telemetry.timeline);
                    }
                })
                .expect("spawning telemetry recorder thread")
        });
        let watcher = if config.watch && config.snapshot_path.is_some() {
            let state = Arc::clone(&state);
            Some(
                std::thread::Builder::new()
                    .name("tpiin-serve-watch".to_string())
                    .spawn(move || watch_loop(&state))
                    .expect("spawning watcher thread"),
            )
        } else {
            None
        };

        tpiin_obs::info!(
            "serving on http://{addr} ({} workers, queue {})",
            config.workers.max(1),
            config.queue_capacity.max(1)
        );
        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
            watcher: Some(watcher).flatten(),
            sampler: Some(sampler),
            recorder,
            profile_out: config.profile_out,
        })
    }

    /// The bound address (with the actual port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown was requested (e.g. via `POST /shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.state.is_shutting_down()
    }

    /// Blocks until a `POST /shutdown` (or Drop from another path) stops
    /// the daemon — the CLI foreground mode.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shutdown_impl();
    }

    /// Stops accepting, drains in-flight requests, joins all threads and
    /// flushes the final run profile.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        // Latches the flag, wakes the sampler/recorder waits, and
        // connects once to unblock `listener.incoming()` so the accept
        // loop observes the latch even with no traffic.
        self.state.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        if let Some(recorder) = self.recorder.take() {
            let _ = recorder.join();
        }
        if let Some(path) = self.profile_out.take() {
            // One final sample so the flushed profile carries the
            // process's closing resource state.
            tpiin_obs::proc::record_gauges(tpiin_obs::global());
            let profile = tpiin_obs::RunProfile::capture();
            let _ = std::fs::write(&path, profile.to_json().to_pretty());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, config: &ServeConfig) {
    let pool = BoundedPool::with_metrics(
        config.workers,
        config.queue_capacity,
        Arc::clone(&state.pool),
    );
    for stream in listener.incoming() {
        if state.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(config.request_timeout));
        let _ = stream.set_write_timeout(Some(config.request_timeout));
        // A second handle to the socket: if the pool refuses the job the
        // connection must still get its 503.
        let shed_handle = stream.try_clone();
        let job_state = Arc::clone(state);
        let max_body = config.max_body_bytes;
        let accepted = pool.try_execute(move || handle_connection(&job_state, stream, max_body));
        if accepted.is_err() {
            tpiin_obs::global().counter("serve.shed").inc();
            if let Ok(mut stream) = shed_handle {
                let _ = Response::error(503, "server saturated, retry later")
                    .with_header("Retry-After", retry_after_secs(&state.pool).to_string())
                    .write_to(&mut stream);
            }
        }
    }
    // Stop accepting first, then drain: every accepted connection gets
    // its response before the workers exit.
    pool.shutdown();
}

/// How long a shed client should back off, derived from how deep the
/// queue is relative to the worker pool: a full queue on a 4-worker
/// pool suggests waiting several service rounds, an empty one means
/// "a beat".  Clamped to [1, 30] so the header is always honest but
/// never tells a client to go away for minutes.
fn retry_after_secs(pool: &PoolMetrics) -> u64 {
    let queued = pool.queued.load(Ordering::Relaxed) as u64;
    let workers = pool.workers.load(Ordering::Relaxed).max(1) as u64;
    (1 + queued / workers).clamp(1, 30)
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream, max_body_bytes: usize) {
    let started = Instant::now();
    // Thread-local allocator window: the delta at the end attributes
    // the request's allocations to its slowlog exemplar, if it becomes
    // one.
    let alloc_start = tpiin_obs::alloc::checkpoint();
    // Per-request trace: installed for this thread only, so concurrent
    // requests each collect their own spans; the id goes back to the
    // client in `x-tpiin-trace` and the context into the replay ring.
    let trace = state
        .tracing
        .then(|| Arc::new(tpiin_obs::TraceContext::new()));
    let trace_guard = trace
        .as_ref()
        .map(|t| tpiin_obs::install_thread_trace(Arc::clone(t)));
    let parsed = {
        let mut reader = BufReader::new(&stream);
        parse_request(&mut reader, max_body_bytes)
    };
    let (endpoint, mut response) = match parsed {
        Ok(request) => handlers::route(state, &request),
        Err(err) => ("malformed", Response::error(err.status(), err.reason())),
    };
    let trace_id = trace.as_ref().map(|t| t.id().to_string());
    if let Some(trace) = &trace {
        trace.record_span(&format!("serve/{endpoint}"), started, started.elapsed());
        response = response.with_header("x-tpiin-trace", trace.id().to_string());
    }
    let _ = response.write_to(&mut stream);
    drop(trace_guard);
    if let Some(trace) = trace {
        state.remember_trace(trace);
    }

    let elapsed = started.elapsed();
    let alloc_used = tpiin_obs::alloc::consume(alloc_start);
    if elapsed >= state.slowlog_threshold {
        // A latency outlier: capture the exemplar with its trace id so
        // `/slowlog` links straight to `/trace/{id}`.
        state.remember_slow(handlers::SlowEntry {
            at_secs: state.started.elapsed().as_secs_f64(),
            endpoint,
            status: response.status,
            epoch: state.epoch.load(Ordering::Relaxed),
            latency_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
            trace: trace_id,
            alloc_bytes: alloc_used.alloc_bytes,
            allocs: alloc_used.allocs,
        });
    }

    let registry = tpiin_obs::global();
    registry
        .counter(&format!("serve.requests.{endpoint}"))
        .inc();
    registry
        .counter(&format!("serve.responses.{}xx", response.status / 100))
        .inc();
    registry
        .histogram(&format!("serve.latency.{endpoint}"))
        .record(elapsed);
}

/// Polls the snapshot file's mtime and hot-reloads on change.
fn watch_loop(state: &Arc<ServerState>) {
    let Some(path) = state.snapshot_path.clone() else {
        return;
    };
    let mtime = |p: &std::path::Path| -> Option<SystemTime> {
        std::fs::metadata(p).and_then(|m| m.modified()).ok()
    };
    let mut last = mtime(&path);
    while !state.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(200));
        let now = mtime(&path);
        if now.is_some() && now != last {
            last = now;
            match handlers::reload(state) {
                Ok(epoch) => tpiin_obs::info!("watch: reloaded snapshot, epoch {epoch}"),
                Err((_, reason)) => tpiin_obs::warn!("watch: reload failed: {reason}"),
            }
        }
    }
}
