//! Request routing and endpoint handlers.
//!
//! Read endpoints (`/healthz`, `/metrics`, `/groups`,
//! `/groups_behind_arc`, `/company/{id}`) clone the current snapshot
//! `Arc` and run lock-free on that epoch.  Write endpoints (`/ingest`,
//! `/reload`) serialize on the single writer lock, build the next
//! [`ServeSnapshot`] off to the side and swap it in atomically — the
//! readers that started on the old epoch finish on it.

use crate::http::{Request, Response};
use crate::pool::PoolMetrics;
use crate::responses;
use crate::store::{ServeSnapshot, SnapshotStore};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpiin_core::{groups_behind_arc, MinerRegistry};
use tpiin_delta::{DeltaEngine, DeltaError};
use tpiin_io::json::Json;
use tpiin_model::{CompanyId, MutationBatch, TradingRecord};
use tpiin_obs::{SloEngine, Span, Timeline, TraceContext, TraceId};

/// A joinable cancellation latch for the daemon's background threads
/// (the `/proc` sampler and the telemetry recorder).  Threads park in
/// [`Cancel::wait_for`] instead of `thread::sleep`, so `POST /shutdown`
/// wakes them immediately and the join in `shutdown_impl` never waits
/// out a sleep interval.
pub(crate) struct Cancel {
    cancelled: std::sync::Mutex<bool>,
    wake: std::sync::Condvar,
}

impl Cancel {
    pub(crate) fn new() -> Cancel {
        Cancel {
            cancelled: std::sync::Mutex::new(false),
            wake: std::sync::Condvar::new(),
        }
    }

    /// Latches cancellation and wakes every parked waiter.
    pub(crate) fn cancel(&self) {
        *self.cancelled.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.wake.notify_all();
    }

    /// Parks for up to `timeout`; returns `true` once cancelled
    /// (immediately if cancellation already latched).
    pub(crate) fn wait_for(&self, timeout: Duration) -> bool {
        let cancelled = self.cancelled.lock().unwrap_or_else(|e| e.into_inner());
        if *cancelled {
            return true;
        }
        let (cancelled, _) = self
            .wake
            .wait_timeout(cancelled, timeout)
            .unwrap_or_else(|e| e.into_inner());
        *cancelled
    }
}

/// The continuous-telemetry half of the daemon: the timeline store and
/// the SLO health engine, fed once per tick by the recorder thread.
pub(crate) struct Telemetry {
    pub(crate) timeline: Timeline,
    pub(crate) slo: SloEngine,
    /// Wall-clock length of one recorder tick.
    pub(crate) tick: Duration,
}

/// One slow-request exemplar: everything needed to chase a latency
/// outlier to its trace without grepping logs.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Daemon uptime (seconds) when the request finished.
    pub at_secs: f64,
    /// Endpoint slug (as used in `serve.latency.*`).
    pub endpoint: &'static str,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Epoch being served when the request finished.
    pub epoch: u64,
    /// Wall-clock latency in microseconds.
    pub latency_us: u64,
    /// The request's trace id, when tracing was on — resolvable at
    /// `/trace/{id}` while the trace ring still holds it.
    pub trace: Option<String>,
    /// Bytes allocated on the handling thread during the request.
    pub alloc_bytes: u64,
    /// Allocation calls on the handling thread during the request.
    pub allocs: u64,
}

/// Everything the handlers share: the hot-swap store, the single-writer
/// ingest state, the shutdown latch and the recent-trace ring.
pub struct ServerState {
    pub(crate) store: SnapshotStore,
    pub(crate) miners: MinerRegistry,
    pub(crate) writer: Mutex<DeltaEngine>,
    pub(crate) epoch: AtomicU64,
    pub(crate) snapshot_path: Option<PathBuf>,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) tracing: bool,
    pub(crate) trace_ring: usize,
    pub(crate) traces: Mutex<VecDeque<Arc<TraceContext>>>,
    /// When the daemon started, for `/status` uptime.
    pub(crate) started: Instant,
    /// Microseconds the last `/reload` (endpoint or watcher) spent
    /// reading + parsing the snapshot file; `/status` reports it as
    /// `snapshot_load_ms` (0 until the first reload).
    pub(crate) last_load_micros: AtomicU64,
    /// Worker-pool occupancy, shared with the accept loop's pool.
    pub(crate) pool: Arc<PoolMetrics>,
    /// Timeline + SLO engine; `None` when telemetry is configured off
    /// (overhead benchmarking), in which case `/timeline`, `/alerts`
    /// and `/slowlog`'s alert summary answer 404 / `off`.
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// The slow-request exemplar ring, newest at the back.
    pub(crate) slowlog: Mutex<VecDeque<SlowEntry>>,
    /// Requests at or above this latency enter the slowlog.
    pub(crate) slowlog_threshold: Duration,
    /// Entries the slowlog ring retains.
    pub(crate) slowlog_capacity: usize,
    /// Wakes the sampler + recorder threads for a prompt join.
    pub(crate) cancel: Cancel,
}

impl ServerState {
    /// Whether shutdown has been requested (by handle or `/shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// The next epoch number (monotone across ingest and reload).
    fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Pushes a finished request trace into the replay ring, evicting
    /// the oldest once `trace_ring` traces are held.
    pub(crate) fn remember_trace(&self, trace: Arc<TraceContext>) {
        let mut ring = self.traces.lock();
        while ring.len() >= self.trace_ring {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Looks a recent request trace up by id (`GET /trace/{id}`).
    pub(crate) fn find_trace(&self, id: TraceId) -> Option<Arc<TraceContext>> {
        self.traces.lock().iter().find(|t| t.id() == id).cloned()
    }

    /// Latches the shutdown flag, wakes the background threads and
    /// pokes the accept loop so everything exits without more traffic.
    pub(crate) fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        self.cancel.cancel();
        let _ = std::net::TcpStream::connect(self.addr);
    }

    /// Pushes a slow-request exemplar, evicting the oldest at capacity.
    pub(crate) fn remember_slow(&self, entry: SlowEntry) {
        let mut ring = self.slowlog.lock();
        while ring.len() >= self.slowlog_capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(entry);
    }
}

/// Dispatches one parsed request; returns the endpoint slug used for
/// metrics plus the response.
pub fn route(state: &ServerState, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", health(state)),
        ("GET", "/metrics") => ("metrics", metrics()),
        ("GET", "/status") => ("status", status(state)),
        ("GET", "/timeline") => ("timeline", timeline(state, req)),
        ("GET", "/timeline/export") => ("timeline_export", timeline_export(state)),
        ("GET", "/alerts") => ("alerts", alerts(state)),
        ("GET", "/slowlog") => ("slowlog", slowlog(state)),
        ("GET", "/groups") => ("groups", groups(state, req)),
        ("GET", "/groups_behind_arc") => ("groups_behind_arc", arc_query(state, req)),
        ("GET", path) if path.starts_with("/groups/") && path.ends_with("/provenance") => {
            ("provenance", provenance(state, req))
        }
        ("GET", path) if path.starts_with("/trace/") => ("trace", trace_lookup(state, req)),
        ("GET", path) if path.starts_with("/company/") => ("company", company(state, req)),
        ("POST", "/ingest") => ("ingest", ingest(state, req)),
        ("POST", "/reload") => ("reload", reload_endpoint(state)),
        ("POST", "/shutdown") => ("shutdown", shutdown(state)),
        ("GET" | "POST", _) => ("not_found", Response::error(404, "no such endpoint")),
        _ => ("bad_method", Response::error(405, "method not allowed")),
    }
}

fn health(state: &ServerState) -> Response {
    let snap = state.store.current();
    Response::json(200, &responses::health_json(&snap))
}

fn metrics() -> Response {
    Response::text(200, tpiin_obs::text_exposition(tpiin_obs::global()))
}

/// `GET /timeline[?metric=NAME&since=TICK]` — without `metric`, the
/// queryable series index; with it, that series' points from `since`
/// (tick 0 by default) to now, coarse tier seamlessly backing the fine
/// tier.  Unknown query parameters are a 400, like `/groups`.
fn timeline(state: &ServerState, req: &Request) -> Response {
    let Some(telemetry) = &state.telemetry else {
        return Response::error(404, "telemetry recorder is disabled");
    };
    let mut metric = None;
    let mut since = 0u64;
    for (key, value) in &req.query {
        match key.as_str() {
            "metric" => metric = Some(value.clone()),
            "since" => match value.parse::<u64>() {
                Ok(tick) => since = tick,
                Err(_) => return Response::error(400, format!("bad since `{value}`")),
            },
            other => {
                return Response::error(400, format!("unknown query parameter `{other}`"));
            }
        }
    }
    let timeline = &telemetry.timeline;
    match metric {
        None => Response::json(
            200,
            &responses::timeline_index_json(
                &timeline.metric_names(),
                timeline.last_tick(),
                timeline.config(),
            ),
        ),
        Some(metric) => {
            if !timeline.has_metric(&metric) {
                return Response::error(404, format!("no timeline series `{metric}`"));
            }
            let points = timeline.query(&metric, since);
            Response::json(200, &responses::timeline_json(&metric, since, &points))
        }
    }
}

/// `GET /timeline/export` — the whole store as JSONL, one compact JSON
/// object per line, for offline analysis (CI archives this artifact).
fn timeline_export(state: &ServerState) -> Response {
    let Some(telemetry) = &state.telemetry else {
        return Response::error(404, "telemetry recorder is disabled");
    };
    Response::text(200, telemetry.timeline.to_jsonl())
}

/// `GET /alerts` — every SLO state machine's standing as of the last
/// recorder tick.
fn alerts(state: &ServerState) -> Response {
    let Some(telemetry) = &state.telemetry else {
        return Response::error(404, "telemetry recorder is disabled");
    };
    Response::json(
        200,
        &responses::alerts_json(
            &telemetry.slo.statuses(),
            telemetry.slo.worst(),
            telemetry.timeline.last_tick(),
        ),
    )
}

/// `GET /slowlog` — the slow-request exemplar ring, oldest first, each
/// entry linking to its `/trace/{id}` replay.
fn slowlog(state: &ServerState) -> Response {
    let entries: Vec<SlowEntry> = state.slowlog.lock().iter().cloned().collect();
    Response::json(
        200,
        &responses::slowlog_json(
            state.slowlog_threshold.as_secs_f64() * 1e3,
            state.slowlog_capacity,
            &entries,
        ),
    )
}

/// `GET /status` — one JSON view of the daemon's runtime health: the
/// served epoch and its approximate heap size, uptime, worker-pool
/// occupancy, shed/reload counters and the process resource state
/// (allocator ledger + RSS/page faults when available).  Distinct from
/// the Prometheus text of `/metrics`: this is the operator's one-call
/// snapshot, not a scrape target.
fn status(state: &ServerState) -> Response {
    let snap = state.store.current();
    let registry = tpiin_obs::global();
    // Summarize the SLO machines so one `/status` call answers "is the
    // daemon healthy" without also fetching `/alerts`.
    let (health, alerts_ok, alerts_warn, alerts_page) = match &state.telemetry {
        Some(telemetry) => {
            let statuses = telemetry.slo.statuses();
            let count =
                |state: tpiin_obs::AlertState| statuses.iter().filter(|s| s.state == state).count();
            (
                telemetry.slo.worst().as_str().to_string(),
                count(tpiin_obs::AlertState::Ok),
                count(tpiin_obs::AlertState::Warn),
                count(tpiin_obs::AlertState::Page),
            )
        }
        None => ("off".to_string(), 0, 0, 0),
    };
    let report = responses::StatusReport {
        health,
        alerts_ok,
        alerts_warn,
        alerts_page,
        uptime_secs: state.started.elapsed().as_secs_f64(),
        workers: state.pool.workers.load(Ordering::Relaxed),
        busy_workers: state.pool.busy.load(Ordering::Relaxed),
        queued_requests: state.pool.queued.load(Ordering::Relaxed),
        queue_capacity: state.pool.capacity.load(Ordering::Relaxed),
        shed_requests: registry.counter("serve.shed").get(),
        reloads: registry.counter("serve.reloads").get(),
        snapshot_load_ms: state.last_load_micros.load(Ordering::Relaxed) as f64 / 1_000.0,
        // The delta engine publishes its counters as gauges after every
        // applied batch, so `/status` reads them lock-free instead of
        // contending on the writer mutex mid-ingest.
        batches_applied: registry.gauge("delta.batches").get() as u64,
        arcs_patched: registry.gauge("delta.arcs_patched").get() as u64,
        company_appends: registry.gauge("delta.company_appends").get() as u64,
        sccs_rerun: registry.gauge("delta.sccs_rerun").get() as u64,
        full_rebuilds: registry.gauge("delta.full_rebuilds").get() as u64,
        shards_remined: registry.gauge("delta.shards_remined").get() as u64,
        shard_cache_hits: registry.gauge("delta.cache_hits").get() as u64,
        alloc: tpiin_obs::alloc::stats(),
        proc: tpiin_obs::proc::sample(),
    };
    Response::json(200, &responses::status_json(&snap, &report))
}

/// `GET /groups[?miner=NAME&limit=N&offset=N]` — one miner's detection
/// (the primary by default), paginated.  Unknown query parameters are a
/// 400, not silently ignored: a typo like `?mnier=circular` must not
/// quietly serve the full primary listing.
fn groups(state: &ServerState, req: &Request) -> Response {
    let mut limit = None;
    let mut offset = 0;
    let mut miner = None;
    for (key, value) in &req.query {
        match key.as_str() {
            "limit" => match value.parse::<usize>() {
                Ok(n) => limit = Some(n),
                Err(_) => return Response::error(400, format!("bad limit `{value}`")),
            },
            "offset" => match value.parse::<usize>() {
                Ok(n) => offset = n,
                Err(_) => return Response::error(400, format!("bad offset `{value}`")),
            },
            "miner" => miner = Some(value.clone()),
            other => {
                return Response::error(400, format!("unknown query parameter `{other}`"));
            }
        }
    }
    let snap = state.store.current();
    let miner = miner.unwrap_or_else(|| snap.primary_miner().to_string());
    let Some(detection) = snap.detection_for(&miner) else {
        return Response::error(
            404,
            format!(
                "no miner `{miner}` (serving: {})",
                snap.miner_names().join(", ")
            ),
        );
    };
    Response::json(
        200,
        &responses::groups_json(&snap, &miner, detection, limit, offset),
    )
}

fn arc_query(state: &ServerState, req: &Request) -> Response {
    let (Some(src), Some(dst)) = (req.query_param("src"), req.query_param("dst")) else {
        return Response::error(400, "src and dst query parameters are required");
    };
    let snap = state.store.current();
    let Some(src_node) = snap.resolve_node(src) else {
        return Response::error(404, format!("unknown node `{src}`"));
    };
    let Some(dst_node) = snap.resolve_node(dst) else {
        return Response::error(404, format!("unknown node `{dst}`"));
    };
    let groups = groups_behind_arc(&snap.tpiin, src_node, dst_node);
    Response::json(
        200,
        &responses::arc_query_json(&snap.tpiin, snap.epoch, src_node, dst_node, &groups),
    )
}

/// `GET /groups/{id}/provenance[?miner=NAME]` — the full evidence chain
/// behind one mined group, by its index in that miner's `/groups` order
/// (the primary miner by default).
fn provenance(state: &ServerState, req: &Request) -> Response {
    let inner = &req.path["/groups/".len()..req.path.len() - "/provenance".len()];
    let inner = inner.trim_end_matches('/');
    let Ok(index) = inner.parse::<usize>() else {
        return Response::error(400, format!("bad group id `{inner}`"));
    };
    let mut miner = None;
    for (key, value) in &req.query {
        match key.as_str() {
            "miner" => miner = Some(value.clone()),
            other => {
                return Response::error(400, format!("unknown query parameter `{other}`"));
            }
        }
    }
    let snap = state.store.current();
    let miner = miner.unwrap_or_else(|| snap.primary_miner().to_string());
    let Some(detection) = snap.detection_for(&miner) else {
        return Response::error(
            404,
            format!(
                "no miner `{miner}` (serving: {})",
                snap.miner_names().join(", ")
            ),
        );
    };
    if index >= detection.groups.len() {
        return Response::error(
            404,
            format!(
                "no group {index} for miner `{miner}` (epoch {} has {})",
                snap.epoch,
                detection.groups.len()
            ),
        );
    }
    let group = &detection.groups[index];
    let assembled;
    let prov = match detection.provenances.get(index) {
        Some(prov) => prov,
        // Counting-only detections carry no pre-assembled provenance;
        // ask the owning miner's provenance hook to build it on demand.
        None => match state
            .miners
            .get(&miner)
            .and_then(|m| m.provenance(&snap.tpiin, group))
        {
            Some(prov) => {
                assembled = prov;
                &assembled
            }
            None => {
                return Response::error(
                    422,
                    format!(
                        "miner `{miner}` has no provenance hook; its groups carry no \
                         evidence chain (use /groups?miner={miner} for the group itself)"
                    ),
                );
            }
        },
    };
    Response::json(
        200,
        &responses::provenance_json(&snap, &miner, group, index, prov),
    )
}

/// `GET /trace/{id}` — replays a recent request's trace as Chrome
/// `trace_event` JSON (Perfetto-loadable).
fn trace_lookup(state: &ServerState, req: &Request) -> Response {
    let text = req.path.trim_start_matches("/trace/");
    let Some(id) = TraceId::parse(text) else {
        return Response::error(400, format!("bad trace id `{text}` (want 32 hex digits)"));
    };
    let Some(trace) = state.find_trace(id) else {
        return Response::error(
            404,
            format!(
                "trace {id} not held (ring keeps the last {})",
                state.trace_ring
            ),
        );
    };
    Response::json_text(200, trace.to_chrome_json().to_pretty())
}

fn company(state: &ServerState, req: &Request) -> Response {
    let id = req.path.trim_start_matches("/company/");
    if id.is_empty() {
        return Response::error(400, "missing company id");
    }
    let snap = state.store.current();
    let Some(node) = snap.resolve_node(id) else {
        return Response::error(404, format!("unknown node `{id}`"));
    };
    Response::json(200, &responses::company_json(&snap, node))
}

/// Decodes `{"records": [{"seller": n, "buyer": n, "volume": x}, ...]}`.
fn parse_records(json: &Json) -> Result<Vec<TradingRecord>, String> {
    let Some(Json::Array(items)) = json.get("records") else {
        return Err("body must be {\"records\": [...]}".to_string());
    };
    let mut records = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record {i}: missing numeric `{key}`"))
        };
        let seller = field("seller")?;
        let buyer = field("buyer")?;
        let volume = item.get("volume").and_then(Json::as_f64).unwrap_or(1.0);
        if seller < 0.0 || seller.fract() != 0.0 || buyer < 0.0 || buyer.fract() != 0.0 {
            return Err(format!(
                "record {i}: seller/buyer must be non-negative integers"
            ));
        }
        records.push(TradingRecord {
            seller: CompanyId(seller as u32),
            buyer: CompanyId(buyer as u32),
            volume,
        });
    }
    Ok(records)
}

/// Decodes an ingest body into a mutation batch.  Two shapes are
/// accepted: the original trading-only `{"records": [...]}` and the
/// full registry-mutation `{"mutations": [...]}` feed format of
/// [`tpiin_io::mutation_feed`].
fn parse_batch(json: &Json) -> Result<MutationBatch, String> {
    if json.get("mutations").is_some() {
        return tpiin_io::mutation_feed::batch_from_json(json, "ingest", 1)
            .map_err(|err| err.to_string());
    }
    Ok(MutationBatch::trading(parse_records(json)?))
}

fn ingest(state: &ServerState, req: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(err) => return Response::error(400, format!("bad JSON: {err}")),
    };
    let batch = match parse_batch(&json) {
        Ok(batch) => batch,
        Err(err) => return Response::error(400, err),
    };

    // Single-writer section: apply the delta, then swap the next epoch
    // in while still holding the writer lock so concurrent `/reload`
    // serializes.  Readers keep serving the previous epoch throughout.
    let mut writer = state.writer.lock();
    let span = Span::at("serve.ingest.delta");
    let outcome = match writer.apply(&batch) {
        Ok(outcome) => outcome,
        // A rejected batch leaves the engine (and the served epoch)
        // untouched; atomicity is the engine's contract.
        Err(err @ DeltaError::RegistryRequired) => return Response::error(422, err.to_string()),
        Err(err) => return Response::error(400, err.to_string()),
    };
    let stats = writer.stats();
    let tpiin = writer.tpiin().clone();
    let primary = writer.detection().clone();
    let prev = state.store.current();
    let detections = prev.detections_with_primary(primary);
    let epoch = state.next_epoch();
    let body = responses::ingest_json(&tpiin, epoch, &outcome, &stats);
    state
        .store
        .swap(ServeSnapshot::with_detections(epoch, tpiin, detections));
    drop(span);
    drop(writer);
    Response::json(200, &body)
}

/// Reloads the snapshot file and swaps the result in; used by both the
/// `/reload` endpoint and the file watcher.
pub fn reload(state: &ServerState) -> Result<u64, (u16, String)> {
    let Some(path) = state.snapshot_path.as_ref() else {
        return Err((400, "no snapshot path configured".to_string()));
    };
    let span = Span::at("serve.reload");
    let load_started = Instant::now();
    // Bytes, not a string: the file may be the binary zero-copy format,
    // which `read_snapshot_bytes` auto-detects by its magic prefix.
    let bytes =
        std::fs::read(path).map_err(|err| (500, format!("reading {}: {err}", path.display())))?;
    let tpiin = tpiin_io::snapshot::read_snapshot_bytes(&bytes)
        .map_err(|err| (400, format!("parsing {}: {err}", path.display())))?;
    let load_micros = load_started.elapsed().as_micros() as u64;

    let mut writer = state.writer.lock();
    let epoch = state.next_epoch();
    let snapshot = ServeSnapshot::build_with(epoch, tpiin.clone(), &state.miners);
    // A snapshot file carries no source registry, so the reloaded
    // engine serves trading-append deltas only (registry mutations get
    // 422 until the daemon is restarted with a registry).
    *writer = DeltaEngine::from_tpiin(tpiin);
    state.store.swap(snapshot);
    drop(writer);
    state.last_load_micros.store(load_micros, Ordering::Relaxed);
    drop(span);
    // The sliding 60s latency windows measured the old epoch; clear
    // them so the twin `_window` series restarts cleanly instead of
    // blending two snapshots' latencies mid-window.
    tpiin_obs::global().reset_histogram_windows("serve.latency.");
    tpiin_obs::global().counter("serve.reloads").inc();
    Ok(epoch)
}

fn reload_endpoint(state: &ServerState) -> Response {
    match reload(state) {
        Ok(epoch) => Response::json(
            200,
            &Json::Object(vec![
                ("reloaded".to_string(), Json::Bool(true)),
                ("epoch".to_string(), Json::int(epoch as usize)),
            ]),
        ),
        Err((status, reason)) => Response::error(status, reason),
    }
}

fn shutdown(state: &ServerState) -> Response {
    // Latch, wake the sampler/recorder out of their waits, and poke the
    // accept loop so it notices without another client connecting.
    state.request_shutdown();
    Response::json(
        200,
        &Json::Object(vec![("shutting_down".to_string(), Json::Bool(true))]),
    )
}
