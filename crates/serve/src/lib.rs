//! # tpiin-serve — the always-on query/ingest daemon
//!
//! The paper describes an offline pipeline feeding an online audit
//! workflow: inspectors at the Servyou platform pull up a suspicious
//! trading relationship and need the interest chains *behind* it
//! (Section 6), while the national feed keeps delivering trading
//! records at a daily peak of ten million.  This crate turns the batch
//! pipeline into that long-lived service:
//!
//! * **Hand-rolled HTTP/1.1** ([`http`]) over `std::net` — no external
//!   dependencies, one request per connection, hard limits everywhere,
//!   and a parser that returns errors instead of panicking on
//!   arbitrary bytes.
//! * **A bounded worker pool** ([`pool`]) with explicit load shedding:
//!   when the queue is full the daemon answers 503 immediately rather
//!   than buffering without bound.
//! * **Snapshot hot swap** ([`store`]): every request clones an
//!   `Arc<ServeSnapshot>` (network + per-miner detections + label
//!   index) and runs lock-free on that epoch; `/reload`, a snapshot-file watcher
//!   and `POST /ingest` build the next epoch off to the side and swap
//!   it in atomically.  In-flight requests finish on the epoch they
//!   started on.
//! * **Delta ingest**: `POST /ingest` feeds mutation batches (trading
//!   records or full registry mutations) through a
//!   [`tpiin_delta::DeltaEngine`] and answers with only the *new*
//!   suspicious groups — trading arcs are patched surgically, registry
//!   deltas re-run only the touched SCCs and re-mine only the
//!   invalidated subTPIINs, never a blanket re-fuse unless the delta's
//!   blast radius forces one.
//! * **Per-request tracing**: every request gets its own
//!   [`tpiin_obs::TraceContext`]; the trace id comes back in the
//!   `x-tpiin-trace` response header and `GET /trace/{id}` replays the
//!   request's spans as Chrome `trace_event` JSON (a ring keeps the
//!   last [`ServeConfig::trace_ring`] traces).
//! * **Group provenance**: `GET /groups/{id}/provenance` serves the
//!   full evidence chain behind one mined group — matched rule, arc
//!   lineage with winning source records, contraction lineage, score
//!   breakdown.
//! * **Miner strategies**: every full snapshot build runs the
//!   [`tpiin_core::GroupMiner`] set from [`ServeConfig::miners`]
//!   (default: the Rule 1/Rule 2 detector plus the circular-trading
//!   miner); `?miner=NAME` on `/groups` and `/groups/{id}/provenance`
//!   selects which strategy's detection a request reads.
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + current epoch and headline counts |
//! | `GET /metrics` | Prometheus text exposition of the tpiin-obs registry |
//! | `GET /status` | one-call operator snapshot: epoch, pool occupancy, delta counters, alert summary |
//! | `GET /timeline` | continuous telemetry: series index, or `?metric=..&since=..` points |
//! | `GET /timeline/export` | the whole timeline store as JSONL for offline analysis |
//! | `GET /alerts` | every SLO state machine's standing (ok/warn/page, burn rates) |
//! | `GET /slowlog` | slow-request exemplars, each linking to its `/trace/{id}` |
//! | `GET /groups` | one miner's detection (`?miner=NAME&limit=N&offset=N`; unknown params are a 400) |
//! | `GET /groups/{id}/provenance` | the evidence chain behind group `id` (`?miner=NAME`) |
//! | `GET /groups_behind_arc?src=..&dst=..` | Section 6: groups hiding behind one trading arc |
//! | `GET /trace/{id}` | Chrome trace JSON of a recent request (`x-tpiin-trace`) |
//! | `GET /company/{label}` | one node's profile and its groups |
//! | `POST /ingest` | `{"records": [{"seller": n, "buyer": n, "volume": x}]}` |
//! | `POST /reload` | re-read the snapshot file and hot-swap |
//! | `POST /shutdown` | graceful stop: drain, then exit |
//!
//! ```no_run
//! let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
//! let handle = tpiin_serve::ServerHandle::bind(tpiin, tpiin_serve::ServeConfig::default())
//!     .expect("bind");
//! println!("serving on {}", handle.addr());
//! handle.shutdown(); // stop accepting, drain, join
//! ```

pub mod handlers;
pub mod http;
pub mod pool;
pub mod responses;
pub mod server;
pub mod store;

pub use handlers::SlowEntry;
pub use http::{Request, Response};
pub use pool::{BoundedPool, Saturated};
pub use server::{default_slos, load_snapshot_file, ServeConfig, ServeError, ServerHandle};
pub use store::{ServeSnapshot, SnapshotStore};
