//! A bounded worker pool with explicit load shedding.
//!
//! The accept loop hands each connection to the pool.  The queue has a
//! hard capacity: when every worker is busy and the queue is full,
//! [`BoundedPool::try_execute`] refuses the job and the caller answers
//! 503 instead of queuing unboundedly — the paper's system faces a
//! ten-million-record daily peak, and a daemon that buffers without
//! bound falls over exactly when it is needed most.  Shutdown is
//! graceful: the queue drains and every in-flight job completes before
//! the workers exit.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Live occupancy counters the pool keeps up to date, shared with the
/// `/status` endpoint: how many workers exist, how many are busy right
/// now, how many jobs wait in the queue, and the queue's capacity.
/// All relaxed — these are human-facing telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    /// Worker threads in the pool.
    pub workers: AtomicUsize,
    /// Workers executing a job at this instant.
    pub busy: AtomicUsize,
    /// Jobs waiting in the queue at this instant.
    pub queued: AtomicUsize,
    /// Queue capacity (jobs beyond it are shed).
    pub capacity: AtomicUsize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool refused a job: every worker is busy and the queue is full
/// (or shutdown has begun).  The caller still owns the work and is
/// expected to shed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Saturated;

impl std::fmt::Display for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker pool saturated")
    }
}

impl std::error::Error for Saturated {}

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    capacity: usize,
    shutting_down: AtomicBool,
    metrics: Arc<PoolMetrics>,
}

/// Fixed worker threads over a bounded job queue.
pub struct BoundedPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl BoundedPool {
    /// Spawns `workers` threads sharing a queue of at most
    /// `queue_capacity` waiting jobs.
    pub fn new(workers: usize, queue_capacity: usize) -> BoundedPool {
        BoundedPool::with_metrics(workers, queue_capacity, Arc::new(PoolMetrics::default()))
    }

    /// As [`BoundedPool::new`], publishing occupancy into `metrics`
    /// (which the caller typically shares with a status endpoint).
    pub fn with_metrics(
        workers: usize,
        queue_capacity: usize,
        metrics: Arc<PoolMetrics>,
    ) -> BoundedPool {
        metrics.workers.store(workers.max(1), Ordering::Relaxed);
        metrics
            .capacity
            .store(queue_capacity.max(1), Ordering::Relaxed);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::with_capacity(queue_capacity)),
            not_empty: Condvar::new(),
            capacity: queue_capacity.max(1),
            shutting_down: AtomicBool::new(false),
            metrics,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tpiin-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning pool worker")
            })
            .collect();
        BoundedPool { inner, workers }
    }

    /// Queues `job`, or returns [`Saturated`] when the queue is full
    /// (the caller load-sheds) or the pool is shutting down.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Saturated> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(Saturated);
        }
        {
            let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
            if queue.len() >= self.inner.capacity {
                return Err(Saturated);
            }
            queue.push_back(Box::new(job));
            self.inner
                .metrics
                .queued
                .store(queue.len(), Ordering::Relaxed);
        }
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not yet running).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().expect("pool queue poisoned").len()
    }

    /// Stops accepting work, drains the queue, runs every queued job to
    /// completion and joins the workers.
    pub fn shutdown(mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.not_empty.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.metrics.queued.store(queue.len(), Ordering::Relaxed);
                    break job;
                }
                if inner.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.not_empty.wait(queue).expect("pool queue poisoned");
            }
        };
        inner.metrics.busy.fetch_add(1, Ordering::Relaxed);
        // A panicking handler must not take the worker down with it;
        // the connection just closes without a response.
        let _ = catch_unwind(AssertUnwindSafe(job));
        inner.metrics.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let pool = BoundedPool::new(2, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn sheds_load_when_saturated() {
        let pool = BoundedPool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        // ...fill the queue of one...
        pool.try_execute(|| {}).unwrap();
        // ...and the next job must be refused.
        assert!(pool.try_execute(|| {}).is_err());
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = BoundedPool::new(1, 4);
        pool.try_execute(|| panic!("handler bug")).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        // Give the panicking job a moment to run, then verify the
        // worker still serves.
        std::thread::sleep(Duration::from_millis(20));
        pool.try_execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
