//! End-to-end tests against a live daemon on an ephemeral port: offline
//! equivalence of the ancestor-cone query, concurrent clients racing a
//! hot reload, load-shedding under saturation, and resilience to
//! malformed bytes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tpiin_core::{detect, groups_behind_arc};
use tpiin_datagen::fig7_registry;
use tpiin_fusion::{fuse, Tpiin};
use tpiin_serve::{responses, ServeConfig, ServerHandle};

fn fig7() -> Tpiin {
    let (tpiin, _) = fuse(&fig7_registry()).expect("fig7 registry fuses");
    tpiin
}

/// One blocking request over a fresh connection; returns the status
/// line and the body (after the blank line).
fn request(addr: SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// Like [`get`] but keeps the raw header block: `(status, head, body)`.
fn get_with_headers(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or(("", ""));
    (status, head.to_string(), body.to_string())
}

/// The `x-tpiin-trace` header value, if the response carried one.
fn trace_id_of(head: &str) -> Option<String> {
    head.lines()
        .find_map(|line| line.strip_prefix("x-tpiin-trace: "))
        .map(str::to_string)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn arc_query_matches_offline_pipeline_bit_for_bit() {
    let tpiin = fig7();
    let detection = detect(&tpiin);
    let handle = ServerHandle::bind(tpiin.clone(), ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    // Every suspicious arc the offline pipeline found must come back
    // from the daemon with the exact bytes the response builder
    // produces over the same TPIIN at epoch 1.
    assert!(!detection.suspicious_trading_arcs.is_empty());
    for &(src, dst) in &detection.suspicious_trading_arcs {
        let groups = groups_behind_arc(&tpiin, src, dst);
        let expected = responses::arc_query_json(&tpiin, 1, src, dst, &groups).to_string();
        let path = format!(
            "/groups_behind_arc?src={}&dst={}",
            tpiin.label(src),
            tpiin.label(dst)
        );
        let (status, body) = get(addr, &path);
        assert_eq!(status, "HTTP/1.1 200 OK", "{path}");
        assert_eq!(body, expected, "{path} diverged from offline pipeline");
    }

    let (status, _) = get(addr, "/groups_behind_arc?src=C1&dst=nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    handle.shutdown();
}

#[test]
fn concurrent_clients_survive_hot_reload_without_lost_responses() {
    let tpiin = fig7();
    let path: PathBuf = std::env::temp_dir().join(format!(
        "tpiin-serve-reload-{}-{:?}.tpiin",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, tpiin_io::snapshot::write_snapshot(&tpiin)).expect("write snapshot");

    let config = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        snapshot_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(tpiin.clone(), config).expect("bind");
    let addr = handle.addr();
    let arc = *detect(&tpiin)
        .suspicious_trading_arcs
        .iter()
        .next()
        .expect("fig7 has suspicious arcs");
    let query = format!(
        "/groups_behind_arc?src={}&dst={}",
        tpiin.label(arc.0),
        tpiin.label(arc.1)
    );

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 25;
    let answered = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let query = &query;
                scope.spawn(move || {
                    let mut ok = 0;
                    for r in 0..REQUESTS {
                        let path = if (i + r) % 2 == 0 {
                            query.as_str()
                        } else {
                            "/groups"
                        };
                        let (status, body) = get(addr, path);
                        assert_eq!(status, "HTTP/1.1 200 OK", "client {i} request {r}");
                        assert!(body.contains("\"epoch\":"), "client {i} got truncated body");
                        ok += 1;
                    }
                    ok
                })
            })
            .collect();
        // Swap snapshots underneath the readers a few times.
        for _ in 0..3 {
            let (status, body) = post(addr, "/reload", "");
            assert_eq!(status, "HTTP/1.1 200 OK", "reload failed: {body}");
            std::thread::sleep(Duration::from_millis(5));
        }
        readers
            .into_iter()
            .map(|r| r.join().expect("client"))
            .sum::<usize>()
    });
    assert_eq!(answered, CLIENTS * REQUESTS, "lost responses during reload");

    // Reloads advanced the epoch; readers kept answering throughout.
    let (_, health) = get(addr, "/healthz");
    assert!(
        health.contains("\"epoch\":4"),
        "unexpected health: {health}"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn saturated_daemon_sheds_load_with_503() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        request_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();

    // Idle connections pin the single worker (blocked reading) and fill
    // the one queue slot; later arrivals must be shed with a 503 rather
    // than queued without bound or silently dropped.
    let idle: Vec<TcpStream> = (0..6)
        .map(|_| {
            let stream = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(30));
            stream
        })
        .collect();

    let mut shed = 0;
    for mut stream in idle {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut response = String::new();
        if stream.read_to_string(&mut response).is_ok() && response.starts_with("HTTP/1.1 503") {
            shed += 1;
            // Every shed response tells the client when to come back,
            // scaled to the backlog the daemon is looking at.
            let retry = response
                .lines()
                .find_map(|line| line.strip_prefix("Retry-After: "))
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or_else(|| panic!("503 without usable Retry-After: {response:?}"));
            assert!((1..=30).contains(&retry), "implausible Retry-After {retry}");
        }
    }
    assert!(shed >= 1, "no connection was shed under saturation");

    // The daemon recovers once the pile-up clears.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    handle.shutdown();
}

#[test]
fn every_request_is_traced_and_replayable() {
    let handle = ServerHandle::bind(fig7(), ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    // Every response carries its trace id.
    let (status, head, _) = get_with_headers(addr, "/groups");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let id = trace_id_of(&head).expect("x-tpiin-trace header present");
    assert_eq!(id.len(), 32, "trace id is 32 hex digits: {id}");

    // The ring replays that request's spans as Chrome trace JSON.
    let (status, body) = get(addr, &format!("/trace/{id}"));
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"traceEvents\""), "{body}");
    assert!(body.contains(&format!("\"traceId\": \"{id}\"")), "{body}");
    assert!(
        body.contains("serve/groups"),
        "request span missing: {body}"
    );

    // Even error responses are traced.
    let (status, head, _) = get_with_headers(addr, "/no-such-endpoint");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(trace_id_of(&head).is_some(), "404 carries a trace id too");

    // Bad and unknown ids answer 400 / 404.
    let (status, _) = get(addr, "/trace/not-hex");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let (status, _) = get(addr, &format!("/trace/{}", "0".repeat(32)));
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    handle.shutdown();
}

#[test]
fn tracing_off_omits_header_and_ring() {
    let config = ServeConfig {
        tracing: false,
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();
    let (status, head, _) = get_with_headers(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        trace_id_of(&head).is_none(),
        "tracing off must not mint ids"
    );
    handle.shutdown();
}

#[test]
fn provenance_endpoint_matches_offline_assembly() {
    let tpiin = fig7();
    let detection = detect(&tpiin);
    assert!(detection.group_count() > 0);
    let handle = ServerHandle::bind(tpiin.clone(), ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    for index in 0..detection.groups.len() {
        let (status, body) = get(addr, &format!("/groups/{index}/provenance"));
        assert_eq!(status, "HTTP/1.1 200 OK", "group {index}");
        assert!(body.contains("\"rule\":"), "group {index}: {body}");
        assert!(body.contains("\"influence_arcs\":"), "group {index}");
        // The served chain references only arcs the offline assembly
        // resolves against the same network.
        let offline = tpiin_core::Provenance::assemble(&tpiin, &detection.groups[index]);
        assert!(offline.audit(&tpiin).is_ok());
        assert!(
            body.contains(&format!(
                "\"trade_volume\":{}",
                tpiin_io::json::Json::Number(offline.score.trade_volume)
            )),
            "group {index} trade volume diverged: {body}"
        );
    }

    let (status, _) = get(addr, "/groups/999999/provenance");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = get(addr, "/groups/zebra/provenance");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    handle.shutdown();
}

#[test]
fn ingested_groups_get_provenance_too() {
    // Case 2 without its trades: the first ingest batch mines one new
    // group, whose provenance must be served without a full re-detect.
    let mut registry = tpiin_datagen::case2_registry();
    registry.clear_trading();
    let (clean, _) = fuse(&registry).expect("case2 fuses");
    let before = detect(&clean).group_count();
    let handle = ServerHandle::bind(clean, ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    let (status, body) = post(
        addr,
        "/ingest",
        "{\"records\": [{\"seller\": 1, \"buyer\": 2, \"volume\": 7.5}]}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"new_group_count\":1"), "{body}");

    let (status, body) = get(addr, &format!("/groups/{before}/provenance"));
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"trade_volume\":7.5"), "{body}");
    assert!(body.contains("\"rule\":"), "{body}");
    handle.shutdown();
}

#[test]
fn groups_endpoint_filters_by_miner_and_paginates() {
    // The planted circular-trading case: no Rule 1/2 pattern, one ring.
    let (tpiin, _) = fuse(&tpiin_datagen::circular_case_registry()).expect("case fuses");
    let handle = ServerHandle::bind(tpiin, ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    // The default listing serves the primary (rules) miner.
    let (status, body) = get(addr, "/groups");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"miner\":\"rules\""), "{body}");
    assert!(body.contains("\"group_count\":0"), "{body}");

    // `miner=circular` switches to the sibling strategy's detection.
    let (status, body) = get(addr, "/groups?miner=circular");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"miner\":\"circular\""), "{body}");
    assert!(body.contains("\"group_count\":1"), "{body}");
    assert!(body.contains("\"kind\":\"circle\""), "{body}");

    // Pagination: an offset past the single group shows nothing.
    let (status, body) = get(addr, "/groups?miner=circular&limit=1&offset=1");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"shown\":0"), "{body}");

    // Typos and unknown miners are refused, not silently ignored.
    let (status, body) = get(addr, "/groups?mnier=circular");
    assert_eq!(status, "HTTP/1.1 400 Bad Request", "{body}");
    assert!(body.contains("unknown query parameter"), "{body}");
    let (status, body) = get(addr, "/groups?miner=zebra");
    assert_eq!(status, "HTTP/1.1 404 Not Found", "{body}");

    // Provenance follows the miner filter; the circular miner has no
    // provenance hook, so its group answers a clear 422, not a panic.
    let (status, body) = get(addr, "/groups/0/provenance?miner=circular");
    assert_eq!(status, "HTTP/1.1 422 Unprocessable Entity", "{body}");
    assert!(body.contains("no provenance hook"), "{body}");
    let (status, _) = get(addr, "/groups/0/provenance?bogus=1");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    handle.shutdown();
}

#[test]
fn malformed_bytes_get_errors_not_panics() {
    let handle = ServerHandle::bind(fig7(), ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    let probes: [&[u8]; 6] = [
        b"\r\n\r\n",
        b"BOGUS\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n",
        b"POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\n\x00\xff\x00\xff",
        b"POST /ingest HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"records",
    ];
    for raw in probes {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(raw).expect("write");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.starts_with("HTTP/1.1 4"),
            "expected a 4xx for {raw:?}, got {:?}",
            response.lines().next()
        );
    }

    // Oversized bodies are refused, not buffered.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .expect("write");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 413"), "got {response:?}");

    // Still alive after all of it.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"status\":\"ok\""));
    handle.shutdown();
}

#[test]
fn status_endpoint_reports_runtime_state() {
    let handle = ServerHandle::bind(fig7(), ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    let (status, body) = get(addr, "/status");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let json = tpiin_io::json::Json::parse(&body).expect("status body is JSON");
    let field = |key: &str| {
        json.get(key)
            .and_then(tpiin_io::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(
        json.get("status").and_then(tpiin_io::json::Json::as_str),
        Some("ok")
    );
    assert_eq!(field("epoch"), 1.0);
    assert!(field("snapshot_bytes") > 0.0, "served network has a size");
    assert!(field("uptime_secs") >= 0.0);
    assert!(field("workers") >= 1.0);
    assert!(field("queue_capacity") >= 1.0);
    assert!(
        field("busy_workers") >= 1.0,
        "the /status request itself occupies a worker"
    );
    assert!(field("shed_requests") >= 0.0);
    assert!(field("reloads") >= 0.0);
    assert!(field("alloc_live_bytes") > 0.0);
    assert!(field("alloc_total_allocs") > 0.0);
    #[cfg(target_os = "linux")]
    assert!(field("rss_bytes") > 0.0, "kernel view present on Linux");
    handle.shutdown();
}

/// Regression: a snapshot hot-swap mid-window must clear the sliding
/// 60s `_window` twin series for the serve latency histograms (old
/// epoch's latencies must not blend into the new epoch's "now" view)
/// while the cumulative series keeps counting.
#[test]
fn reload_mid_window_resets_latency_window_series() {
    let tpiin = fig7();
    let path: PathBuf = std::env::temp_dir().join(format!(
        "tpiin-serve-window-{}-{:?}.tpiin",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, tpiin_io::snapshot::write_snapshot(&tpiin)).expect("write snapshot");
    let config = ServeConfig {
        snapshot_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(tpiin, config).expect("bind");
    let addr = handle.addr();

    let series = |metrics: &str, name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|line| line.strip_prefix(name))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0)
    };
    // No other daemon test touches /company, but /reload from a
    // concurrently running test clears every serve.latency window —
    // retry until our requests and the scrape land without one.
    let mut windowed = 0;
    let mut cumulative_before = 0;
    for _ in 0..10 {
        for _ in 0..3 {
            let (status, _) = get(addr, "/company/C3");
            assert_eq!(status, "HTTP/1.1 200 OK");
        }
        let (_, metrics) = get(addr, "/metrics");
        windowed = series(&metrics, "tpiin_serve_latency_company_window_count ");
        cumulative_before = series(&metrics, "tpiin_serve_latency_company_count ");
        if windowed >= 3 {
            break;
        }
    }
    assert!(windowed >= 3, "window counts observed requests: {windowed}");

    let (status, body) = post(addr, "/reload", "");
    assert_eq!(status, "HTTP/1.1 200 OK", "reload failed: {body}");

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(
        series(&metrics, "tpiin_serve_latency_company_window_count "),
        0,
        "hot swap must reset the sliding window"
    );
    assert!(
        series(&metrics, "tpiin_serve_latency_company_count ") >= cumulative_before,
        "cumulative series survives the swap"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A binary zero-copy snapshot hot-swaps exactly like a text one: the
/// watcher-facing `/reload` auto-detects the format by magic, the epoch
/// advances, `/status` reports the load time, and the served groups are
/// identical to what the text snapshot produces.
#[test]
fn binary_snapshot_hot_swap_matches_text() {
    let tpiin = fig7();
    let path: PathBuf = std::env::temp_dir().join(format!(
        "tpiin-serve-bin-{}-{:?}.tpiin",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, tpiin_io::snapshot::write_snapshot(&tpiin)).expect("write snapshot");
    let config = ServeConfig {
        snapshot_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(tpiin.clone(), config).expect("bind");
    let addr = handle.addr();
    let (_, text_groups) = get(addr, "/groups");

    // Overwrite the watched file with the binary encoding and reload.
    std::fs::write(&path, tpiin_io::snapshot_bin::write_snapshot_bin(&tpiin))
        .expect("write binary snapshot");
    let (status, body) = post(addr, "/reload", "");
    assert_eq!(status, "HTTP/1.1 200 OK", "binary reload failed: {body}");
    assert!(body.contains("\"epoch\":2"), "epoch advanced: {body}");

    let (status, body) = get(addr, "/status");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let json = tpiin_io::json::Json::parse(&body).expect("status is JSON");
    let field = |key: &str| {
        json.get(key)
            .and_then(tpiin_io::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(field("epoch"), 2.0);
    assert!(
        field("snapshot_load_ms") >= 0.0,
        "load time reported: {body}"
    );

    // The binary epoch serves bit-identical groups (bar the epoch tag).
    let (status, bin_groups) = get(addr, "/groups");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        bin_groups.replace("\"epoch\":2", "\"epoch\":1"),
        text_groups,
        "binary snapshot served different groups"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn registry_backed_daemon_applies_mutation_batches() {
    // Case 2 without its trades, served with its source registry: the
    // daemon then accepts the full mutation vocabulary, not just
    // trading appends.
    let mut registry = tpiin_datagen::case2_registry();
    registry.clear_trading();
    let next_person = registry.person_count();
    let handle = ServerHandle::bind_with_registry(registry, ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    // A trading mutation takes the surgical append path and mines the
    // planted group, exactly like the legacy `records` body would.
    let (status, body) = post(
        addr,
        "/ingest",
        "{\"mutations\": [{\"op\":\"add_trading\",\"seller\":1,\"buyer\":2,\"volume\":7.5}]}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"epoch\":2"), "{body}");
    assert!(body.contains("\"path\":\"trading_append\""), "{body}");
    assert!(body.contains("\"new_group_count\":1"), "{body}");

    // A registry delta (new person + their company) rides the
    // incremental path: no investment arcs moved, so no SCC re-runs and
    // no full rebuild.
    let batch = format!(
        "{{\"mutations\": [{{\"op\":\"add_person\",\"name\":\"PX\",\"roles\":\"CEO\"}},\
         {{\"op\":\"add_company\",\"name\":\"CX\",\"legal_person\":{next_person},\"kind\":\"ceo\"}}]}}"
    );
    let (status, body) = post(addr, "/ingest", &batch);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"epoch\":3"), "{body}");
    assert!(body.contains("\"path\":\"incremental\""), "{body}");
    let (status, body) = get(addr, "/company/CX");
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");

    // Registering a company under an existing person (no new person)
    // is the id-stable class: the node is spliced in place and the
    // batch takes the surgical company-append path.
    let (status, body) = post(
        addr,
        "/ingest",
        "{\"mutations\": [{\"op\":\"add_company\",\"name\":\"CY\",\"legal_person\":0,\"kind\":\"ceo\"}]}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"epoch\":4"), "{body}");
    assert!(body.contains("\"path\":\"company_append\""), "{body}");

    // A batch that breaks a registry invariant is rejected atomically:
    // same epoch, nothing changed.
    let (status, body) = post(
        addr,
        "/ingest",
        "{\"mutations\": [{\"op\":\"remove_person\",\"person\":0}]}",
    );
    assert_eq!(status, "HTTP/1.1 400 Bad Request", "{body}");
    let (_, body) = get(addr, "/healthz");
    assert!(body.contains("\"epoch\":4"), "{body}");

    // `/status` surfaces the delta counters.
    let (status, body) = get(addr, "/status");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let json = tpiin_io::json::Json::parse(&body).expect("status is JSON");
    let delta = json.get("delta").expect("delta counters");
    let field = |key: &str| {
        delta
            .get(key)
            .and_then(tpiin_io::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert!(field("batches") >= 3.0, "{body}");
    assert!(field("arcs_patched") >= 1.0, "{body}");
    assert_eq!(field("company_appends"), 1.0, "{body}");
    assert_eq!(field("full_rebuilds"), 0.0, "{body}");
    handle.shutdown();
}

/// Drips a GET request's header bytes so the worker that picked the
/// connection up measures a genuinely slow request: `started` is
/// stamped before the request is parsed, so the stall lands in the
/// request's latency histogram and its slowlog eligibility check.
/// Returns `None` if the daemon shed or dropped the connection.
fn slow_get(addr: SocketAddr, path: &str, stall: Duration) -> Option<(String, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n").as_bytes())
        .ok()?;
    stream.flush().ok()?;
    std::thread::sleep(stall);
    stream.write_all(b"\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status = response.lines().next().unwrap_or_default().to_string();
    let head = response
        .split_once("\r\n\r\n")
        .map(|(h, _)| h.to_string())
        .unwrap_or_default();
    Some((status, head))
}

/// Polls `/alerts` until its `worst` field reaches `expected`.
fn wait_for_worst(addr: SocketAddr, expected: &str, deadline: Duration) {
    let begin = Instant::now();
    loop {
        let (status, body) = get(addr, "/alerts");
        assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
        if body.contains(&format!("\"worst\":\"{expected}\"")) {
            return;
        }
        assert!(
            begin.elapsed() < deadline,
            "alerts never reached `{expected}` within {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn timeline_records_queryable_series_and_exports_jsonl() {
    let config = ServeConfig {
        telemetry_tick: Duration::from_millis(25),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();

    // Generate traffic, then wait until the recorder has sampled it.
    let begin = Instant::now();
    loop {
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let (status, index) = get(addr, "/timeline");
        assert_eq!(status, "HTTP/1.1 200 OK");
        if index.contains("serve.requests.healthz") {
            break;
        }
        assert!(
            begin.elapsed() < Duration::from_secs(10),
            "recorder never sampled the request counter: {index}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The index advertises the recorder's shape and its series.
    let (_, index) = get(addr, "/timeline");
    let json = tpiin_io::json::Json::parse(&index).expect("index is JSON");
    assert!(
        json.get("last_tick")
            .and_then(tpiin_io::json::Json::as_f64)
            .unwrap_or(0.0)
            >= 1.0,
        "{index}"
    );
    assert!(index.contains("\"fine_capacity\":"), "{index}");
    assert!(index.contains("\"coarse_every\":"), "{index}");

    // One series, as points: cumulative counter samples never decrease.
    let (status, body) = get(addr, "/timeline?metric=serve.requests.healthz&since=0");
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let json = tpiin_io::json::Json::parse(&body).expect("series is JSON");
    assert_eq!(
        json.get("metric").and_then(tpiin_io::json::Json::as_str),
        Some("serve.requests.healthz")
    );
    assert!(body.contains("\"points\":["), "{body}");
    assert!(body.contains("\"tick\":"), "{body}");

    // The JSONL export is one self-describing object per line.
    let (status, export) = get(addr, "/timeline/export");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(!export.trim().is_empty(), "export is empty");
    for line in export.lines() {
        let row = tpiin_io::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable JSONL line {line:?}: {e:?}"));
        assert!(row.get("metric").is_some(), "{line}");
        assert!(row.get("tick").is_some(), "{line}");
    }

    // Unknown series 404, malformed queries 400.
    let (status, _) = get(addr, "/timeline?metric=no.such.series");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = get(addr, "/timeline?metric=serve.requests.healthz&since=zebra");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let (status, _) = get(addr, "/timeline?bogus=1");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    // `/status` folds the health verdict in next to the runtime state.
    let (_, status_body) = get(addr, "/status");
    assert!(status_body.contains("\"health\":\"ok\""), "{status_body}");
    handle.shutdown();
}

#[test]
fn telemetry_disabled_turns_recorder_endpoints_off() {
    let config = ServeConfig {
        telemetry: false,
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();
    for path in ["/timeline", "/timeline/export", "/alerts"] {
        let (status, body) = get(addr, path);
        assert_eq!(status, "HTTP/1.1 404 Not Found", "{path}: {body}");
        assert!(body.contains("disabled"), "{path}: {body}");
    }
    // The slowlog ring still works — it is fed inline, not by the
    // recorder thread — and `/status` says the health engine is off.
    let (status, body) = get(addr, "/slowlog");
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    let (_, body) = get(addr, "/status");
    assert!(body.contains("\"health\":\"off\""), "{body}");
    handle.shutdown();
}

#[test]
fn slowlog_captures_slow_requests_and_links_their_traces() {
    let config = ServeConfig {
        slowlog_threshold: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();

    // Fast traffic stays out of the exemplar ring.
    for _ in 0..5 {
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
    let (status, body) = get(addr, "/slowlog");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        body.contains("\"count\":0"),
        "fast requests captured: {body}"
    );
    assert!(body.contains("\"threshold_ms\":50"), "{body}");

    // A stalled request crosses the threshold and is captured with its
    // trace id, which must resolve to a replayable trace.
    let (status, head) =
        slow_get(addr, "/groups", Duration::from_millis(150)).expect("slow request answered");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let id = trace_id_of(&head).expect("slow response still carries its trace id");

    let (status, body) = get(addr, "/slowlog");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"endpoint\":\"groups\""), "{body}");
    assert!(body.contains(&format!("\"trace\":\"{id}\"")), "{body}");
    assert!(
        body.contains(&format!("\"trace_url\":\"/trace/{id}\"")),
        "{body}"
    );
    assert!(body.contains("\"alloc_bytes\":"), "{body}");

    let (status, trace_body) = get(addr, &format!("/trace/{id}"));
    assert_eq!(status, "HTTP/1.1 200 OK", "slowlog trace must replay");
    assert!(trace_body.contains("serve/groups"), "{trace_body}");
    handle.shutdown();
}

/// The acceptance walk for the health engine: sustained degradation
/// drives an SLO from ok to warn (p99 a little over objective), a worse
/// spike drives it to page (p99 far over), and recovery de-escalates
/// only after the hysteresis streak — never on one calm tick.
///
/// Thresholds are bucket-aware: the recorder estimates quantiles by
/// interpolating histogram buckets, so a uniform window estimates its
/// bucket's upper bound.  A ~30ms stall lands in the (16ms, 64ms]
/// bucket (estimate 64ms → burn 1.28 against a 50ms objective: warn);
/// a ~300ms stall lands in (256ms, 1s] (estimate 1s → burn 20: page).
#[test]
fn alerts_walk_ok_warn_page_and_recover_with_hysteresis() {
    let mut spec = tpiin_obs::SloSpec::latency_p99("healthz.p99", "serve.latency.healthz", 50e6);
    spec.short_ticks = 12; // 300ms of 25ms ticks
    spec.long_ticks = 24; // 600ms
    spec.clear_ticks = 4; // ≥100ms of calm before de-escalating
    let config = ServeConfig {
        telemetry_tick: Duration::from_millis(25),
        slos: Some(vec![spec]),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();

    wait_for_worst(addr, "ok", Duration::from_secs(5));

    let stop_warn = AtomicBool::new(false);
    let stop_page = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Phase 1: sustained ~30ms stalls — over budget, but only just.
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop_warn.load(Ordering::Relaxed) {
                    let _ = slow_get(addr, "/healthz", Duration::from_millis(30));
                }
            });
        }
        wait_for_worst(addr, "warn", Duration::from_secs(20));

        // Phase 2: add ~300ms stalls on top — now far over budget.
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop_page.load(Ordering::Relaxed) {
                    let _ = slow_get(addr, "/healthz", Duration::from_millis(300));
                }
            });
        }
        wait_for_worst(addr, "page", Duration::from_secs(20));

        // Phase 3: the spike ends; the alert must clear all the way
        // back down once the burn windows drain and the calm streak
        // outlasts `clear_ticks`.
        stop_warn.store(true, Ordering::Relaxed);
        stop_page.store(true, Ordering::Relaxed);
    });
    wait_for_worst(addr, "ok", Duration::from_secs(20));
    handle.shutdown();
}

/// Satellite of the telemetry work: `shutdown` must join the 250ms
/// `/proc` sampler and the recorder thread promptly even when the
/// recorder tick is enormous — the cancellation latch wakes them out
/// of their parks instead of letting the join wait out a sleep.
#[test]
fn shutdown_joins_background_threads_promptly() {
    let config = ServeConfig {
        telemetry_tick: Duration::from_secs(3600),
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(fig7(), config).expect("bind");
    let addr = handle.addr();
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let begin = Instant::now();
    handle.shutdown();
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "shutdown blocked on a parked background thread for {:?}",
        begin.elapsed()
    );
}

#[test]
fn snapshot_only_daemon_rejects_registry_mutations() {
    let handle = ServerHandle::bind(fig7(), ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    let (status, body) = post(
        addr,
        "/ingest",
        "{\"mutations\": [{\"op\":\"add_person\",\"name\":\"PX\",\"roles\":\"CEO\"}]}",
    );
    assert_eq!(status, "HTTP/1.1 422 Unprocessable Entity", "{body}");
    // Trading mutations still work without a registry.
    let (status, body) = post(
        addr,
        "/ingest",
        "{\"mutations\": [{\"op\":\"add_trading\",\"seller\":0,\"buyer\":1,\"volume\":1.0}]}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(body.contains("\"path\":\"trading_append\""), "{body}");
    handle.shutdown();
}
