//! Detection result types: suspicious groups, statistics, explanations.

use std::collections::BTreeSet;
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;

/// How a suspicious group was formed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GroupKind {
    /// Two matched component patterns with the same antecedent (the
    /// regular case of Section 4.3).
    Matched,
    /// A circle inside one `InOT-FTAOP` walk (the special case: the
    /// trading arc re-enters the walk's own prefix).
    Circle,
}

/// A suspicious tax-evasion group (Definition 2): two simple directed
/// trails with the same antecedent and end node hiding exactly one
/// interest-affiliated transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuspiciousGroup {
    /// Which subTPIIN the group was mined from.
    pub subtpiin: usize,
    /// Formation kind.
    pub kind: GroupKind,
    /// The common antecedent node `A1` (for circles: the node the trading
    /// arc re-enters).
    pub antecedent: NodeId,
    /// The end node `Cj` — the target of the interest-affiliated
    /// transaction.
    pub end: NodeId,
    /// The suspicious trading arc `(Am, Cj)`.
    pub trading_arc: (NodeId, NodeId),
    /// Influence prefix `A1 … Am` of the trail that carries the trading
    /// arc (`Cj` excluded; the arc `Am -> Cj` completes the trail).
    pub trail_with_trade: Vec<NodeId>,
    /// The pure influence trail `A1 … Cj` (inclusive).  For circles this
    /// is the trivial single-node trail `[A1]`.
    pub trail_plain: Vec<NodeId>,
    /// Whether the group is *simple* (Definition 3): the two trails share
    /// no node besides antecedent and end.
    pub simple: bool,
}

impl SuspiciousGroup {
    /// All member nodes of the group, deduplicated and ordered.
    pub fn members(&self) -> BTreeSet<NodeId> {
        let mut m: BTreeSet<NodeId> = self.trail_with_trade.iter().copied().collect();
        m.extend(self.trail_plain.iter().copied());
        m.insert(self.end);
        m
    }

    /// A canonical identity used for deduplication and for comparing the
    /// detector against the baseline: the trading arc plus the two trails.
    /// Trails are in global TPIIN node ids, so the key is unique across
    /// subTPIINs without referencing the segmentation.
    pub fn key(&self) -> ((NodeId, NodeId), Vec<NodeId>, Vec<NodeId>) {
        (
            self.trading_arc,
            self.trail_with_trade.clone(),
            self.trail_plain.clone(),
        )
    }

    /// Human-readable proof chain, labelled via `tpiin` — the explanation
    /// the paper highlights as an advantage over black-box methods.
    pub fn explain(&self, tpiin: &Tpiin) -> String {
        let label = |n: NodeId| tpiin.label(n).to_string();
        let members: Vec<String> = self.members().into_iter().map(label).collect();
        let t1: Vec<String> = self.trail_with_trade.iter().copied().map(label).collect();
        let t2: Vec<String> = self.trail_plain.iter().copied().map(label).collect();
        format!(
            "{} group ({}) behind IAT {} -> {}: trail [{} ->TR {}] with trail [{}]",
            match self.kind {
                GroupKind::Matched =>
                    if self.simple {
                        "simple"
                    } else {
                        "complex"
                    },
                GroupKind::Circle => "circle",
            },
            members.join(", "),
            label(self.trading_arc.0),
            label(self.trading_arc.1),
            t1.join(" -> "),
            label(self.end),
            t2.join(" -> "),
        )
    }
}

/// Per-subTPIIN mining statistics (Algorithm 1's outer loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubTpiinStats {
    /// SubTPIIN index.
    pub index: usize,
    /// Node count.
    pub nodes: usize,
    /// Influence arcs.
    pub influence_arcs: usize,
    /// Trading arcs inside the subTPIIN.
    pub trading_arcs: usize,
    /// Total patterns-tree nodes built across roots.
    pub tree_nodes: usize,
    /// Component patterns generated (type (a) + type (b)).
    pub patterns: usize,
    /// Suspicious groups found here.
    pub groups: usize,
}

/// Aggregated output of a detection run.
#[derive(Clone, Debug, Default)]
pub struct DetectionResult {
    /// The groups, if the detector was configured to collect them
    /// (ordered deterministically); counts below are always filled.
    pub groups: Vec<SuspiciousGroup>,
    /// Provenance record of each collected group, index-aligned with
    /// [`DetectionResult::groups`] (empty for counting-only runs).
    pub provenances: Vec<crate::provenance::Provenance>,
    /// Number of complex suspicious groups (Table 1, column 3).
    pub complex_group_count: usize,
    /// Number of simple suspicious groups (Table 1, column 4).
    pub simple_group_count: usize,
    /// Distinct suspicious trading arcs (Table 1, column 6).
    pub suspicious_trading_arcs: BTreeSet<(NodeId, NodeId)>,
    /// All trading arcs in the input TPIIN (Table 1, column 7).
    pub total_trading_arcs: usize,
    /// Trades inside contracted investment SCCs — suspicious by
    /// construction, counted separately from the arc columns.
    pub intra_syndicate_trades: usize,
    /// Per-subTPIIN statistics.
    pub per_subtpiin: Vec<SubTpiinStats>,
    /// Whether any patterns tree hit the configured size bound (results
    /// would then be incomplete; the default bound is effectively
    /// unreachable for realistic networks).
    pub overflowed: bool,
}

impl DetectionResult {
    /// Total groups (complex + simple).
    pub fn group_count(&self) -> usize {
        self.complex_group_count + self.simple_group_count
    }

    /// Groups involving `node` (as member, antecedent or trading party).
    /// Requires a result collected with `collect_groups: true`.
    pub fn groups_involving(&self, node: NodeId) -> impl Iterator<Item = &SuspiciousGroup> {
        self.groups.iter().filter(move |g| {
            g.antecedent == node
                || g.end == node
                || g.trading_arc.0 == node
                || g.trail_with_trade.contains(&node)
                || g.trail_plain.contains(&node)
        })
    }

    /// The `k` highest-scoring groups under the weighted extension,
    /// descending.  Ties break deterministically by group key.
    pub fn top_scored<'a>(
        &'a self,
        tpiin: &Tpiin,
        k: usize,
    ) -> Vec<(crate::score::GroupScore, &'a SuspiciousGroup)> {
        let mut scored: Vec<_> = self
            .groups
            .iter()
            .map(|g| (crate::score::score_group(tpiin, g), g))
            .collect();
        scored.sort_by(|a, b| {
            b.0.score
                .total_cmp(&a.0.score)
                .then_with(|| a.1.key().cmp(&b.1.key()))
        });
        scored.truncate(k);
        scored
    }

    /// A compact multi-line summary: the headline counters plus one line
    /// per subTPIIN that produced groups (Algorithm 1's outer loop view).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} suspicious groups ({} complex, {} simple) behind {} of {} trading arcs ({:.2}%)",
            self.group_count(),
            self.complex_group_count,
            self.simple_group_count,
            self.suspicious_trading_arcs.len(),
            self.total_trading_arcs,
            self.suspicious_percentage(),
        );
        if self.intra_syndicate_trades > 0 {
            let _ = write!(
                out,
                "; {} intra-syndicate trades",
                self.intra_syndicate_trades
            );
        }
        if self.overflowed {
            out.push_str("; WARNING: pattern tree overflow, results incomplete");
        }
        for stats in self.per_subtpiin.iter().filter(|s| s.groups > 0) {
            let _ = write!(
                out,
                "\n  subTPIIN {}: {} nodes, {} trading arcs, {} patterns -> {} groups",
                stats.index, stats.nodes, stats.trading_arcs, stats.patterns, stats.groups
            );
        }
        out
    }

    /// Percentage of trading arcs flagged suspicious — the last column of
    /// Table 1.
    pub fn suspicious_percentage(&self) -> f64 {
        if self.total_trading_arcs == 0 {
            return 0.0;
        }
        100.0 * self.suspicious_trading_arcs.len() as f64 / self.total_trading_arcs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SuspiciousGroup {
        SuspiciousGroup {
            subtpiin: 0,
            kind: GroupKind::Matched,
            antecedent: NodeId::from_index(0),
            end: NodeId::from_index(3),
            trading_arc: (NodeId::from_index(2), NodeId::from_index(3)),
            trail_with_trade: vec![
                NodeId::from_index(0),
                NodeId::from_index(1),
                NodeId::from_index(2),
            ],
            trail_plain: vec![NodeId::from_index(0), NodeId::from_index(3)],
            simple: true,
        }
    }

    #[test]
    fn members_union_both_trails_and_end() {
        let g = group();
        let m: Vec<usize> = g.members().into_iter().map(NodeId::index).collect();
        assert_eq!(m, vec![0, 1, 2, 3]);
    }

    #[test]
    fn key_identifies_the_trail_pair() {
        let g = group();
        let mut g2 = group();
        assert_eq!(g.key(), g2.key());
        g2.trail_plain.push(NodeId::from_index(9));
        assert_ne!(g.key(), g2.key());
    }

    #[test]
    fn summary_includes_counts_and_active_subtpiins() {
        let mut r = DetectionResult {
            complex_group_count: 2,
            simple_group_count: 1,
            total_trading_arcs: 10,
            ..Default::default()
        };
        r.suspicious_trading_arcs
            .insert((NodeId::from_index(0), NodeId::from_index(1)));
        r.per_subtpiin.push(SubTpiinStats {
            index: 3,
            nodes: 7,
            trading_arcs: 2,
            patterns: 5,
            groups: 3,
            ..Default::default()
        });
        r.per_subtpiin.push(SubTpiinStats::default()); // silent: no groups
        let text = r.summary();
        assert!(
            text.contains("3 suspicious groups (2 complex, 1 simple)"),
            "{text}"
        );
        assert!(text.contains("subTPIIN 3:"), "{text}");
        assert_eq!(text.lines().count(), 2, "{text}");
    }

    #[test]
    fn summary_flags_overflow() {
        let r = DetectionResult {
            overflowed: true,
            ..Default::default()
        };
        assert!(r.summary().contains("overflow"));
    }

    #[test]
    fn groups_involving_filters_by_any_role() {
        let g = group();
        let result = DetectionResult {
            groups: vec![g.clone()],
            complex_group_count: 0,
            simple_group_count: 1,
            ..Default::default()
        };
        for i in 0..4 {
            assert_eq!(
                result.groups_involving(NodeId::from_index(i)).count(),
                1,
                "node {i}"
            );
        }
        assert_eq!(result.groups_involving(NodeId::from_index(9)).count(), 0);
    }

    #[test]
    fn percentage_handles_empty_input() {
        let r = DetectionResult::default();
        assert_eq!(r.suspicious_percentage(), 0.0);
    }

    #[test]
    fn percentage_computes() {
        let mut r = DetectionResult {
            total_trading_arcs: 200,
            ..Default::default()
        };
        r.suspicious_trading_arcs
            .insert((NodeId::from_index(0), NodeId::from_index(1)));
        r.suspicious_trading_arcs
            .insert((NodeId::from_index(1), NodeId::from_index(2)));
        assert!((r.suspicious_percentage() - 1.0).abs() < 1e-12);
    }
}
