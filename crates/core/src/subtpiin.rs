//! Algorithm 1, steps 1–6: segmenting a TPIIN into `subTPIIN`s.
//!
//! A trading arc that connects two *different* weakly connected subgraphs
//! of the antecedent network cannot hide a common interest party, so the
//! TPIIN is split into independent mining units: the `i`-th maximal weakly
//! connected antecedent subgraph plus every trading arc between its
//! company nodes (Definition 4).

use tpiin_fusion::{ArcColor, NodeColor, Tpiin};
use tpiin_graph::{weakly_connected_components, DiGraph, NodeId};

/// One independent mining unit: a weak component of the antecedent
/// network with its internal trading arcs, re-indexed to dense local node
/// ids for cache-friendly traversal.
#[derive(Clone, Debug)]
pub struct SubTpiin {
    /// Position of this subTPIIN in the segmentation output.
    pub index: usize,
    /// Global TPIIN node for each local node id.
    pub global: Vec<NodeId>,
    /// Influence out-adjacency per local node.
    pub influence_out: Vec<Vec<u32>>,
    /// Trading out-adjacency per local node.
    pub trading_out: Vec<Vec<u32>>,
    /// Influence in-degree per local node (used to pick pattern-tree
    /// roots).
    pub influence_in_degree: Vec<u32>,
    /// Number of trading arcs inside this subTPIIN.
    pub trading_arc_count: usize,
    /// Whether each local node is a Person node (else Company).
    pub is_person: Vec<bool>,
}

impl SubTpiin {
    /// Number of local nodes.
    pub fn node_count(&self) -> usize {
        self.global.len()
    }

    /// Number of influence arcs.
    pub fn influence_arc_count(&self) -> usize {
        self.influence_out.iter().map(Vec::len).sum()
    }

    /// Pattern-tree roots: local nodes with zero influence in-degree.
    ///
    /// In a fused TPIIN these are exactly the person nodes (every company
    /// has a legal-person arc); the influence-indegree criterion keeps the
    /// detector complete on hand-built networks where a company may lack
    /// influence in-arcs while still receiving trading arcs.
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.global.len() as u32).filter(move |&v| self.influence_in_degree[v as usize] == 0)
    }

    /// Total out-degree (influence + trading) of a local node.
    pub fn out_degree(&self, v: u32) -> usize {
        self.influence_out[v as usize].len() + self.trading_out[v as usize].len()
    }
}

/// Builds a local [`SubTpiin`] from a dense `graph` whose arcs carry
/// [`ArcColor`].  Shared by [`segment_tpiin`] and the test helpers.
fn from_component(
    index: usize,
    members: &[NodeId],
    graph: &DiGraph<impl Sized, ArcColor>,
    is_person: impl Fn(NodeId) -> bool,
    local_of: &[u32],
) -> SubTpiin {
    let n = members.len();
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut influence_in_degree = vec![0u32; n];
    let mut trading_arc_count = 0usize;
    for (local, &g) in members.iter().enumerate() {
        for e in graph.out_edges(g) {
            let t = local_of[e.target.index()];
            if t == u32::MAX {
                // Trading arc leaving the component: unsuspicious, skip.
                debug_assert!(*e.weight == ArcColor::Trading);
                continue;
            }
            match *e.weight {
                ArcColor::Influence => {
                    influence_out[local].push(t);
                    influence_in_degree[t as usize] += 1;
                }
                ArcColor::Trading => {
                    trading_out[local].push(t);
                    trading_arc_count += 1;
                }
            }
        }
    }
    SubTpiin {
        index,
        global: members.to_vec(),
        influence_out,
        trading_out,
        influence_in_degree,
        trading_arc_count,
        is_person: members.iter().map(|&g| is_person(g)).collect(),
    }
}

/// Segments `tpiin` into its subTPIINs (Algorithm 1 steps 1–6).
///
/// Components are ordered deterministically by their smallest global node
/// id.  Isolated antecedent nodes (degree zero) still form singleton
/// subTPIINs; they can never host a group and the detector skips them
/// cheaply.
pub fn segment_tpiin(tpiin: &Tpiin) -> Vec<SubTpiin> {
    let _span = tpiin_obs::Span::at("detect/segment");
    // Weak components of the *antecedent* network only.
    let mut antecedent: DiGraph<(), ()> =
        DiGraph::with_capacity(tpiin.graph.node_count(), tpiin.influence_arc_count);
    for _ in 0..tpiin.graph.node_count() {
        antecedent.add_node(());
    }
    for e in tpiin.graph.edges() {
        if e.weight.color == ArcColor::Influence {
            antecedent.add_edge(e.source, e.target, ());
        }
    }
    let (labels, count) = weakly_connected_components(&antecedent);

    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in tpiin.graph.node_ids() {
        members[labels[v.index()] as usize].push(v);
    }

    // Map global node -> local id within its component.
    let mut local_of = vec![u32::MAX; tpiin.graph.node_count()];
    for comp in &members {
        for (local, &g) in comp.iter().enumerate() {
            local_of[g.index()] = local as u32;
        }
    }

    // Arc colors come from the TPIIN graph; trading arcs crossing
    // components are dropped inside `from_component` (their endpoints map
    // to different components, detected via differing labels).
    let colored = tpiin.graph.map(|_, _| (), |_, arc| arc.color);
    members
        .iter()
        .enumerate()
        .map(|(i, comp)| {
            // Restrict `local_of` semantics per component: endpoints in a
            // different component must read as absent.
            let comp_label = labels[comp[0].index()];
            let local_lookup: Vec<u32> = local_of
                .iter()
                .enumerate()
                .map(|(g, &l)| if labels[g] == comp_label { l } else { u32::MAX })
                .collect();
            from_component(
                i,
                comp,
                &colored,
                |g| tpiin.color(g) == NodeColor::Person,
                &local_lookup,
            )
        })
        .collect()
}

/// Builds one [`SubTpiin`] covering the *whole* TPIIN, skipping the
/// divide-and-conquer segmentation of Algorithm 1.  Mining it produces the
/// same groups (trails never cross antecedent components), but without
/// the per-component independence — this is the "no segmentation" arm of
/// the ablation benchmark.
pub fn whole_tpiin(tpiin: &Tpiin) -> SubTpiin {
    let n = tpiin.graph.node_count();
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut influence_in_degree = vec![0u32; n];
    let mut trading_arc_count = 0usize;
    for e in tpiin.graph.edges() {
        let (s, t) = (e.source.index() as u32, e.target.index() as u32);
        match e.weight.color {
            ArcColor::Influence => {
                influence_out[s as usize].push(t);
                influence_in_degree[t as usize] += 1;
            }
            ArcColor::Trading => {
                trading_out[s as usize].push(t);
                trading_arc_count += 1;
            }
        }
    }
    SubTpiin {
        index: 0,
        global: tpiin.graph.node_ids().collect(),
        influence_out,
        trading_out,
        influence_in_degree,
        trading_arc_count,
        is_person: tpiin
            .graph
            .nodes()
            .map(|(_, node)| node.color() == NodeColor::Person)
            .collect(),
    }
}

/// Builds a single [`SubTpiin`] directly from explicit arc lists — a
/// convenience for unit tests and the worked examples, bypassing fusion.
///
/// `n` local nodes; `influence`/`trading` are `(source, target)` pairs in
/// local ids; `is_person[v]` tags node colors.
pub fn subtpiin_from_arcs(
    n: usize,
    influence: &[(u32, u32)],
    trading: &[(u32, u32)],
    is_person: Vec<bool>,
) -> SubTpiin {
    assert_eq!(is_person.len(), n);
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut influence_in_degree = vec![0u32; n];
    for &(s, t) in influence {
        influence_out[s as usize].push(t);
        influence_in_degree[t as usize] += 1;
    }
    for &(s, t) in trading {
        trading_out[s as usize].push(t);
    }
    SubTpiin {
        index: 0,
        global: (0..n).map(NodeId::from_index).collect(),
        influence_out,
        trading_out,
        influence_in_degree,
        trading_arc_count: trading.len(),
        is_person,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, Role, RoleSet, SourceRegistry, TradingRecord,
    };

    /// Two disjoint conglomerates with a trading arc between them.
    fn two_component_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        let c4 = r.add_company("C4");
        for (p, c) in [(l1, c1), (l1, c2), (l2, c3), (l2, c4)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        // Intra-component trade (suspicious candidate) ...
        r.add_trading(TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 1.0,
        });
        // ... and a cross-component trade (must be dropped).
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c3,
            volume: 2.0,
        });
        r
    }

    #[test]
    fn segmentation_splits_components_and_drops_cross_trades() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        let subs = segment_tpiin(&tpiin);
        assert_eq!(subs.len(), 2);
        let total_nodes: usize = subs.iter().map(SubTpiin::node_count).sum();
        assert_eq!(total_nodes, tpiin.node_count());
        // Only the intra-component trading arc survives.
        let total_trades: usize = subs.iter().map(|s| s.trading_arc_count).sum();
        assert_eq!(total_trades, 1);
        // Influence arcs are all preserved.
        let total_influence: usize = subs.iter().map(SubTpiin::influence_arc_count).sum();
        assert_eq!(total_influence, tpiin.influence_arc_count);
    }

    #[test]
    fn roots_are_the_person_nodes_after_fusion() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        for sub in segment_tpiin(&tpiin) {
            for r in sub.roots() {
                assert!(sub.is_person[r as usize], "root {r} should be a person");
            }
            let person_count = sub.is_person.iter().filter(|&&p| p).count();
            assert_eq!(sub.roots().count(), person_count);
        }
    }

    #[test]
    fn local_indexing_is_consistent() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        for sub in segment_tpiin(&tpiin) {
            for (local, &g) in sub.global.iter().enumerate() {
                // Node colors agree with the global TPIIN.
                assert_eq!(
                    sub.is_person[local],
                    tpiin.color(g) == tpiin_fusion::NodeColor::Person
                );
            }
            // All adjacency targets are in range.
            for adj in sub.influence_out.iter().chain(sub.trading_out.iter()) {
                for &t in adj {
                    assert!((t as usize) < sub.node_count());
                }
            }
        }
    }

    #[test]
    fn whole_tpiin_mines_the_same_groups_as_segmented() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        let whole = whole_tpiin(&tpiin);
        assert_eq!(whole.node_count(), tpiin.node_count());
        assert_eq!(whole.influence_arc_count(), tpiin.influence_arc_count);
        // The whole view keeps cross-component trading arcs too.
        assert_eq!(whole.trading_arc_count, tpiin.trading_arc_count);
        let segmented = crate::detector::detect(&tpiin);
        let unsegmented = crate::detector::Detector::default().detect_segmented(&tpiin, &[whole]);
        assert_eq!(segmented.group_count(), unsegmented.group_count());
        assert_eq!(
            segmented.suspicious_trading_arcs,
            unsegmented.suspicious_trading_arcs
        );
    }

    #[test]
    fn manual_builder_counts_degrees() {
        let sub = subtpiin_from_arcs(3, &[(0, 1), (1, 2)], &[(2, 1)], vec![true, false, false]);
        assert_eq!(sub.influence_arc_count(), 2);
        assert_eq!(sub.trading_arc_count, 1);
        assert_eq!(sub.roots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(sub.out_degree(1), 1);
        assert_eq!(sub.out_degree(2), 1);
    }
}
