//! Algorithm 1, steps 1–6: segmenting a TPIIN into `subTPIIN`s.
//!
//! A trading arc that connects two *different* weakly connected subgraphs
//! of the antecedent network cannot hide a common interest party, so the
//! TPIIN is split into independent mining units: the `i`-th maximal weakly
//! connected antecedent subgraph plus every trading arc between its
//! company nodes (Definition 4).
//!
//! Segmentation reads the TPIIN's frozen CSR lanes ([`Tpiin::csr`])
//! directly — the weak components come off the influence lane, and each
//! shard's adjacency is re-packed into local CSR arrays so the tree DFS
//! of Algorithm 2 walks contiguous slices.

use crate::topology::ShardTopology;
use tpiin_fusion::{NodeColor, Tpiin, INFLUENCE_LANE, TRADING_LANE};
use tpiin_graph::NodeId;

/// One independent mining unit: a weak component of the antecedent
/// network with its internal trading arcs, re-indexed to dense local node
/// ids and packed into per-color CSR arrays for cache-friendly traversal.
#[derive(Clone, Debug)]
pub struct SubTpiin {
    /// Position of this subTPIIN in the segmentation output.
    pub index: usize,
    /// Global TPIIN node for each local node id.
    pub global: Vec<NodeId>,
    /// Influence in-degree per local node (used to pick pattern-tree
    /// roots).
    pub influence_in_degree: Vec<u32>,
    /// Number of trading arcs inside this subTPIIN.
    pub trading_arc_count: usize,
    /// Whether each local node is a Person node (else Company).
    pub is_person: Vec<bool>,
    /// CSR offsets into `influence_targets` (length `node_count + 1`).
    influence_offsets: Vec<u32>,
    /// Influence out-neighbors, grouped by source node.
    influence_targets: Vec<u32>,
    /// CSR offsets into `trading_targets` (length `node_count + 1`).
    trading_offsets: Vec<u32>,
    /// Trading out-neighbors, grouped by source node.
    trading_targets: Vec<u32>,
}

impl SubTpiin {
    /// Packs per-node adjacency lists into a [`SubTpiin`], computing
    /// influence in-degrees and the trading-arc count.  Neighbor order
    /// within each node is preserved.
    pub fn from_adjacency(
        index: usize,
        global: Vec<NodeId>,
        influence_out: &[Vec<u32>],
        trading_out: &[Vec<u32>],
        is_person: Vec<bool>,
    ) -> SubTpiin {
        let n = global.len();
        assert_eq!(influence_out.len(), n);
        assert_eq!(trading_out.len(), n);
        let pack = |adj: &[Vec<u32>]| -> (Vec<u32>, Vec<u32>) {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
            offsets.push(0);
            for list in adj {
                targets.extend_from_slice(list);
                offsets.push(targets.len() as u32);
            }
            (offsets, targets)
        };
        let (influence_offsets, influence_targets) = pack(influence_out);
        let (trading_offsets, trading_targets) = pack(trading_out);
        let mut influence_in_degree = vec![0u32; n];
        for &t in &influence_targets {
            influence_in_degree[t as usize] += 1;
        }
        SubTpiin {
            index,
            global,
            influence_in_degree,
            trading_arc_count: trading_targets.len(),
            is_person,
            influence_offsets,
            influence_targets,
            trading_offsets,
            trading_targets,
        }
    }

    /// Number of local nodes.
    pub fn node_count(&self) -> usize {
        self.global.len()
    }

    /// Influence out-neighbors of local node `v` as a packed slice.
    #[inline]
    pub fn influence(&self, v: u32) -> &[u32] {
        &self.influence_targets[self.influence_offsets[v as usize] as usize
            ..self.influence_offsets[v as usize + 1] as usize]
    }

    /// Trading out-neighbors of local node `v` as a packed slice.
    #[inline]
    pub fn trading(&self, v: u32) -> &[u32] {
        &self.trading_targets[self.trading_offsets[v as usize] as usize
            ..self.trading_offsets[v as usize + 1] as usize]
    }

    /// Number of influence arcs.
    pub fn influence_arc_count(&self) -> usize {
        self.influence_targets.len()
    }

    /// Pattern-tree roots: local nodes with zero influence in-degree.
    ///
    /// In a fused TPIIN these are exactly the person nodes (every company
    /// has a legal-person arc); the influence-indegree criterion keeps the
    /// detector complete on hand-built networks where a company may lack
    /// influence in-arcs while still receiving trading arcs.
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.global.len() as u32).filter(move |&v| self.influence_in_degree[v as usize] == 0)
    }

    /// Total out-degree (influence + trading) of a local node.
    pub fn out_degree(&self, v: u32) -> usize {
        self.influence(v).len() + self.trading(v).len()
    }
}

impl ShardTopology for SubTpiin {
    fn shard_index(&self) -> usize {
        self.index
    }

    fn node_count(&self) -> usize {
        self.global.len()
    }

    fn global(&self, v: u32) -> NodeId {
        self.global[v as usize]
    }

    fn influence(&self, v: u32) -> &[u32] {
        SubTpiin::influence(self, v)
    }

    fn trading(&self, v: u32) -> &[u32] {
        SubTpiin::trading(self, v)
    }

    fn influence_in_degree(&self, v: u32) -> u32 {
        self.influence_in_degree[v as usize]
    }

    fn trading_arc_count(&self) -> usize {
        self.trading_arc_count
    }

    fn is_person(&self, v: u32) -> bool {
        self.is_person[v as usize]
    }

    fn influence_arc_count(&self) -> usize {
        self.influence_targets.len()
    }
}

/// Segments `tpiin` into its subTPIINs (Algorithm 1 steps 1–6), reading
/// the frozen CSR lanes.
///
/// Components are ordered deterministically by their smallest global node
/// id.  Isolated antecedent nodes (degree zero) still form singleton
/// subTPIINs; they can never host a group and the detector skips them
/// cheaply.
pub fn segment_tpiin(tpiin: &Tpiin) -> Vec<SubTpiin> {
    let _span = tpiin_obs::Span::at("detect/segment");
    let csr = tpiin.csr();
    let n = csr.node_count();
    // Weak components of the *antecedent* network only: the influence lane.
    let (labels, count) = csr.weak_components(INFLUENCE_LANE);

    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in 0..n {
        members[labels[v] as usize].push(NodeId::from_index(v));
    }

    // Map global node -> local id within its component.
    let mut local_of = vec![u32::MAX; n];
    for comp in &members {
        for (local, &g) in comp.iter().enumerate() {
            local_of[g.index()] = local as u32;
        }
    }

    members
        .iter()
        .enumerate()
        .map(|(i, comp)| {
            let m = comp.len();
            let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); m];
            let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); m];
            for (local, &g) in comp.iter().enumerate() {
                let gv = g.index() as u32;
                // Influence arcs never leave a weak antecedent component.
                for &t in csr.out(INFLUENCE_LANE, gv) {
                    influence_out[local].push(local_of[t as usize]);
                }
                // Trading arcs crossing components are unsuspicious: skip.
                for &t in csr.out(TRADING_LANE, gv) {
                    if labels[t as usize] == labels[g.index()] {
                        trading_out[local].push(local_of[t as usize]);
                    }
                }
            }
            SubTpiin::from_adjacency(
                i,
                comp.clone(),
                &influence_out,
                &trading_out,
                comp.iter()
                    .map(|&g| tpiin.color(g) == NodeColor::Person)
                    .collect(),
            )
        })
        .collect()
}

/// Re-segments a *single* antecedent component whose membership is
/// already known — the delta engine's shard-splice path, which tracks
/// per-node component assignments across batches and rebuilds only the
/// shards a batch touched instead of re-running [`segment_tpiin`] over
/// the whole network.
///
/// `members` must list exactly the component's nodes in ascending
/// global id order (the order [`segment_tpiin`] emits).  Trading arcs
/// whose target falls outside `members` cross components and are
/// skipped, just as global segmentation skips them.  The result is the
/// [`SubTpiin`] that `segment_tpiin(tpiin)[index]` would produce.
pub fn segment_one(tpiin: &Tpiin, index: usize, members: Vec<NodeId>) -> SubTpiin {
    let csr = tpiin.csr();
    let mut local_of = vec![u32::MAX; csr.node_count()];
    for (local, &g) in members.iter().enumerate() {
        local_of[g.index()] = local as u32;
    }
    let m = members.len();
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (local, &g) in members.iter().enumerate() {
        let gv = g.index() as u32;
        for &t in csr.out(INFLUENCE_LANE, gv) {
            debug_assert_ne!(
                local_of[t as usize],
                u32::MAX,
                "influence arcs never leave a weak antecedent component"
            );
            influence_out[local].push(local_of[t as usize]);
        }
        for &t in csr.out(TRADING_LANE, gv) {
            if local_of[t as usize] != u32::MAX {
                trading_out[local].push(local_of[t as usize]);
            }
        }
    }
    let is_person = members
        .iter()
        .map(|&g| tpiin.color(g) == NodeColor::Person)
        .collect();
    SubTpiin::from_adjacency(index, members, &influence_out, &trading_out, is_person)
}

/// Builds one [`SubTpiin`] covering the *whole* TPIIN, skipping the
/// divide-and-conquer segmentation of Algorithm 1.  Mining it produces the
/// same groups (trails never cross antecedent components), but without
/// the per-component independence — this is the "no segmentation" arm of
/// the ablation benchmark.
pub fn whole_tpiin(tpiin: &Tpiin) -> SubTpiin {
    let csr = tpiin.csr();
    let n = csr.node_count();
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        influence_out[v as usize].extend_from_slice(csr.out(INFLUENCE_LANE, v));
        trading_out[v as usize].extend_from_slice(csr.out(TRADING_LANE, v));
    }
    SubTpiin::from_adjacency(
        0,
        tpiin.graph.node_ids().collect(),
        &influence_out,
        &trading_out,
        tpiin
            .graph
            .nodes()
            .map(|(_, node)| node.color() == NodeColor::Person)
            .collect(),
    )
}

/// Builds a single [`SubTpiin`] directly from explicit arc lists — a
/// convenience for unit tests and the worked examples, bypassing fusion.
///
/// `n` local nodes; `influence`/`trading` are `(source, target)` pairs in
/// local ids; `is_person[v]` tags node colors.
pub fn subtpiin_from_arcs(
    n: usize,
    influence: &[(u32, u32)],
    trading: &[(u32, u32)],
    is_person: Vec<bool>,
) -> SubTpiin {
    assert_eq!(is_person.len(), n);
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(s, t) in influence {
        influence_out[s as usize].push(t);
    }
    for &(s, t) in trading {
        trading_out[s as usize].push(t);
    }
    SubTpiin::from_adjacency(
        0,
        (0..n).map(NodeId::from_index).collect(),
        &influence_out,
        &trading_out,
        is_person,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, Role, RoleSet, SourceRegistry, TradingRecord,
    };

    /// Two disjoint conglomerates with a trading arc between them.
    fn two_component_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        let c4 = r.add_company("C4");
        for (p, c) in [(l1, c1), (l1, c2), (l2, c3), (l2, c4)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        // Intra-component trade (suspicious candidate) ...
        r.add_trading(TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 1.0,
        });
        // ... and a cross-component trade (must be dropped).
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c3,
            volume: 2.0,
        });
        r
    }

    #[test]
    fn segmentation_splits_components_and_drops_cross_trades() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        let subs = segment_tpiin(&tpiin);
        assert_eq!(subs.len(), 2);
        let total_nodes: usize = subs.iter().map(SubTpiin::node_count).sum();
        assert_eq!(total_nodes, tpiin.node_count());
        // Only the intra-component trading arc survives.
        let total_trades: usize = subs.iter().map(|s| s.trading_arc_count).sum();
        assert_eq!(total_trades, 1);
        // Influence arcs are all preserved.
        let total_influence: usize = subs.iter().map(SubTpiin::influence_arc_count).sum();
        assert_eq!(total_influence, tpiin.influence_arc_count);
    }

    #[test]
    fn roots_are_the_person_nodes_after_fusion() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        for sub in segment_tpiin(&tpiin) {
            for r in sub.roots() {
                assert!(sub.is_person[r as usize], "root {r} should be a person");
            }
            let person_count = sub.is_person.iter().filter(|&&p| p).count();
            assert_eq!(sub.roots().count(), person_count);
            // The trait view agrees with the inherent iterator.
            assert_eq!(sub.zero_indegree_roots(), sub.roots().collect::<Vec<u32>>());
        }
    }

    #[test]
    fn local_indexing_is_consistent() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        for sub in segment_tpiin(&tpiin) {
            for (local, &g) in sub.global.iter().enumerate() {
                // Node colors agree with the global TPIIN.
                assert_eq!(
                    sub.is_person[local],
                    tpiin.color(g) == tpiin_fusion::NodeColor::Person
                );
            }
            // All adjacency targets are in range.
            for v in 0..sub.node_count() as u32 {
                for &t in sub.influence(v).iter().chain(sub.trading(v)) {
                    assert!((t as usize) < sub.node_count());
                }
            }
        }
    }

    #[test]
    fn whole_tpiin_mines_the_same_groups_as_segmented() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        let whole = whole_tpiin(&tpiin);
        assert_eq!(whole.node_count(), tpiin.node_count());
        assert_eq!(whole.influence_arc_count(), tpiin.influence_arc_count);
        // The whole view keeps cross-component trading arcs too.
        assert_eq!(whole.trading_arc_count, tpiin.trading_arc_count);
        let segmented = crate::detector::detect(&tpiin);
        let unsegmented = crate::detector::Detector::default().detect_segmented(&tpiin, &[whole]);
        assert_eq!(segmented.group_count(), unsegmented.group_count());
        assert_eq!(
            segmented.suspicious_trading_arcs,
            unsegmented.suspicious_trading_arcs
        );
    }

    #[test]
    fn segment_one_matches_global_segmentation_per_component() {
        let sources = [
            tpiin_fusion::fuse(&two_component_registry()).unwrap().0,
            tpiin_fusion::fuse(&tpiin_datagen::generate_province(
                &tpiin_datagen::ProvinceConfig::scaled(0.05),
            ))
            .unwrap()
            .0,
        ];
        for tpiin in &sources {
            for sub in segment_tpiin(tpiin) {
                let rebuilt = segment_one(tpiin, sub.index, sub.global.clone());
                assert_eq!(rebuilt.index, sub.index);
                assert_eq!(rebuilt.global, sub.global);
                assert_eq!(rebuilt.is_person, sub.is_person);
                assert_eq!(rebuilt.influence_in_degree, sub.influence_in_degree);
                assert_eq!(rebuilt.trading_arc_count, sub.trading_arc_count);
                for v in 0..sub.node_count() as u32 {
                    assert_eq!(rebuilt.influence(v), sub.influence(v));
                    assert_eq!(rebuilt.trading(v), sub.trading(v));
                }
            }
        }
    }

    #[test]
    fn manual_builder_counts_degrees() {
        let sub = subtpiin_from_arcs(3, &[(0, 1), (1, 2)], &[(2, 1)], vec![true, false, false]);
        assert_eq!(sub.influence_arc_count(), 2);
        assert_eq!(sub.trading_arc_count, 1);
        assert_eq!(sub.roots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(sub.out_degree(1), 1);
        assert_eq!(sub.out_degree(2), 1);
        assert_eq!(sub.influence(0), &[1]);
        assert_eq!(sub.trading(2), &[1]);
        assert!(sub.influence(2).is_empty());
    }

    #[test]
    fn csr_segmentation_matches_the_nested_reference() {
        let (tpiin, _) = tpiin_fusion::fuse(&two_component_registry()).unwrap();
        let csr_subs = segment_tpiin(&tpiin);
        let nested_subs = crate::nested::segment_tpiin_nested(&tpiin);
        assert_eq!(csr_subs.len(), nested_subs.len());
        for (a, b) in csr_subs.iter().zip(&nested_subs) {
            assert_eq!(a.global, b.global);
            assert_eq!(a.trading_arc_count, ShardTopology::trading_arc_count(b));
            for v in 0..a.node_count() as u32 {
                assert_eq!(a.influence(v), ShardTopology::influence(b, v));
                assert_eq!(a.trading(v), ShardTopology::trading(b, v));
            }
        }
    }
}
