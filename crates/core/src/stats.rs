//! Aggregate statistics over a detection result — the "integration
//! analysis" of the Section 6 monitoring system: which taxpayers recur
//! across suspicious groups, and how large the mined groups are.

use crate::result::DetectionResult;
use std::collections::BTreeMap;
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;

/// How often one TPIIN node participates in suspicious activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Involvement {
    /// Groups this node is a member of.
    pub groups: usize,
    /// Groups where the node is the common antecedent (the controlling
    /// party).
    pub as_antecedent: usize,
    /// Suspicious trading arcs where the node sells.
    pub as_seller: usize,
    /// Suspicious trading arcs where the node buys.
    pub as_buyer: usize,
}

/// Per-node involvement over all collected groups, keyed by TPIIN node.
///
/// Requires a result collected with `collect_groups: true`; an empty
/// result yields an empty map.
pub fn node_involvement(result: &DetectionResult) -> BTreeMap<NodeId, Involvement> {
    let mut map: BTreeMap<NodeId, Involvement> = BTreeMap::new();
    for group in &result.groups {
        for member in group.members() {
            map.entry(member).or_default().groups += 1;
        }
        map.entry(group.antecedent).or_default().as_antecedent += 1;
    }
    for &(seller, buyer) in &result.suspicious_trading_arcs {
        map.entry(seller).or_default().as_seller += 1;
        map.entry(buyer).or_default().as_buyer += 1;
    }
    map
}

/// The most-involved nodes, ranked by group membership (ties broken by
/// node id for determinism), labelled through the TPIIN.
pub fn top_involved<'t>(
    result: &DetectionResult,
    tpiin: &'t Tpiin,
    limit: usize,
) -> Vec<(&'t str, Involvement)> {
    let mut entries: Vec<(NodeId, Involvement)> = node_involvement(result).into_iter().collect();
    entries.sort_by(|a, b| b.1.groups.cmp(&a.1.groups).then(a.0.cmp(&b.0)));
    entries
        .into_iter()
        .take(limit)
        .map(|(node, inv)| (tpiin.label(node), inv))
        .collect()
}

/// Histogram of group sizes (distinct member counts) over all groups.
pub fn group_size_histogram(result: &DetectionResult) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for group in &result.groups {
        *hist.entry(group.members().len()).or_insert(0) += 1;
    }
    hist
}

/// Groups per suspicious trading arc — the multiplicity Table 1 implies
/// (groups ÷ suspicious arcs ≈ 14 in the paper).  Zero when no arcs.
pub fn groups_per_suspicious_arc(result: &DetectionResult) -> f64 {
    if result.suspicious_trading_arcs.is_empty() {
        return 0.0;
    }
    result.group_count() as f64 / result.suspicious_trading_arcs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;

    fn fig7() -> (Tpiin, DetectionResult) {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let result = detect(&tpiin);
        (tpiin, result)
    }

    #[test]
    fn involvement_counts_the_worked_example() {
        let (tpiin, result) = fig7();
        let map = node_involvement(&result);
        let by_label = |label: &str| {
            let node = tpiin
                .graph
                .nodes()
                .find(|(_, n)| n.label() == label)
                .map(|(id, _)| id)
                .unwrap();
            map.get(&node).cloned().unwrap_or_default()
        };
        // C5 appears in two of the three groups (L1-group and B1-group),
        // sells in one suspicious arc (C5->C6) and buys in one (C3->C5).
        let c5 = by_label("C5");
        assert_eq!(c5.groups, 2);
        assert_eq!(c5.as_seller, 1);
        assert_eq!(c5.as_buyer, 1);
        // The L1 syndicate leads exactly one group.
        let l1 = by_label("L6+LB");
        assert_eq!(l1.as_antecedent, 1);
        assert_eq!(l1.groups, 1);
        // C4 is in no group at all.
        assert_eq!(by_label("C4").groups, 0);
    }

    #[test]
    fn top_involved_ranks_by_membership() {
        let (tpiin, result) = fig7();
        let top = top_involved(&result, &tpiin, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, "C5", "C5 is in two groups: {top:?}");
        assert!(top.iter().all(|(_, inv)| inv.groups >= 1));
    }

    #[test]
    fn histogram_of_the_worked_example() {
        let (_, result) = fig7();
        let hist = group_size_histogram(&result);
        // Two 3-member groups and one 5-member group.
        assert_eq!(hist.get(&3), Some(&2));
        assert_eq!(hist.get(&5), Some(&1));
        assert_eq!(hist.values().sum::<usize>(), 3);
    }

    #[test]
    fn multiplicity_metric() {
        let (_, result) = fig7();
        assert!((groups_per_suspicious_arc(&result) - 1.0).abs() < 1e-12);
        assert_eq!(groups_per_suspicious_arc(&DetectionResult::default()), 0.0);
    }
}
