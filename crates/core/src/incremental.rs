//! Incremental detection over a stream of trading records.
//!
//! The paper motivates the system with the national feed: "the number of
//! annual tax-related business records is up to 1 billion, the daily peak
//! of these records is up to ten million".  The antecedent network
//! (ownership, directorships, kinship) changes slowly, but trading
//! records arrive continuously.  [`IncrementalDetector`] owns a fused
//! TPIIN and absorbs new trading records batch by batch, reporting only
//! the *new* suspicious groups each batch creates — each new arc is
//! answered by the ancestor-cone query of [`crate::groups_behind_arc`]
//! instead of re-running Algorithm 1 over the whole network.

use crate::query::groups_behind_arc;
use crate::result::SuspiciousGroup;
use std::collections::BTreeSet;
use tpiin_fusion::{ArcColor, Tpiin, TpiinArc};
use tpiin_graph::NodeId;
use tpiin_model::TradingRecord;

/// Streaming wrapper over a fused TPIIN.
///
/// The antecedent network is fixed at construction; feed trading records
/// with [`IncrementalDetector::ingest`].  Trades whose endpoints fused
/// into the same company syndicate are flagged immediately (suspicious by
/// construction, §4.3); duplicate arcs are ignored.
pub struct IncrementalDetector {
    tpiin: Tpiin,
    seen_arcs: BTreeSet<(NodeId, NodeId)>,
    suspicious_arcs: BTreeSet<(NodeId, NodeId)>,
    stats: IngestStats,
}

/// Lifetime totals of one [`IncrementalDetector`], accumulated across
/// every [`IncrementalDetector::ingest`] call.  Mirrored into tpiin-obs
/// gauges (`ingest.records`, `ingest.duplicates`, `ingest.intra_syndicate`,
/// `ingest.arcs_added`, `ingest.groups`) after each batch so `/ingest`
/// handlers and streaming examples can report progress without holding
/// the detector lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Trading records received (including duplicates).
    pub records_ingested: u64,
    /// Records skipped because the arc was already present.
    pub duplicates: u64,
    /// Records that fell inside a contracted company syndicate.
    pub intra_syndicate: u64,
    /// New trading arcs added to the network.
    pub arcs_added: u64,
    /// Suspicious groups discovered so far.
    pub groups_found: u64,
}

impl IngestStats {
    /// Publishes the totals as gauges on `registry`.  The detector calls
    /// this with [`tpiin_obs::global`] after every batch.
    pub fn publish_to(&self, registry: &tpiin_obs::MetricsRegistry) {
        registry
            .gauge("ingest.records")
            .set(self.records_ingested as f64);
        registry
            .gauge("ingest.duplicates")
            .set(self.duplicates as f64);
        registry
            .gauge("ingest.intra_syndicate")
            .set(self.intra_syndicate as f64);
        registry
            .gauge("ingest.arcs_added")
            .set(self.arcs_added as f64);
        registry
            .gauge("ingest.groups")
            .set(self.groups_found as f64);
    }
}

/// Outcome of one ingested batch.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// Newly discovered suspicious groups (proof chains included).
    pub new_groups: Vec<SuspiciousGroup>,
    /// Trading arcs of this batch flagged suspicious (including
    /// intra-syndicate trades).
    pub new_suspicious_arcs: Vec<(NodeId, NodeId)>,
    /// Records skipped because the arc was already present.
    pub duplicates: usize,
    /// Records that fell inside a company syndicate (counted suspicious).
    pub intra_syndicate: usize,
}

impl IncrementalDetector {
    /// Starts streaming over `tpiin`.  Existing trading arcs are treated
    /// as already seen but not yet classified; call `ingest` with new
    /// records only, or build the TPIIN without trading records.
    pub fn new(tpiin: Tpiin) -> Self {
        let seen_arcs = tpiin
            .graph
            .edges()
            .filter(|e| e.weight.color == ArcColor::Trading)
            .map(|e| (e.source, e.target))
            .collect();
        IncrementalDetector {
            tpiin,
            seen_arcs,
            suspicious_arcs: BTreeSet::new(),
            stats: IngestStats::default(),
        }
    }

    /// The network in its current state.
    pub fn tpiin(&self) -> &Tpiin {
        &self.tpiin
    }

    /// Total suspicious arcs flagged so far.
    pub fn suspicious_arcs(&self) -> &BTreeSet<(NodeId, NodeId)> {
        &self.suspicious_arcs
    }

    /// Total groups discovered so far.
    pub fn groups_found(&self) -> usize {
        self.stats.groups_found as usize
    }

    /// Lifetime ingestion totals across all batches.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Absorbs one batch of trading records; returns what was new.
    pub fn ingest(&mut self, batch: &[TradingRecord]) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        self.stats.records_ingested += batch.len() as u64;
        for record in batch {
            let seller = self.tpiin.company_node[record.seller.index()];
            let buyer = self.tpiin.company_node[record.buyer.index()];
            if seller == buyer {
                // Intra-syndicate trade: suspicious by construction.
                outcome.intra_syndicate += 1;
                self.stats.intra_syndicate += 1;
                self.tpiin
                    .intra_syndicate_trades
                    .push(tpiin_fusion::IntraSyndicateTrade {
                        seller: record.seller,
                        buyer: record.buyer,
                        syndicate: seller,
                        volume: record.volume,
                    });
                if self.suspicious_arcs.insert((seller, buyer)) {
                    outcome.new_suspicious_arcs.push((seller, buyer));
                }
                continue;
            }
            if !self.seen_arcs.insert((seller, buyer)) {
                outcome.duplicates += 1;
                self.stats.duplicates += 1;
                continue;
            }
            self.stats.arcs_added += 1;
            self.tpiin.graph.add_edge(
                seller,
                buyer,
                TpiinArc {
                    color: ArcColor::Trading,
                    weight: record.volume,
                },
            );
            // Streamed arcs have no source-registry sequence; keep the
            // per-edge provenance table aligned with the edge ids.
            self.tpiin.arc_sources.push(u32::MAX);
            self.tpiin.trading_arc_count += 1;
            let groups = groups_behind_arc(&self.tpiin, seller, buyer);
            if !groups.is_empty() {
                if self.suspicious_arcs.insert((seller, buyer)) {
                    outcome.new_suspicious_arcs.push((seller, buyer));
                }
                self.stats.groups_found += groups.len() as u64;
                outcome.new_groups.extend(groups);
            }
        }
        // Per-record queries above run on the mutable `DiGraph`; one
        // refreeze per batch keeps the CSR kernel consistent for callers
        // that run full detection on [`IncrementalDetector::tpiin`].
        self.tpiin.refreeze();
        self.stats.publish_to(tpiin_obs::global());
        outcome
    }

    /// Label helper for reporting.
    pub fn label(&self, node: NodeId) -> &str {
        self.tpiin.graph.node(node).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;
    use tpiin_datagen::{add_random_trading, generate_province, ProvinceConfig};
    use tpiin_model::CompanyId;

    /// Streaming the whole trading network arc by arc must converge to
    /// exactly the batch result.
    #[test]
    fn streaming_converges_to_batch_detection() {
        let config = ProvinceConfig {
            seed: 3,
            ..ProvinceConfig::scaled(0.12)
        };
        let base = generate_province(&config);

        // Batch run: everything at once.
        let mut with_trades = base.clone();
        add_random_trading(&mut with_trades, 0.01, 33);
        let (batch_tpiin, _) = tpiin_fusion::fuse(&with_trades).unwrap();
        let batch = detect(&batch_tpiin);

        // Streaming run: fuse without trades, then feed them in chunks.
        let (empty_tpiin, _) = tpiin_fusion::fuse(&base).unwrap();
        let mut streaming = IncrementalDetector::new(empty_tpiin);
        let trades: Vec<_> = with_trades.tradings().to_vec();
        let mut all_groups = Vec::new();
        for chunk in trades.chunks(97) {
            let outcome = streaming.ingest(chunk);
            all_groups.extend(outcome.new_groups);
        }

        assert_eq!(
            streaming.suspicious_arcs().len(),
            batch.suspicious_trading_arcs.len()
        );
        assert_eq!(streaming.suspicious_arcs(), &batch.suspicious_trading_arcs);
        assert_eq!(all_groups.len(), batch.group_count());
        let mut a: Vec<_> = all_groups.iter().map(|g| g.key()).collect();
        let mut b: Vec<_> = batch.groups.iter().map(|g| g.key()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicates_are_skipped() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let mut det = IncrementalDetector::new(tpiin);
        // C3 -> C5 already exists in the fused network (CompanyId 2 -> 4).
        let outcome = det.ingest(&[TradingRecord {
            seller: CompanyId(2),
            buyer: CompanyId(4),
            volume: 1.0,
        }]);
        assert_eq!(outcome.duplicates, 1);
        assert!(outcome.new_groups.is_empty());
    }

    #[test]
    fn intra_syndicate_trades_flagged_immediately() {
        let mut r = tpiin_model::SourceRegistry::new();
        let l = r.add_person("L", tpiin_model::RoleSet::of(&[tpiin_model::Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        for c in [c1, c2] {
            r.add_influence(tpiin_model::InfluenceRecord {
                person: l,
                company: c,
                kind: tpiin_model::InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(tpiin_model::InvestmentRecord {
            investor: c1,
            investee: c2,
            share: 0.5,
        });
        r.add_investment(tpiin_model::InvestmentRecord {
            investor: c2,
            investee: c1,
            share: 0.5,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let mut det = IncrementalDetector::new(tpiin);
        let outcome = det.ingest(&[TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 9.0,
        }]);
        assert_eq!(outcome.intra_syndicate, 1);
        assert_eq!(outcome.new_suspicious_arcs.len(), 1);
        assert_eq!(det.tpiin().intra_syndicate_trades.len(), 1);
    }

    #[test]
    fn counters_accumulate_across_batches() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::case2_registry()).unwrap();
        // Case 2's fused network already includes the C5 -> C6 trade; use
        // a fresh detector over the same antecedent without trades.
        let mut r = tpiin_datagen::case2_registry();
        r.clear_trading();
        let (clean, _) = tpiin_fusion::fuse(&r).unwrap();
        drop(tpiin);
        let mut det = IncrementalDetector::new(clean);
        let o1 = det.ingest(&[TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(2),
            volume: 1.0,
        }]);
        assert_eq!(o1.new_groups.len(), 1);
        assert_eq!(det.groups_found(), 1);
        let o2 = det.ingest(&[TradingRecord {
            seller: CompanyId(2),
            buyer: CompanyId(1),
            volume: 1.0,
        }]);
        assert_eq!(o2.new_groups.len(), 1, "reverse direction is a new arc");
        assert_eq!(det.groups_found(), 2);
    }

    #[test]
    fn stats_accumulate_and_publish_gauges() {
        let mut r = tpiin_datagen::case2_registry();
        r.clear_trading();
        let (clean, _) = tpiin_fusion::fuse(&r).unwrap();
        let mut det = IncrementalDetector::new(clean);
        let batch = [
            TradingRecord {
                seller: CompanyId(1),
                buyer: CompanyId(2),
                volume: 1.0,
            },
            TradingRecord {
                seller: CompanyId(1),
                buyer: CompanyId(2),
                volume: 2.0,
            },
        ];
        det.ingest(&batch);
        let stats = det.stats();
        assert_eq!(stats.records_ingested, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.arcs_added, 1);
        assert_eq!(stats.groups_found, 1);
        assert_eq!(stats.intra_syndicate, 0);
        // Published as gauges for /ingest handlers and streaming feeds
        // (a local registry here; ingest targets the global one, which
        // parallel tests also write).
        let registry = tpiin_obs::MetricsRegistry::new();
        stats.publish_to(&registry);
        assert_eq!(registry.gauge("ingest.records").get(), 2.0);
        assert_eq!(registry.gauge("ingest.arcs_added").get(), 1.0);
    }
}
