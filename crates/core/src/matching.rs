//! Pattern matching: from a patterns tree to suspicious groups.
//!
//! Section 4.3: "the task of detecting the suspicious groups of potential
//! tax evaders is to find two matched component patterns, both with the
//! same antecedent node `A1`, where one pattern is of type (b) ending in
//! `Cj` and the other is of type (a) or (b) with one of the elements
//! `Ai ≡ Cj`".  Operating on the patterns tree makes the match exact and
//! duplicate-free: a type-(b) leaf pairs with every *distinct influence
//! trail* from the root to its trading target (each such trail is one
//! tree node), rather than with every materialized pattern sharing that
//! prefix.
//!
//! The special case — a circle inside one `InOT-FTAOP` walk — is emitted
//! when the trading target already lies on the walk's own prefix; the
//! full walk is then not a simple trail, so the circle is the only group
//! extracted from it.

use crate::topology::ShardTopology;
use crate::tree::PatternsTree;

/// A borrowed view of one discovered group in subTPIIN-local node ids.
/// Buffers are reused across emissions; clone what you keep.
#[derive(Debug)]
pub struct LocalGroupView<'a> {
    /// Influence prefix `A1 … Am` of the trading trail.
    pub prefix: &'a [u32],
    /// The trading arc's source `Am` (last element of `prefix`).
    pub trade_source: u32,
    /// The trading arc's target `Cj` (the group's end node).
    pub target: u32,
    /// The matched pure influence trail `A1 … Cj`; for circles, the
    /// single-element trail `[Cj]`.
    pub plain: &'a [u32],
    /// Whether this is the circle special case.
    pub circle: bool,
    /// Definition 3 classification: trails disjoint except endpoints.
    pub simple: bool,
}

/// Matches all component patterns of one root's `tree`, invoking `emit`
/// once per suspicious group.
///
/// Circle groups are deduplicated within the tree (the same circle is
/// reachable through every prefix leading into it); cross-root circle
/// deduplication is the detector's job, since identical circles appear
/// under every root that reaches them.
pub fn match_root<S: ShardTopology + ?Sized>(
    sub: &S,
    tree: &PatternsTree,
    mut emit: impl FnMut(LocalGroupView<'_>),
) {
    let _ = sub; // adjacency already baked into the tree; kept for symmetry
    let _span = tpiin_obs::Span::at("detect/match_patterns");
    let mut prefix: Vec<u32> = Vec::new();
    let mut plain: Vec<u32> = Vec::new();
    let mut seen_circles: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();

    for leaf in &tree.b_leaves {
        prefix.clear();
        prefix.extend(tree.trail(leaf.tree_node));
        let target = leaf.target;
        let trade_source = *prefix.last().expect("trail always contains the root");

        if let Some(pos) = prefix.iter().position(|&v| v == target) {
            // Circle: the trading arc re-enters the walk's prefix.  The
            // circle is `prefix[pos..] + arc`; the full walk is not a
            // simple trail, so no pairings are emitted for this leaf.
            // Membership is probed on the borrowed slice — the dedup set
            // only allocates for each *distinct* circle, never for the
            // (common) repeated rediscoveries.
            let circle = &prefix[pos..];
            if !seen_circles.contains(circle) {
                plain.clear();
                plain.push(target);
                emit(LocalGroupView {
                    prefix: circle,
                    trade_source,
                    target,
                    plain: &plain,
                    circle: true,
                    // The circle's influence path and the single trading
                    // arc share only their endpoints.
                    simple: true,
                });
                seen_circles.insert(circle.to_vec());
            }
            continue;
        }

        // Regular matching: every distinct influence trail root -> target.
        let Some(endpoints) = tree.endpoints.get(&target) else {
            continue;
        };
        for &u in endpoints {
            plain.clear();
            plain.extend(tree.trail(u));
            // Interiors: prefix[1..] vs plain[1..len-1].
            let p_int = &prefix[1..];
            let q_int = &plain[1..plain.len().saturating_sub(1)];
            let disjoint = p_int.iter().all(|v| !q_int.contains(v));
            emit(LocalGroupView {
                prefix: &prefix,
                trade_source,
                target,
                plain: &plain,
                circle: false,
                simple: disjoint,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtpiin::{subtpiin_from_arcs, SubTpiin};
    use crate::tree::PatternsTree;

    type Found = (Vec<u32>, u32, Vec<u32>, bool, bool);

    fn collect(sub: &SubTpiin, root: u32) -> Vec<Found> {
        let tree = PatternsTree::build(sub, root, usize::MAX).unwrap();
        let mut out = Vec::new();
        match_root(sub, &tree, |g| {
            out.push((
                g.prefix.to_vec(),
                g.target,
                g.plain.to_vec(),
                g.circle,
                g.simple,
            ));
        });
        out.sort();
        out
    }

    #[test]
    fn simple_triangle_like_case2() {
        // Fig. 3(a): C4(0) invests in C5(1) and C6(2); C5 trades with C6.
        let sub = subtpiin_from_arcs(3, &[(0, 1), (0, 2)], &[(1, 2)], vec![false, false, false]);
        let groups = collect(&sub, 0);
        assert_eq!(groups.len(), 1);
        let (prefix, target, plain, circle, simple) = &groups[0];
        assert_eq!(prefix, &vec![0, 1]);
        assert_eq!(*target, 2);
        assert_eq!(plain, &vec![0, 2]);
        assert!(!circle);
        assert!(simple);
    }

    #[test]
    fn case1_pentagon_with_merged_kin() {
        // Fig. 1(c): L'(0) -> C1(1) -> C3(2), L' -> C2(3), trading C3 -> C2.
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 1), (1, 2), (0, 3)],
            &[(2, 3)],
            vec![true, false, false, false],
        );
        let groups = collect(&sub, 0);
        assert_eq!(groups.len(), 1);
        let (prefix, target, plain, _, simple) = &groups[0];
        assert_eq!(prefix, &vec![0, 1, 2]);
        assert_eq!(*target, 3);
        assert_eq!(plain, &vec![0, 3]);
        assert!(simple);
    }

    #[test]
    fn two_trading_arcs_to_same_end_do_not_pair_with_each_other() {
        // 0 -> 1, 0 -> 2, trading 1 -> 3 and 2 -> 3; no influence trail to
        // 3 exists, so no group (a pair of type-(b) patterns ending at the
        // same node would put two trading arcs in the union).
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 1), (0, 2)],
            &[(1, 3), (2, 3)],
            vec![true, false, false, false],
        );
        assert!(collect(&sub, 0).is_empty());
    }

    #[test]
    fn complex_group_shares_an_interior_node() {
        // 0 -> 1 -> 2 (trades with 4), 1 -> 4: both trails pass through 1.
        let sub = subtpiin_from_arcs(
            5,
            &[(0, 1), (1, 2), (1, 4)],
            &[(2, 4)],
            vec![true, false, false, false, false],
        );
        let groups = collect(&sub, 0);
        assert_eq!(groups.len(), 1);
        let (_, _, plain, _, simple) = &groups[0];
        assert_eq!(plain, &vec![0, 1, 4]);
        assert!(!simple, "shared interior node 1 makes the group complex");
    }

    #[test]
    fn circle_is_emitted_once_and_simple() {
        // The paper's example: walk {A1, C4, C5, -> C4}.
        // A1(0) -> C4(1) -> C5(2), trading C5 -> C4.
        let sub = subtpiin_from_arcs(3, &[(0, 1), (1, 2)], &[(2, 1)], vec![true, false, false]);
        let groups = collect(&sub, 0);
        assert_eq!(groups.len(), 1);
        let (prefix, target, plain, circle, simple) = &groups[0];
        assert!(circle);
        assert!(simple);
        assert_eq!(prefix, &vec![1, 2], "circle nodes C4, C5");
        assert_eq!(*target, 1);
        assert_eq!(plain, &vec![1]);
    }

    #[test]
    fn circle_not_duplicated_across_two_prefixes() {
        // Two ways into the circle: 0 -> 1 and 0 -> 3 -> 1, with circle
        // 1 -> 2 -(trade)-> 1.
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 1), (0, 3), (3, 1), (1, 2)],
            &[(2, 1)],
            vec![true, false, false, false],
        );
        let groups = collect(&sub, 0);
        let circles: Vec<_> = groups.iter().filter(|g| g.3).collect();
        assert_eq!(circles.len(), 1, "one distinct circle despite two prefixes");
    }

    #[test]
    fn multiple_plain_trails_multiply_groups() {
        // Two influence trails 0->..->4 pair with one trading trail.
        // 0 -> 1 (trades 4), 0 -> 2 -> 4, 0 -> 3 -> 4.
        let sub = subtpiin_from_arcs(
            5,
            &[(0, 1), (0, 2), (2, 4), (0, 3), (3, 4)],
            &[(1, 4)],
            vec![true, false, false, false, false],
        );
        let groups = collect(&sub, 0);
        assert_eq!(groups.len(), 2);
        assert!(
            groups.iter().all(|g| g.4),
            "both node-disjoint, hence simple"
        );
    }

    #[test]
    fn trading_arc_without_any_influence_trail_yields_nothing() {
        let sub = subtpiin_from_arcs(3, &[(0, 1)], &[(1, 2)], vec![true, false, false]);
        // No influence trail 0 -> 2 exists.
        assert!(collect(&sub, 0).is_empty());
    }
}
