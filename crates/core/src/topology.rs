//! The shard-topology abstraction the mining kernel iterates.
//!
//! Algorithm 2 and the pattern matcher only need slice-shaped neighbor
//! lists: influence out-arcs, trading out-arcs, influence in-degrees and
//! node colors, all in dense local ids.  Abstracting those behind a trait
//! lets the same tree DFS run over the packed CSR [`crate::SubTpiin`]
//! (production) and the nested-`Vec` [`crate::NestedSubTpiin`] (the
//! pre-CSR reference arm kept for differential tests and the adjacency
//! ablation benchmark).

use tpiin_graph::NodeId;

/// Slice-shaped view of one mining shard (a subTPIIN) in dense local ids.
pub trait ShardTopology {
    /// Position of this shard in the segmentation output.
    fn shard_index(&self) -> usize;

    /// Number of local nodes.
    fn node_count(&self) -> usize;

    /// Global TPIIN node behind local node `v`.
    fn global(&self, v: u32) -> NodeId;

    /// Influence out-neighbors of `v`, in arc insertion order.
    fn influence(&self, v: u32) -> &[u32];

    /// Trading out-neighbors of `v`, in arc insertion order.
    fn trading(&self, v: u32) -> &[u32];

    /// Influence in-degree of `v` (zero ⇒ pattern-tree root).
    fn influence_in_degree(&self, v: u32) -> u32;

    /// Number of trading arcs inside the shard.
    fn trading_arc_count(&self) -> usize;

    /// Whether local node `v` is a Person node (else Company).
    fn is_person(&self, v: u32) -> bool;

    /// Number of influence arcs inside the shard.
    fn influence_arc_count(&self) -> usize {
        (0..self.node_count() as u32)
            .map(|v| self.influence(v).len())
            .sum()
    }

    /// Total out-degree (influence + trading) of `v`.
    fn out_degree(&self, v: u32) -> usize {
        self.influence(v).len() + self.trading(v).len()
    }

    /// Pattern-tree roots: local nodes with zero influence in-degree.
    fn zero_indegree_roots(&self) -> Vec<u32> {
        (0..self.node_count() as u32)
            .filter(|&v| self.influence_in_degree(v) == 0)
            .collect()
    }

    /// Scheduler cost estimate for mining this shard: node count plus
    /// trading-arc count.  Both terms bound the per-root work (tree size
    /// scales with reachable nodes, matches with type-(b) leaves).
    fn estimated_cost(&self) -> u64 {
        self.node_count() as u64 + self.trading_arc_count() as u64
    }
}
