//! The global traversing baseline of Section 5.1.
//!
//! "For gaining the baseline results, we implemented a global traversing
//! algorithm that finds any component patterns behind a trading arc.  The
//! idea of this global traversing algorithm is to find all trails between
//! any two different nodes and then check whether any two of these trails
//! form a suspicious group."
//!
//! This implementation deliberately shares **no** machinery with the
//! proposed detector: it neither segments the TPIIN nor builds patterns
//! trees.  It enumerates every influence trail from every node of the
//! whole network and pairs trails exhaustively, which makes it a slow but
//! independent oracle — the Table 1 accuracy columns come from comparing
//! its output with the detector's.

use crate::result::{GroupKind, SuspiciousGroup};
use std::collections::{BTreeSet, HashMap};
use tpiin_fusion::{ArcColor, Tpiin};
use tpiin_graph::NodeId;

/// Output of the baseline run.
#[derive(Clone, Debug, Default)]
pub struct BaselineResult {
    /// Groups anchored at influence-indegree-zero antecedents plus all
    /// circle groups — the set comparable with [`crate::detect`].
    pub groups: Vec<SuspiciousGroup>,
    /// Number of suspicious groups over *any* common start node (the
    /// unrestricted Definition 2 count; every such group is contained in
    /// an anchored one, which is the completeness claim of Appendix A).
    pub all_start_group_count: usize,
    /// Distinct suspicious trading arcs.
    pub suspicious_trading_arcs: BTreeSet<(NodeId, NodeId)>,
    /// Trail enumeration hit `max_trails`; results incomplete.
    pub overflowed: bool,
}

fn interiors_disjoint(prefix: &[u32], plain: &[u32]) -> bool {
    let p_int = &prefix[1..];
    let q_int = &plain[1..plain.len().saturating_sub(1)];
    p_int.iter().all(|v| !q_int.contains(v))
}

/// Enumerates all simple influence trails starting at `s`, grouped by
/// their endpoint (the trivial trail `[s]` included).  Returns `None` if
/// more than `max_trails` trails exist.
fn trails_from(
    influence_out: &[Vec<u32>],
    s: u32,
    max_trails: usize,
) -> Option<HashMap<u32, Vec<Vec<u32>>>> {
    let mut by_end: HashMap<u32, Vec<Vec<u32>>> = HashMap::new();
    let mut count = 0usize;
    // Explicit DFS keeping the current path; frames are (node, next child).
    let mut path: Vec<u32> = vec![s];
    let mut frames: Vec<usize> = vec![0];
    loop {
        let v = *path.last().expect("path never empty");
        let cursor = *frames.last().expect("frames mirror path");
        if cursor == 0 {
            // First visit of this trail: record it.
            count += 1;
            if count > max_trails {
                return None;
            }
            by_end.entry(v).or_default().push(path.clone());
        }
        match influence_out[v as usize].get(cursor) {
            Some(&w) => {
                *frames.last_mut().unwrap() += 1;
                // The antecedent network is a DAG, so `w` cannot already
                // be on the path; debug-checked.
                debug_assert!(!path.contains(&w), "trail revisited a node: not a DAG");
                path.push(w);
                frames.push(0);
            }
            None => {
                path.pop();
                frames.pop();
                if frames.is_empty() {
                    break;
                }
            }
        }
    }
    Some(by_end)
}

/// Runs the global traversal baseline over `tpiin`.
///
/// `max_trails` caps the number of trails enumerated from any single
/// start node (the baseline's cost grows combinatorially; the flag keeps
/// accuracy experiments bounded).
pub fn detect_baseline(tpiin: &Tpiin, max_trails: usize) -> BaselineResult {
    let n = tpiin.graph.node_count();
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut influence_in_degree = vec![0u32; n];
    let mut trading: Vec<(u32, u32)> = Vec::new();
    for e in tpiin.graph.edges() {
        let (s, t) = (e.source.index() as u32, e.target.index() as u32);
        match e.weight.color {
            ArcColor::Influence => {
                influence_out[s as usize].push(t);
                influence_in_degree[t as usize] += 1;
            }
            ArcColor::Trading => trading.push((s, t)),
        }
    }
    // Trading arcs grouped by source for the pairing pass.
    let mut trading_by_source: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(x, c) in &trading {
        trading_by_source[x as usize].push(c);
    }

    let mut result = BaselineResult::default();
    for t in &tpiin.intra_syndicate_trades {
        result.suspicious_trading_arcs.insert((
            tpiin.company_node[t.seller.index()],
            tpiin.company_node[t.buyer.index()],
        ));
    }
    let g = |v: u32| NodeId::from_index(v as usize);

    for s in 0..n as u32 {
        let Some(by_end) = trails_from(&influence_out, s, max_trails) else {
            result.overflowed = true;
            continue;
        };
        let anchored = influence_in_degree[s as usize] == 0;
        for (&x, t1s) in &by_end {
            for &c in &trading_by_source[x as usize] {
                if c == s {
                    // Circles: each trail s -> x closed by the trading arc
                    // x -> s is one circle group, regardless of anchoring.
                    for t1 in t1s {
                        if t1.len() < 2 {
                            // The trivial trail [s] with a self-arc cannot
                            // occur (self trading arcs are rejected), and a
                            // length-1 "circle" needs the arc x -> s with
                            // x == s.
                            continue;
                        }
                        result.suspicious_trading_arcs.insert((g(x), g(c)));
                        result.all_start_group_count += 1;
                        result.groups.push(SuspiciousGroup {
                            subtpiin: 0,
                            kind: GroupKind::Circle,
                            antecedent: g(s),
                            end: g(s),
                            trading_arc: (g(x), g(c)),
                            trail_with_trade: t1.iter().map(|&v| g(v)).collect(),
                            trail_plain: vec![g(s)],
                            simple: true,
                        });
                    }
                    continue;
                }
                let Some(t2s) = by_end.get(&c) else { continue };
                for t1 in t1s {
                    if t1.contains(&c) {
                        // pi1 would visit the end node twice: not a simple
                        // trail.
                        continue;
                    }
                    for t2 in t2s {
                        result.all_start_group_count += 1;
                        if !anchored {
                            continue;
                        }
                        result.suspicious_trading_arcs.insert((g(x), g(c)));
                        result.groups.push(SuspiciousGroup {
                            subtpiin: 0,
                            kind: GroupKind::Matched,
                            antecedent: g(s),
                            end: g(c),
                            trading_arc: (g(x), g(c)),
                            trail_with_trade: t1.iter().map(|&v| g(v)).collect(),
                            trail_plain: t2.iter().map(|&v| g(v)).collect(),
                            simple: interiors_disjoint(t1, t2),
                        });
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InvestmentRecord, Role, RoleSet, SourceRegistry,
        TradingRecord,
    };

    fn small_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        for (p, c) in [(l1, c1), (l1, c2), (l2, c3)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c3,
            share: 0.7,
        });
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c1,
            volume: 1.0,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c2,
            volume: 1.0,
        });
        r
    }

    type GroupKey = ((NodeId, NodeId), Vec<NodeId>, Vec<NodeId>);

    fn sorted_keys(groups: &[SuspiciousGroup]) -> Vec<GroupKey> {
        let mut keys: Vec<_> = groups.iter().map(|g| g.key()).collect();
        keys.sort();
        keys
    }

    #[test]
    fn baseline_agrees_with_detector_on_small_network() {
        let (tpiin, _) = tpiin_fusion::fuse(&small_registry()).unwrap();
        let proposed = detect(&tpiin);
        let base = detect_baseline(&tpiin, 1_000_000);
        assert!(!base.overflowed);
        assert_eq!(sorted_keys(&base.groups), sorted_keys(&proposed.groups));
        assert_eq!(
            base.suspicious_trading_arcs,
            proposed.suspicious_trading_arcs
        );
    }

    #[test]
    fn all_start_count_is_at_least_anchored_count() {
        let (tpiin, _) = tpiin_fusion::fuse(&small_registry()).unwrap();
        let base = detect_baseline(&tpiin, 1_000_000);
        assert!(base.all_start_group_count >= base.groups.len());
    }

    #[test]
    fn circle_found_by_both() {
        // L -> C1 -> C2 (investment), trading C2 -> C1: a circle.
        let mut r = SourceRegistry::new();
        let l = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        for c in [c1, c2] {
            r.add_influence(InfluenceRecord {
                person: l,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c2,
            share: 0.9,
        });
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c1,
            volume: 1.0,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let proposed = detect(&tpiin);
        let base = detect_baseline(&tpiin, 1_000_000);
        assert_eq!(sorted_keys(&base.groups), sorted_keys(&proposed.groups));
        let circles = base
            .groups
            .iter()
            .filter(|g| g.kind == GroupKind::Circle)
            .count();
        assert_eq!(circles, 1);
        // L -> C2 + (C2 -(trade)-> C1 joined with L -> C1) is also a
        // matched group.
        assert!(base.groups.len() >= 2);
    }

    #[test]
    fn overflow_flag_trips_on_tiny_budget() {
        let (tpiin, _) = tpiin_fusion::fuse(&small_registry()).unwrap();
        let base = detect_baseline(&tpiin, 1);
        assert!(base.overflowed);
    }
}
