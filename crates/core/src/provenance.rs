//! Group provenance — the complete evidence chain behind one mined
//! suspicious group.
//!
//! The paper pitches pattern-based mining as *explainable*: an
//! investigator handed a group must be able to trace every claim back to
//! the source records.  A [`Provenance`] record makes that chain
//! explicit, assembled from data the detector already holds (so the cost
//! is a handful of adjacency probes per group, not a re-run):
//!
//! * **pattern rule** — whether the group came from Rule 1 (two matched
//!   component patterns sharing an antecedent, the regular case of
//!   Section 4.3) or Rule 2 (the circle special case whose trading arc
//!   re-enters its own influence prefix);
//! * **arc lineage** — every influence arc of both trails plus the
//!   boundary trading arc, each resolved to its winning source-record
//!   sequence via [`Tpiin::arc_sources`] (fusion's first-wins dedup);
//! * **contraction lineage** — which source persons/companies each
//!   member node merges (kinship union–find, investment SCC
//!   contraction);
//! * **score breakdown** — the per-arc terms behind
//!   [`crate::score_group`], so the ranking is auditable term by term.

use crate::result::{GroupKind, SuspiciousGroup};
use crate::score::arc_weight;
use tpiin_fusion::{ArcColor, NodeColor, Tpiin, TpiinNode};
use tpiin_graph::NodeId;

/// Which matching rule of Section 4.3 produced a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchedRule {
    /// Rule 1: two component patterns with the same antecedent and end
    /// node, exactly one of them carrying the trading arc (the regular
    /// `InOT`/`InOT-FTAOP` match of Algorithm 2).
    Rule1TrailPair,
    /// Rule 2: a circle — the trading arc of an `InOT-FTAOP` walk
    /// re-enters the walk's own influence prefix (the special case
    /// closing Section 4.3).
    Rule2Circle,
}

impl MatchedRule {
    /// Short human-readable description of the rule.
    pub fn describe(self) -> &'static str {
        match self {
            MatchedRule::Rule1TrailPair => {
                "Rule 1: matched component-pattern pair with common antecedent"
            }
            MatchedRule::Rule2Circle => "Rule 2: trading arc re-enters its own influence prefix",
        }
    }
}

/// One TPIIN arc referenced by a group, resolved back to the source feed.
#[derive(Clone, Debug, PartialEq)]
pub struct ArcProvenance {
    /// Tail node of the arc.
    pub source: NodeId,
    /// Head node of the arc.
    pub target: NodeId,
    /// Display label of the tail node.
    pub source_label: String,
    /// Display label of the head node.
    pub target_label: String,
    /// Arc color (influence or trading).
    pub color: ArcColor,
    /// Arc weight (share / volume; `1.0` for positional influence).
    pub weight: f64,
    /// The winning source-record sequence from fusion's first-wins
    /// dedup: influence arcs index the combined influence+investment
    /// feed, trading arcs the trading feed.  `None` when no source was
    /// recorded (pre-v2 snapshots, streamed ingest) or when the
    /// contraction dropped the physical arc (intra-syndicate trades
    /// referenced by circle groups).
    pub source_record: Option<u32>,
}

/// Contraction lineage of one group member node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberLineage {
    /// The TPIIN node.
    pub node: NodeId,
    /// Display label.
    pub label: String,
    /// Node color.
    pub color: NodeColor,
    /// Source person ids merged into the node (kinship contraction);
    /// empty for company nodes.
    pub person_members: Vec<u32>,
    /// Source company ids merged into the node (investment-SCC
    /// contraction); empty for person nodes.
    pub company_members: Vec<u32>,
}

impl MemberLineage {
    /// Whether the node merges more than one source entity.
    pub fn is_syndicate(&self) -> bool {
        self.person_members.len() + self.company_members.len() > 1
    }
}

/// Per-term breakdown of the weighted score, mirroring
/// [`crate::score_group`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreBreakdown {
    /// Influence-arc weights in trail order (trail-with-trade pairs
    /// first, then plain-trail pairs); their product is the chain
    /// strength.
    pub influence_weights: Vec<f64>,
    /// Product of `influence_weights`.
    pub chain_strength: f64,
    /// Volume of the suspicious trading arc.
    pub trade_volume: f64,
    /// `chain_strength * trade_volume` — the ranking key.
    pub score: f64,
}

/// The full provenance record of one suspicious group.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// Which matching rule produced the group.
    pub rule: MatchedRule,
    /// The influence arcs of both trails, in trail order
    /// (trail-with-trade first, then the plain trail).
    pub influence_arcs: Vec<ArcProvenance>,
    /// The boundary trading arc — the interest-affiliated transaction.
    pub trading_arc: ArcProvenance,
    /// Contraction lineage of every member node, ordered by node id.
    pub members: Vec<MemberLineage>,
    /// The auditable score terms.
    pub score: ScoreBreakdown,
}

impl Provenance {
    /// Assembles the provenance of `group` against the TPIIN it was
    /// mined from.  Deterministic: depends only on the group and the
    /// network, so parallel and serial detection produce identical
    /// records.
    ///
    /// # Panics
    /// Panics if the group's trails reference influence arcs absent from
    /// `tpiin` (the group came from a different network) — the same
    /// contract as [`crate::score_group`].
    pub fn assemble(tpiin: &Tpiin, group: &SuspiciousGroup) -> Provenance {
        let rule = match group.kind {
            GroupKind::Matched => MatchedRule::Rule1TrailPair,
            GroupKind::Circle => MatchedRule::Rule2Circle,
        };

        let mut influence_arcs = Vec::new();
        let mut influence_weights = Vec::new();
        let mut chain_strength = 1.0;
        for trail in [&group.trail_with_trade, &group.trail_plain] {
            for pair in trail.windows(2) {
                let arc = resolve_arc(tpiin, pair[0], pair[1], ArcColor::Influence)
                    .expect("group trail arc missing from TPIIN");
                chain_strength *= arc.weight;
                influence_weights.push(arc.weight);
                influence_arcs.push(arc);
            }
        }

        let trading_arc = resolve_arc(
            tpiin,
            group.trading_arc.0,
            group.trading_arc.1,
            ArcColor::Trading,
        )
        .or_else(|| {
            // Intra-syndicate trades reference arcs the SCC contraction
            // dropped; recover the endpoints' shared syndicate node and
            // the recorded volume instead.
            tpiin
                .intra_syndicate_trades
                .iter()
                .find(|t| {
                    tpiin.company_node[t.seller.index()] == group.trading_arc.0
                        && tpiin.company_node[t.buyer.index()] == group.trading_arc.1
                })
                .map(|t| ArcProvenance {
                    source: group.trading_arc.0,
                    target: group.trading_arc.1,
                    source_label: tpiin.label(group.trading_arc.0).to_string(),
                    target_label: tpiin.label(group.trading_arc.1).to_string(),
                    color: ArcColor::Trading,
                    weight: t.volume,
                    source_record: None,
                })
        })
        .expect("group trading arc missing from TPIIN");

        let members = group
            .members()
            .into_iter()
            .map(|node| {
                let (person_members, company_members) = match tpiin.graph.node(node) {
                    TpiinNode::Person { members, .. } => {
                        (members.iter().map(|p| p.0).collect(), Vec::new())
                    }
                    TpiinNode::Company { members, .. } => {
                        (Vec::new(), members.iter().map(|c| c.0).collect())
                    }
                };
                MemberLineage {
                    node,
                    label: tpiin.label(node).to_string(),
                    color: tpiin.color(node),
                    person_members,
                    company_members,
                }
            })
            .collect();

        let trade_volume = trading_arc.weight;
        Provenance {
            rule,
            influence_arcs,
            trading_arc,
            members,
            score: ScoreBreakdown {
                influence_weights,
                chain_strength,
                trade_volume,
                score: chain_strength * trade_volume,
            },
        }
    }

    /// The distinct contributing source-record sequences, split by feed:
    /// `(influence_records, trading_records)`, each sorted ascending.
    /// Arcs with no recorded source are omitted.
    pub fn source_records(&self) -> (Vec<u32>, Vec<u32>) {
        let mut influence: Vec<u32> = self
            .influence_arcs
            .iter()
            .filter_map(|a| a.source_record)
            .collect();
        influence.sort_unstable();
        influence.dedup();
        let trading: Vec<u32> = self.trading_arc.source_record.into_iter().collect();
        (influence, trading)
    }

    /// Renders the provenance as the multi-line proof chain the `explain`
    /// CLI subcommand prints.
    pub fn render(&self, group: &SuspiciousGroup, tpiin: &Tpiin) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", group.explain(tpiin));
        let _ = writeln!(out, "  rule: {}", self.rule.describe());
        let _ = writeln!(out, "  arcs:");
        let fmt_record = |r: Option<u32>| match r {
            Some(seq) => format!("record #{seq}"),
            None => "no recorded source".to_string(),
        };
        for arc in &self.influence_arcs {
            let _ = writeln!(
                out,
                "    IN {} -> {}  weight {}  {} (influence feed)",
                arc.source_label,
                arc.target_label,
                arc.weight,
                fmt_record(arc.source_record)
            );
        }
        let _ = writeln!(
            out,
            "    TR {} -> {}  volume {}  {} (trading feed)",
            self.trading_arc.source_label,
            self.trading_arc.target_label,
            self.trading_arc.weight,
            fmt_record(self.trading_arc.source_record)
        );
        let _ = writeln!(out, "  members:");
        for m in &self.members {
            let ids = |v: &[u32]| {
                v.iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let lineage = match m.color {
                NodeColor::Person => format!("person ids [{}]", ids(&m.person_members)),
                NodeColor::Company => format!("company ids [{}]", ids(&m.company_members)),
            };
            let _ = writeln!(
                out,
                "    {} = {}{}",
                m.label,
                lineage,
                if m.is_syndicate() {
                    " (contracted syndicate)"
                } else {
                    ""
                }
            );
        }
        let weights = self
            .score
            .influence_weights
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(" * ");
        let _ = writeln!(
            out,
            "  score: chain {} = {}, volume {} -> {}",
            self.score.chain_strength,
            if weights.is_empty() {
                "1 (empty chain)".to_string()
            } else {
                weights
            },
            self.score.trade_volume,
            self.score.score
        );
        out
    }

    /// Checks that every node and arc this record references exists in
    /// `tpiin`; returns the first violation as a message.  Used by tests
    /// and the `explain` subcommand as a self-audit.
    pub fn audit(&self, tpiin: &Tpiin) -> Result<(), String> {
        let node_ok = |n: NodeId| n.index() < tpiin.node_count();
        for m in &self.members {
            if !node_ok(m.node) {
                return Err(format!("member node {} out of range", m.node));
            }
        }
        for arc in self.influence_arcs.iter().chain([&self.trading_arc]) {
            if !node_ok(arc.source) || !node_ok(arc.target) {
                return Err(format!(
                    "arc {} -> {} endpoint out of range",
                    arc.source, arc.target
                ));
            }
            let physical = arc_weight(tpiin, arc.source, arc.target, arc.color).is_some();
            let intra = arc.color == ArcColor::Trading
                && tpiin
                    .intra_syndicate_trades
                    .iter()
                    .any(|t| tpiin.company_node[t.seller.index()] == arc.source);
            if !physical && !intra {
                return Err(format!(
                    "arc {} -> {} ({:?}) not present in the TPIIN",
                    arc.source_label, arc.target_label, arc.color
                ));
            }
        }
        Ok(())
    }
}

/// Looks up the arc `s -> t` of `color` and resolves its provenance;
/// `None` when no such arc exists.
fn resolve_arc(tpiin: &Tpiin, s: NodeId, t: NodeId, color: ArcColor) -> Option<ArcProvenance> {
    tpiin
        .graph
        .out_edges(s)
        .find(|e| e.target == t && e.weight.color == color)
        .map(|e| {
            let seq = tpiin.arc_sources.get(e.id.index()).copied();
            ArcProvenance {
                source: s,
                target: t,
                source_label: tpiin.label(s).to_string(),
                target_label: tpiin.label(t).to_string(),
                color,
                weight: e.weight.weight,
                source_record: seq.filter(|&q| q != u32::MAX),
            }
        })
}

/// Assembles provenance for every collected group of a detection run, in
/// group order.
pub(crate) fn assemble_all(tpiin: &Tpiin, groups: &[SuspiciousGroup]) -> Vec<Provenance> {
    let _span = tpiin_obs::Span::at("detect/provenance");
    groups
        .iter()
        .map(|g| Provenance::assemble(tpiin, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
        SourceRegistry, TradingRecord,
    };

    fn case1_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        let l3 = r.add_person("L3", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        for (p, c) in [(l1, c1), (l2, c2), (l3, c3)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_interdependence(l1, l2, InterdependenceKind::Kinship);
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c3,
            share: 0.6,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c2,
            volume: 2552.0,
        });
        r
    }

    #[test]
    fn provenance_resolves_arcs_members_and_score() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let result = detect(&tpiin);
        assert_eq!(result.group_count(), 1);
        let p = Provenance::assemble(&tpiin, &result.groups[0]);
        assert_eq!(p.rule, MatchedRule::Rule1TrailPair);
        // Trails: L1+L2 -> C1 -> C3 (with trade) and L1+L2 -> C2.
        assert_eq!(p.influence_arcs.len(), 3);
        // Every arc resolved to a real source record.
        assert!(p.influence_arcs.iter().all(|a| a.source_record.is_some()));
        assert_eq!(p.trading_arc.source_record, Some(0));
        assert!((p.trading_arc.weight - 2552.0).abs() < 1e-12);
        // Score matches score_group term by term.
        let s = crate::score_group(&tpiin, &result.groups[0]);
        assert!((p.score.chain_strength - s.chain_strength).abs() < 1e-12);
        assert!((p.score.trade_volume - s.trade_volume).abs() < 1e-12);
        assert!((p.score.score - s.score).abs() < 1e-12);
        // The kinship syndicate appears with both person members.
        let syndicate = p
            .members
            .iter()
            .find(|m| m.label == "L1+L2")
            .expect("syndicate member present");
        assert_eq!(syndicate.person_members, [0, 1]);
        assert!(syndicate.is_syndicate());
        assert!(p.audit(&tpiin).is_ok());
    }

    #[test]
    fn render_prints_the_full_chain() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let result = detect(&tpiin);
        let p = Provenance::assemble(&tpiin, &result.groups[0]);
        let text = p.render(&result.groups[0], &tpiin);
        assert!(text.contains("Rule 1"), "{text}");
        assert!(text.contains("TR C3 -> C2"), "{text}");
        assert!(text.contains("record #"), "{text}");
        assert!(text.contains("contracted syndicate"), "{text}");
        assert!(text.contains("score: chain"), "{text}");
    }

    #[test]
    fn source_records_split_by_feed() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let result = detect(&tpiin);
        let p = Provenance::assemble(&tpiin, &result.groups[0]);
        let (influence, trading) = p.source_records();
        // Influence records 0 (L1->C1), 1 (L2->C2), and the investment
        // C1->C3 at offset 3 (3 influence records precede it).
        assert_eq!(influence, [0, 1, 3]);
        assert_eq!(trading, [0]);
    }

    #[test]
    fn unknown_sources_become_none() {
        let (mut tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        // Blank out provenance, as a v1 snapshot load would.
        for s in tpiin.arc_sources.iter_mut() {
            *s = u32::MAX;
        }
        let result = detect(&tpiin);
        let p = Provenance::assemble(&tpiin, &result.groups[0]);
        assert!(p.influence_arcs.iter().all(|a| a.source_record.is_none()));
        assert!(p
            .render(&result.groups[0], &tpiin)
            .contains("no recorded source"));
    }

    #[test]
    fn audit_flags_arcs_from_a_different_network() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let result = detect(&tpiin);
        let p = Provenance::assemble(&tpiin, &result.groups[0]);
        // A smaller, unrelated network misses the referenced arcs.
        let mut other = SourceRegistry::new();
        let l = other.add_person("X", RoleSet::of(&[Role::Ceo]));
        let c = other.add_company("Y");
        other.add_influence(InfluenceRecord {
            person: l,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        let (other_tpiin, _) = tpiin_fusion::fuse(&other).unwrap();
        assert!(p.audit(&other_tpiin).is_err());
    }

    #[test]
    fn circle_groups_get_rule2_and_intra_syndicate_fallback() {
        // Two mutually investing companies (an SCC) trading internally:
        // fusion diverts the trade, detection reports it via the
        // intra-syndicate path...  Instead build the explicit circle: a
        // trading arc back into the influence prefix.
        let mut r = SourceRegistry::new();
        let l = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        r.add_influence(InfluenceRecord {
            person: l,
            company: c1,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        r.add_influence(InfluenceRecord {
            person: l2,
            company: c2,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c2,
            share: 0.8,
        });
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c1,
            volume: 9.0,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let result = detect(&tpiin);
        let circle = result
            .groups
            .iter()
            .find(|g| g.kind == GroupKind::Circle)
            .expect("circle group mined");
        let p = Provenance::assemble(&tpiin, circle);
        assert_eq!(p.rule, MatchedRule::Rule2Circle);
        assert!((p.trading_arc.weight - 9.0).abs() < 1e-12);
        assert!(p.audit(&tpiin).is_ok());
    }
}
