//! The patterns tree of Algorithm 2.
//!
//! For one indegree-zero root, the tree enumerates every directed trail of
//! the antecedent network starting at the root (each tree node *is* one
//! trail — Property 1 guarantees trails in a DAG never repeat nodes).
//! Trading arcs never extend a trail: following Rule 2 they terminate it,
//! producing a *type-(b)* leaf (`InOT-FTAOP` walk).  A trail whose tip has
//! no outgoing arcs at all is a *type-(a)* leaf (Rule 1, `InOT-OutOSP`
//! walk).

use crate::topology::ShardTopology;
use std::collections::HashMap;

/// One node of a patterns tree: a trail from the root ending at
/// `local_node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Local subTPIIN node at the tip of the trail.
    pub local_node: u32,
    /// Parent tree node, or `u32::MAX` for the root.
    pub parent: u32,
    /// Trail length in arcs (root has depth 0).
    pub depth: u32,
}

/// A type-(b) leaf: the trail of `tree_node` extended by one trading arc
/// into `target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TradingLeaf {
    /// Tree node holding the influence prefix (the trail `A1 … Am`).
    pub tree_node: u32,
    /// Local node the trading arc points at (`Cj`).
    pub target: u32,
}

/// The patterns tree of one root (Fig. 9), with its type-(a)/(b) leaves
/// and an index of trail endpoints used by the matcher.
#[derive(Clone, Debug)]
pub struct PatternsTree {
    /// The root's local node id.
    pub root: u32,
    /// All tree nodes in DFS discovery order; index 0 is the root.
    pub nodes: Vec<TreeNode>,
    /// Rule-1 leaves (`InOT-OutOSP` walks), in discovery order.
    pub a_leaves: Vec<u32>,
    /// Rule-2 leaves (`InOT-FTAOP` walks), in discovery order.
    pub b_leaves: Vec<TradingLeaf>,
    /// For each local node, the tree nodes whose trail ends there.
    pub endpoints: HashMap<u32, Vec<u32>>,
}

impl PatternsTree {
    /// Builds the patterns tree for `root` by iterative DFS over the
    /// influence arcs of `sub` (Algorithm 2 steps 4–16).
    ///
    /// `max_nodes` bounds the tree size as a safeguard against
    /// pathologically dense antecedent DAGs, whose trail count can grow
    /// exponentially; `None` on overflow.  The paper's province-scale
    /// networks stay far below any practical bound.
    pub fn build<S: ShardTopology + ?Sized>(
        sub: &S,
        root: u32,
        max_nodes: usize,
    ) -> Option<PatternsTree> {
        let mut tree = PatternsTree {
            root,
            nodes: vec![TreeNode {
                local_node: root,
                parent: u32::MAX,
                depth: 0,
            }],
            a_leaves: Vec::new(),
            b_leaves: Vec::new(),
            endpoints: HashMap::new(),
        };
        tree.endpoints.entry(root).or_default().push(0);

        // DFS over tree nodes; each expansion appends children.
        let mut stack: Vec<u32> = vec![0];
        while let Some(t) = stack.pop() {
            let v = tree.nodes[t as usize].local_node;
            let influence = sub.influence(v);
            let trading = sub.trading(v);
            // Rule 2: every outgoing trading arc ends one walk here.
            for &c in trading {
                tree.b_leaves.push(TradingLeaf {
                    tree_node: t,
                    target: c,
                });
            }
            if influence.is_empty() {
                if trading.is_empty() {
                    // Rule 1: outdegree-zero tip.
                    tree.a_leaves.push(t);
                }
                continue;
            }
            let depth = tree.nodes[t as usize].depth + 1;
            for &w in influence {
                if tree.nodes.len() >= max_nodes {
                    return None;
                }
                let child = tree.nodes.len() as u32;
                tree.nodes.push(TreeNode {
                    local_node: w,
                    parent: t,
                    depth,
                });
                tree.endpoints.entry(w).or_default().push(child);
                stack.push(child);
            }
        }
        Some(tree)
    }

    /// The trail of tree node `t`, as local node ids from the root to the
    /// tip.
    pub fn trail(&self, t: u32) -> Vec<u32> {
        let mut nodes = Vec::with_capacity(self.nodes[t as usize].depth as usize + 1);
        let mut cur = t;
        loop {
            let n = self.nodes[cur as usize];
            nodes.push(n.local_node);
            if n.parent == u32::MAX {
                break;
            }
            cur = n.parent;
        }
        nodes.reverse();
        nodes
    }

    /// Whether local node `node` lies on the trail of tree node `t`.
    pub fn trail_contains(&self, t: u32, node: u32) -> bool {
        let mut cur = t;
        loop {
            let n = self.nodes[cur as usize];
            if n.local_node == node {
                return true;
            }
            if n.parent == u32::MAX {
                return false;
            }
            cur = n.parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtpiin::{subtpiin_from_arcs, SubTpiin};

    /// L(0) -> C1(1) -> C2(2); C2 trades with C3(3); C3 is also directly
    /// influenced by L.
    fn diamond_sub() -> SubTpiin {
        subtpiin_from_arcs(
            4,
            &[(0, 1), (1, 2), (0, 3)],
            &[(2, 3)],
            vec![true, false, false, false],
        )
    }

    #[test]
    fn enumerates_all_trails_from_root() {
        let sub = diamond_sub();
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        // Trails: [0], [0,1], [0,1,2], [0,3].
        assert_eq!(tree.nodes.len(), 4);
        let trails: Vec<Vec<u32>> = (0..tree.nodes.len() as u32)
            .map(|t| tree.trail(t))
            .collect();
        assert!(trails.contains(&vec![0]));
        assert!(trails.contains(&vec![0, 1, 2]));
        assert!(trails.contains(&vec![0, 3]));
    }

    #[test]
    fn trading_arcs_terminate_walks_rule2() {
        let sub = diamond_sub();
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        assert_eq!(tree.b_leaves.len(), 1);
        let leaf = tree.b_leaves[0];
        assert_eq!(tree.nodes[leaf.tree_node as usize].local_node, 2);
        assert_eq!(leaf.target, 3);
        // The walk does not continue past the trading arc: no tree node's
        // trail passes "through" node 3 onto further arcs (3 has none here,
        // but the trail [0,1,2,3] must not exist either).
        let trails: Vec<Vec<u32>> = (0..tree.nodes.len() as u32)
            .map(|t| tree.trail(t))
            .collect();
        assert!(!trails.contains(&vec![0, 1, 2, 3]));
    }

    #[test]
    fn outdegree_zero_tips_are_a_leaves_rule1() {
        let sub = diamond_sub();
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        // [0,3] ends at node 3 (no outgoing arcs): type (a).
        assert_eq!(tree.a_leaves.len(), 1);
        assert_eq!(tree.trail(tree.a_leaves[0]), vec![0, 3]);
    }

    #[test]
    fn node_with_both_trading_and_influence_children_branches_both_ways() {
        // 0 -> 1 (influence), 1 -> 2 (influence), 1 trades with 3.
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 1), (1, 2)],
            &[(1, 3)],
            vec![true, false, false, false],
        );
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        // b-leaf at trail [0,1] -> 3, and influence continues to [0,1,2].
        assert_eq!(tree.b_leaves.len(), 1);
        assert_eq!(tree.trail(tree.b_leaves[0].tree_node), vec![0, 1]);
        let trails: Vec<Vec<u32>> = (0..tree.nodes.len() as u32)
            .map(|t| tree.trail(t))
            .collect();
        assert!(trails.contains(&vec![0, 1, 2]));
        // [0,1,2] is an a-leaf (2 has no out-arcs).
        assert_eq!(tree.a_leaves.len(), 1);
    }

    #[test]
    fn endpoints_index_tracks_every_trail_tip() {
        let sub = diamond_sub();
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        assert_eq!(tree.endpoints[&0], vec![0]);
        assert_eq!(tree.endpoints[&3].len(), 1);
        assert_eq!(tree.trail(tree.endpoints[&3][0]), vec![0, 3]);
    }

    #[test]
    fn trail_contains_walks_ancestors() {
        let sub = diamond_sub();
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        let tip = tree.endpoints[&2][0];
        assert!(tree.trail_contains(tip, 0));
        assert!(tree.trail_contains(tip, 1));
        assert!(tree.trail_contains(tip, 2));
        assert!(!tree.trail_contains(tip, 3));
    }

    #[test]
    fn max_nodes_bound_aborts_cleanly() {
        let sub = diamond_sub();
        assert!(PatternsTree::build(&sub, 0, 2).is_none());
        assert!(PatternsTree::build(&sub, 0, 4).is_some());
    }

    #[test]
    fn multiple_distinct_trails_to_one_node_are_kept_separately() {
        // 0->1->3, 0->2->3: two trails end at 3.
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            &[],
            vec![true, false, false, false],
        );
        let tree = PatternsTree::build(&sub, 0, usize::MAX).unwrap();
        assert_eq!(tree.endpoints[&3].len(), 2);
        let mut trails: Vec<Vec<u32>> = tree.endpoints[&3].iter().map(|&t| tree.trail(t)).collect();
        trails.sort();
        assert_eq!(trails, vec![vec![0, 1, 3], vec![0, 2, 3]]);
    }
}
