//! The `GroupMiner` strategy API: every detection workload over a fused
//! TPIIN — the paper's Rule 1/Rule 2 mining, the global-traversal
//! baseline, circular-trading cycle enumeration, time-windowed variants
//! of any of them — implements one trait, so the pipeline facade, the
//! serve daemon, the CLI and the benchmarks drive them generically.
//!
//! * [`Rule12Miner`] — the production detector (Algorithms 1 + 2,
//!   Rules 1/2); bit-identical to calling [`crate::Detector`] directly.
//! * [`BaselineMiner`] — the Section 5.1 global-traversal oracle,
//!   adapted onto the common [`DetectionResult`] shape.
//! * [`CircularTradingMiner`] — trading-color cycle enumeration on the
//!   frozen CSR with tax-rate-differential scoring, after the GST
//!   circular-trading formulation (Mehta et al.): a ring of companies
//!   passing goods in a cycle shifts input-tax credit across rate
//!   brackets, so cycles spanning distinct statutory rates rank first.
//! * [`WindowedMiner`] — a decorator restricting any inner miner to a
//!   sliding transaction-time window over the trading feed.
//!
//! Strategies are named; [`MinerRegistry::resolve`] parses the CLI/serve
//! spec syntax (`rules`, `baseline`, `circular`,
//! `windowed:<inner>@<start>..<end>`) into boxed miners, and
//! [`MinerRegistry`] holds a named set that [`MinerRegistry::mine_all`]
//! runs with per-miner observability spans and counters.

use crate::baseline_impl::detect_baseline;
use crate::detector::{Detector, DetectorConfig};
use crate::provenance::Provenance;
use crate::result::{DetectionResult, GroupKind, SuspiciousGroup};
use tpiin_fusion::{ArcColor, Tpiin, TpiinNode, TRADING_LANE};
use tpiin_graph::{DiGraph, NodeId};
use tpiin_obs::Span;

/// Shared input every [`GroupMiner::mine`] call receives alongside the
/// network: the detector tuning knobs plus optional side tables that
/// individual strategies consume.
#[derive(Clone, Debug, Default)]
pub struct MineContext {
    /// Tuning for the Rule 1/Rule 2 detector (thread count, group
    /// collection, tree bound); other strategies read `collect_groups`
    /// and ignore the rest.
    pub config: DetectorConfig,
    /// Statutory tax rate per source company, indexed by `CompanyId`
    /// ([`CircularTradingMiner`]'s scoring signal).  `None` means every
    /// company trades at [`tpiin_model::DEFAULT_TAX_RATE`], collapsing
    /// all rate differentials to zero.
    pub tax_rates: Option<Vec<f64>>,
}

impl MineContext {
    /// A context wrapping an explicit detector configuration.
    pub fn with_config(config: DetectorConfig) -> MineContext {
        MineContext {
            config,
            ..MineContext::default()
        }
    }
}

/// A detection strategy over a fused TPIIN.
///
/// Implementations must be deterministic: the same network and context
/// yield the same [`DetectionResult`] (including group order) at any
/// thread count — the serve daemon hot-swaps snapshots on the strength
/// of that guarantee, and the differential tests enforce it.
pub trait GroupMiner: Send + Sync {
    /// Stable name used for registry lookup, CLI `--miner` specs, the
    /// `miner=` serve filter and per-miner metrics.
    fn name(&self) -> &str;

    /// Runs the strategy over `tpiin`.
    fn mine(&self, tpiin: &Tpiin, ctx: &MineContext) -> DetectionResult;

    /// Provenance hook: reconstructs the evidence chain behind one of
    /// this strategy's groups, or `None` for strategies whose groups
    /// carry no Rule 1/Rule 2 lineage.
    fn provenance(&self, tpiin: &Tpiin, group: &SuspiciousGroup) -> Option<Provenance> {
        let _ = (tpiin, group);
        None
    }

    /// Whether [`GroupMiner::provenance`] returns `Some` for this
    /// strategy's groups — callers use it to answer "no provenance
    /// hook" errors without mining first.
    fn supports_provenance(&self) -> bool {
        false
    }

    /// Incremental hook: whether streaming mutation batches can extend
    /// this strategy's result through the delta engine's shard-cached
    /// re-mine (`tpiin-delta`) instead of a full re-mine (only the
    /// Rule 1/Rule 2 shard kernel — [`crate::mine_shard`] — supports
    /// that today).
    fn supports_incremental(&self) -> bool {
        false
    }
}

/// Name of the production Rule 1/Rule 2 strategy.
pub const RULES_MINER: &str = "rules";
/// Name of the global-traversal baseline strategy.
pub const BASELINE_MINER: &str = "baseline";
/// Name of the circular-trading strategy.
pub const CIRCULAR_MINER: &str = "circular";

/// Builds a [`DetectionResult`] from an explicit group list: fills the
/// complex/simple counters, the suspicious-arc set (including the
/// intra-syndicate trades that are suspicious by construction, §4.3)
/// and the Table 1 denominators.  Shared by every strategy that does
/// not run through the detector's merge path, so the derived statistics
/// stay consistent across miners.
fn result_from_groups(
    tpiin: &Tpiin,
    groups: Vec<SuspiciousGroup>,
    overflowed: bool,
    collect_groups: bool,
) -> DetectionResult {
    let mut result = DetectionResult {
        total_trading_arcs: tpiin.trading_arc_count + tpiin.intra_syndicate_trades.len(),
        intra_syndicate_trades: tpiin.intra_syndicate_trades.len(),
        overflowed,
        ..DetectionResult::default()
    };
    for t in &tpiin.intra_syndicate_trades {
        result.suspicious_trading_arcs.insert((
            tpiin.company_node[t.seller.index()],
            tpiin.company_node[t.buyer.index()],
        ));
    }
    for g in &groups {
        if g.simple {
            result.simple_group_count += 1;
        } else {
            result.complex_group_count += 1;
        }
        result.suspicious_trading_arcs.insert(g.trading_arc);
    }
    if collect_groups {
        result.groups = groups;
    }
    result
}

/// The paper's Rule 1/Rule 2 detector (Algorithms 1 + 2) behind the
/// strategy trait.  [`GroupMiner::mine`] is exactly
/// `Detector::new(ctx.config).detect(tpiin)` — the differential tests
/// hold it bit-identical to the pre-trait entry point.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rule12Miner;

impl GroupMiner for Rule12Miner {
    fn name(&self) -> &str {
        RULES_MINER
    }

    fn mine(&self, tpiin: &Tpiin, ctx: &MineContext) -> DetectionResult {
        Detector::new(ctx.config).detect(tpiin)
    }

    fn provenance(&self, tpiin: &Tpiin, group: &SuspiciousGroup) -> Option<Provenance> {
        Some(Provenance::assemble(tpiin, group))
    }

    fn supports_provenance(&self) -> bool {
        true
    }

    fn supports_incremental(&self) -> bool {
        true
    }
}

/// The Section 5.1 global-traversal baseline behind the strategy trait.
/// Groups are the anchored set comparable with [`Rule12Miner`], sorted
/// by their canonical key for determinism.
#[derive(Clone, Copy, Debug)]
pub struct BaselineMiner {
    /// Cap on trails enumerated from any single start node (the
    /// baseline's cost grows combinatorially); exceeding it sets
    /// [`DetectionResult::overflowed`].
    pub max_trails: usize,
}

impl Default for BaselineMiner {
    fn default() -> Self {
        BaselineMiner {
            max_trails: 1_000_000,
        }
    }
}

impl GroupMiner for BaselineMiner {
    fn name(&self) -> &str {
        BASELINE_MINER
    }

    fn mine(&self, tpiin: &Tpiin, ctx: &MineContext) -> DetectionResult {
        let base = detect_baseline(tpiin, self.max_trails);
        let mut groups = base.groups;
        groups.sort_by_key(|g| g.key());
        result_from_groups(tpiin, groups, base.overflowed, ctx.config.collect_groups)
    }
}

/// Circular-trading detection after the GST formulation: enumerate the
/// simple directed cycles of the trading lane on the frozen CSR and
/// rank them by the tax-rate differential accumulated around the ring.
///
/// Each cycle `v0 -> v1 -> … -> vk -> v0` becomes one
/// [`GroupKind::Circle`] group whose `trail_with_trade` lists the cycle
/// nodes; every arc of the cycle is flagged suspicious.  Cycles are
/// enumerated canonically from their minimum node id (each directed
/// cycle is reported exactly once) and sorted by descending
/// [`CircularTradingMiner::score`], ties broken by the canonical key.
#[derive(Clone, Copy, Debug)]
pub struct CircularTradingMiner {
    /// Longest cycle reported, in nodes (the GST fraud patterns are
    /// short rings; long cycles explode combinatorially).
    pub max_cycle_len: usize,
    /// Total cycle budget; exceeding it sets
    /// [`DetectionResult::overflowed`] and stops enumeration.
    pub max_cycles: usize,
    /// Cycles scoring strictly below this differential are dropped.
    /// The default `0.0` keeps every cycle — without per-company rates
    /// every differential is zero, and detection must not silently
    /// depend on optional rate data.
    pub min_differential: f64,
}

impl Default for CircularTradingMiner {
    fn default() -> Self {
        CircularTradingMiner {
            max_cycle_len: 6,
            max_cycles: 100_000,
            min_differential: 0.0,
        }
    }
}

impl CircularTradingMiner {
    /// The tax-rate differential accumulated around a cycle group: the
    /// sum of `|rate(u) - rate(v)|` over every arc of the ring,
    /// including the closing arc.  Syndicate nodes use the mean rate of
    /// their member companies; person nodes and companies without a
    /// recorded rate use [`tpiin_model::DEFAULT_TAX_RATE`].
    pub fn score(&self, tpiin: &Tpiin, ctx: &MineContext, group: &SuspiciousGroup) -> f64 {
        let cycle = &group.trail_with_trade;
        if cycle.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..cycle.len() {
            let u = node_tax_rate(tpiin, ctx, cycle[i]);
            let v = node_tax_rate(tpiin, ctx, cycle[(i + 1) % cycle.len()]);
            total += (u - v).abs();
        }
        total
    }
}

/// Mean statutory rate of a TPIIN node's member companies (see
/// [`CircularTradingMiner::score`]).
fn node_tax_rate(tpiin: &Tpiin, ctx: &MineContext, node: NodeId) -> f64 {
    let default = tpiin_model::DEFAULT_TAX_RATE;
    let TpiinNode::Company { members, .. } = tpiin.graph.node(node) else {
        return default;
    };
    let Some(rates) = &ctx.tax_rates else {
        return default;
    };
    if members.is_empty() {
        return default;
    }
    let sum: f64 = members
        .iter()
        .map(|c| rates.get(c.index()).copied().unwrap_or(default))
        .sum();
    sum / members.len() as f64
}

impl GroupMiner for CircularTradingMiner {
    fn name(&self) -> &str {
        CIRCULAR_MINER
    }

    fn mine(&self, tpiin: &Tpiin, ctx: &MineContext) -> DetectionResult {
        let csr = tpiin.csr();
        let n = tpiin.node_count();
        let mut groups: Vec<SuspiciousGroup> = Vec::new();
        let mut overflowed = false;
        let mut on_path = vec![false; n];
        let g = |v: u32| NodeId::from_index(v as usize);

        // Canonical enumeration: every cycle is discovered exactly once,
        // from its minimum node id, walking only through larger ids.
        'starts: for s in 0..n as u32 {
            if csr.out(TRADING_LANE, s).is_empty() {
                continue;
            }
            let mut path: Vec<u32> = vec![s];
            let mut frames: Vec<usize> = vec![0];
            on_path[s as usize] = true;
            loop {
                let v = *path.last().expect("path never empty");
                let cursor = *frames.last().expect("frames mirror path");
                let succ = csr.out(TRADING_LANE, v);
                if cursor < succ.len() {
                    *frames.last_mut().expect("frames mirror path") += 1;
                    let w = succ[cursor];
                    if w == s && path.len() >= 2 {
                        if groups.len() >= self.max_cycles {
                            overflowed = true;
                            break 'starts;
                        }
                        groups.push(SuspiciousGroup {
                            subtpiin: 0,
                            kind: GroupKind::Circle,
                            antecedent: g(s),
                            end: g(s),
                            trading_arc: (g(v), g(s)),
                            trail_with_trade: path.iter().map(|&x| g(x)).collect(),
                            trail_plain: vec![g(s)],
                            simple: true,
                        });
                    } else if w > s && !on_path[w as usize] && path.len() < self.max_cycle_len {
                        on_path[w as usize] = true;
                        path.push(w);
                        frames.push(0);
                    }
                } else {
                    on_path[v as usize] = false;
                    path.pop();
                    frames.pop();
                    if frames.is_empty() {
                        break;
                    }
                }
            }
        }

        groups.retain(|c| self.score(tpiin, ctx, c) >= self.min_differential);
        groups.sort_by(|a, b| {
            let sa = self.score(tpiin, ctx, a);
            let sb = self.score(tpiin, ctx, b);
            sb.total_cmp(&sa).then_with(|| a.key().cmp(&b.key()))
        });

        let mut result = result_from_groups(tpiin, groups, overflowed, ctx.config.collect_groups);
        // Unlike Rule 1/Rule 2 groups (one suspicious trading arc each),
        // every arc of a ring is suspicious.
        for grp in &result.groups {
            let cycle = &grp.trail_with_trade;
            for i in 0..cycle.len() {
                result
                    .suspicious_trading_arcs
                    .insert((cycle[i], cycle[(i + 1) % cycle.len()]));
            }
        }
        result
    }
}

/// A decorator restricting any inner miner to a sliding
/// transaction-time window over the trading feed.
///
/// Transaction time is logical: the trading feed's record sequence
/// number, carried per arc by [`Tpiin::arc_sources`].  The decorator
/// rebuilds the network keeping every influence arc but only the
/// trading arcs whose winning source record falls in `[start, end)`,
/// refreezes the CSR and runs the inner miner on that view.  Arcs with
/// no recorded source (`u32::MAX`: pre-v2 snapshots, streamed ingest)
/// have unknown time and are excluded from every window.
///
/// The windowed view keeps the full node set, so group node ids remain
/// valid in the original network and provenance delegates to the inner
/// miner.
pub struct WindowedMiner {
    inner: Box<dyn GroupMiner>,
    start: u32,
    end: u32,
    name: String,
}

impl WindowedMiner {
    /// Wraps `inner`, restricting it to trading records with feed
    /// sequence numbers in `[start, end)`.
    pub fn new(inner: Box<dyn GroupMiner>, start: u32, end: u32) -> WindowedMiner {
        let name = format!("windowed:{}@{}..{}", inner.name(), start, end);
        WindowedMiner {
            inner,
            start,
            end,
            name,
        }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &dyn GroupMiner {
        self.inner.as_ref()
    }

    /// The half-open feed-sequence window `[start, end)`.
    pub fn window(&self) -> (u32, u32) {
        (self.start, self.end)
    }

    /// The original network restricted to the window: same nodes, all
    /// influence arcs, only in-window trading arcs, CSR refrozen.
    fn windowed_view(&self, tpiin: &Tpiin) -> Tpiin {
        let mut graph: DiGraph<TpiinNode, _> =
            DiGraph::with_capacity(tpiin.graph.node_count(), tpiin.graph.edge_count());
        for (_, node) in tpiin.graph.nodes() {
            graph.add_node(node.clone());
        }
        let mut arc_sources = Vec::new();
        let mut trading_kept = 0usize;
        // `edges()` yields insertion order, so the influence-arcs-first
        // edge layout survives the filter.
        for e in tpiin.graph.edges() {
            let seq = tpiin.arc_sources[e.id.index()];
            let keep = match e.weight.color {
                ArcColor::Influence => true,
                ArcColor::Trading => seq != u32::MAX && seq >= self.start && seq < self.end,
            };
            if keep {
                if e.weight.color == ArcColor::Trading {
                    trading_kept += 1;
                }
                graph.add_edge(e.source, e.target, *e.weight);
                arc_sources.push(seq);
            }
        }
        Tpiin::assemble(
            graph,
            tpiin.person_node.clone(),
            tpiin.company_node.clone(),
            tpiin.influence_arc_count,
            trading_kept,
            tpiin.intra_syndicate_trades.clone(),
            arc_sources,
        )
    }
}

impl GroupMiner for WindowedMiner {
    fn name(&self) -> &str {
        &self.name
    }

    fn mine(&self, tpiin: &Tpiin, ctx: &MineContext) -> DetectionResult {
        let view = self.windowed_view(tpiin);
        self.inner.mine(&view, ctx)
    }

    fn provenance(&self, tpiin: &Tpiin, group: &SuspiciousGroup) -> Option<Provenance> {
        // The windowed view preserves node ids, so the inner strategy's
        // evidence chain assembles against the full network.
        self.inner.provenance(tpiin, group)
    }

    fn supports_provenance(&self) -> bool {
        self.inner.supports_provenance()
    }
}

/// Runs one miner with per-strategy observability: a `mine/<name>` span
/// plus `miner.<name>.groups` / `miner.<name>.suspicious_arcs` counters
/// when profiling is enabled.
pub fn mine_with_obs(miner: &dyn GroupMiner, tpiin: &Tpiin, ctx: &MineContext) -> DetectionResult {
    // The outer `mine` span keeps the phase tree's parent node timed
    // even when only one strategy runs.
    let outer = Span::at("mine");
    let span = Span::at(&format!("mine/{}", miner.name()));
    let result = miner.mine(tpiin, ctx);
    drop(span);
    drop(outer);
    if tpiin_obs::profiling_enabled() {
        let registry = tpiin_obs::global();
        registry
            .counter(&format!("miner.{}.groups", miner.name()))
            .add(result.group_count() as u64);
        registry
            .counter(&format!("miner.{}.suspicious_arcs", miner.name()))
            .add(result.suspicious_trading_arcs.len() as u64);
    }
    result
}

/// A named, ordered set of strategies — the unit Pipeline, the serve
/// daemon and the CLI configure and drive.
#[derive(Default)]
pub struct MinerRegistry {
    miners: Vec<Box<dyn GroupMiner>>,
}

impl MinerRegistry {
    /// An empty registry.
    pub fn new() -> MinerRegistry {
        MinerRegistry::default()
    }

    /// The default serving set: the Rule 1/Rule 2 detector plus the
    /// circular-trading strategy.
    pub fn with_defaults() -> MinerRegistry {
        let mut registry = MinerRegistry::new();
        registry.register(Box::new(Rule12Miner));
        registry.register(Box::new(CircularTradingMiner::default()));
        registry
    }

    /// Builds a registry from spec strings (see
    /// [`MinerRegistry::resolve`]); duplicate names are rejected.
    pub fn from_specs<I, S>(specs: I) -> Result<MinerRegistry, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut registry = MinerRegistry::new();
        for spec in specs {
            let miner = Self::resolve(spec.as_ref())?;
            if registry.get(miner.name()).is_some() {
                return Err(format!("miner `{}` requested twice", miner.name()));
            }
            registry.register(miner);
        }
        Ok(registry)
    }

    /// Parses one miner spec:
    ///
    /// * `rules` — the Rule 1/Rule 2 detector,
    /// * `baseline` — the global-traversal oracle,
    /// * `circular` — trading-cycle enumeration,
    /// * `windowed:<inner>@<start>..<end>` — any of the above restricted
    ///   to trading-feed sequence numbers in `[start, end)`, e.g.
    ///   `windowed:rules@0..100`.
    pub fn resolve(spec: &str) -> Result<Box<dyn GroupMiner>, String> {
        match spec {
            RULES_MINER => Ok(Box::new(Rule12Miner)),
            BASELINE_MINER => Ok(Box::new(BaselineMiner::default())),
            CIRCULAR_MINER => Ok(Box::new(CircularTradingMiner::default())),
            _ => {
                let Some(rest) = spec.strip_prefix("windowed:") else {
                    return Err(format!(
                        "unknown miner `{spec}` (expected `rules`, `baseline`, `circular` \
                         or `windowed:<inner>@<start>..<end>`)"
                    ));
                };
                let Some((inner_spec, range)) = rest.rsplit_once('@') else {
                    return Err(format!(
                        "windowed miner `{spec}` is missing its `@<start>..<end>` window"
                    ));
                };
                let Some((start, end)) = range.split_once("..") else {
                    return Err(format!(
                        "windowed miner `{spec}`: window `{range}` is not `<start>..<end>`"
                    ));
                };
                let parse = |text: &str, what: &str| {
                    text.parse::<u32>()
                        .map_err(|_| format!("windowed miner `{spec}`: bad {what} `{text}`"))
                };
                let (start, end) = (parse(start, "start")?, parse(end, "end")?);
                if start >= end {
                    return Err(format!(
                        "windowed miner `{spec}`: empty window {start}..{end}"
                    ));
                }
                let inner = Self::resolve(inner_spec)?;
                Ok(Box::new(WindowedMiner::new(inner, start, end)))
            }
        }
    }

    /// Adds a strategy; a later registration shadows an earlier one
    /// with the same name.
    pub fn register(&mut self, miner: Box<dyn GroupMiner>) {
        self.miners.push(miner);
    }

    /// Looks a strategy up by name (latest registration wins).
    pub fn get(&self, name: &str) -> Option<&dyn GroupMiner> {
        self.miners
            .iter()
            .rev()
            .find(|m| m.name() == name)
            .map(|m| m.as_ref())
    }

    /// The registered strategies, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn GroupMiner> {
        self.miners.iter().map(|m| m.as_ref())
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.miners.iter().map(|m| m.name().to_string()).collect()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.miners.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.miners.is_empty()
    }

    /// Runs every registered strategy over `tpiin` (in registration
    /// order, with per-miner spans and counters) and returns the named
    /// results.
    pub fn mine_all(&self, tpiin: &Tpiin, ctx: &MineContext) -> Vec<(String, DetectionResult)> {
        self.iter()
            .map(|m| (m.name().to_string(), mine_with_obs(m, tpiin, ctx)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, Role, RoleSet, SourceRegistry, TradingRecord,
    };

    fn ring_registry(len: usize) -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let companies: Vec<_> = (0..len)
            .map(|i| {
                let p = r.add_person(format!("L{i}"), RoleSet::of(&[Role::Ceo]));
                let c = r.add_company(format!("C{i}"));
                r.add_influence(InfluenceRecord {
                    person: p,
                    company: c,
                    kind: InfluenceKind::CeoOf,
                    is_legal_person: true,
                });
                c
            })
            .collect();
        for i in 0..len {
            r.add_trading(TradingRecord {
                seller: companies[i],
                buyer: companies[(i + 1) % len],
                volume: 100.0,
            });
        }
        r
    }

    #[test]
    fn rules_miner_matches_detector() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let direct = Detector::default().detect(&tpiin);
        let mined = Rule12Miner.mine(&tpiin, &MineContext::default());
        assert_eq!(direct.groups, mined.groups);
        assert_eq!(
            direct.suspicious_trading_arcs,
            mined.suspicious_trading_arcs
        );
    }

    #[test]
    fn circular_miner_finds_each_ring_once() {
        let (tpiin, _) = tpiin_fusion::fuse(&ring_registry(4)).unwrap();
        let result = CircularTradingMiner::default().mine(&tpiin, &MineContext::default());
        assert_eq!(result.group_count(), 1, "one directed 4-ring");
        assert_eq!(result.groups[0].trail_with_trade.len(), 4);
        assert_eq!(result.suspicious_trading_arcs.len(), 4, "every ring arc");
    }

    #[test]
    fn circular_miner_respects_cycle_length_cap() {
        let (tpiin, _) = tpiin_fusion::fuse(&ring_registry(5)).unwrap();
        let short = CircularTradingMiner {
            max_cycle_len: 4,
            ..CircularTradingMiner::default()
        };
        assert_eq!(short.mine(&tpiin, &MineContext::default()).group_count(), 0);
    }

    #[test]
    fn circular_scoring_prefers_rate_differentials() {
        let (tpiin, _) = tpiin_fusion::fuse(&ring_registry(3)).unwrap();
        let miner = CircularTradingMiner::default();
        let flat = MineContext::default();
        let spread = MineContext {
            tax_rates: Some(vec![0.05, 0.17, 0.25]),
            ..MineContext::default()
        };
        let result = miner.mine(&tpiin, &flat);
        let cycle = &result.groups[0];
        assert_eq!(miner.score(&tpiin, &flat, cycle), 0.0);
        assert!(miner.score(&tpiin, &spread, cycle) > 0.3);
    }

    #[test]
    fn windowed_view_filters_by_feed_sequence() {
        let (tpiin, _) = tpiin_fusion::fuse(&ring_registry(3)).unwrap();
        // The ring's three trades are feed records 0, 1, 2; a window
        // excluding record 2 breaks the cycle.
        let whole = WindowedMiner::new(Box::new(CircularTradingMiner::default()), 0, 3);
        let partial = WindowedMiner::new(Box::new(CircularTradingMiner::default()), 0, 2);
        let ctx = MineContext::default();
        assert_eq!(whole.mine(&tpiin, &ctx).group_count(), 1);
        assert_eq!(partial.mine(&tpiin, &ctx).group_count(), 0);
    }

    #[test]
    fn resolve_parses_every_spec_shape() {
        assert_eq!(MinerRegistry::resolve("rules").unwrap().name(), "rules");
        assert_eq!(
            MinerRegistry::resolve("baseline").unwrap().name(),
            "baseline"
        );
        assert_eq!(
            MinerRegistry::resolve("circular").unwrap().name(),
            "circular"
        );
        assert_eq!(
            MinerRegistry::resolve("windowed:rules@0..10")
                .unwrap()
                .name(),
            "windowed:rules@0..10"
        );
        for bad in [
            "zebra",
            "windowed:rules",
            "windowed:rules@5",
            "windowed:rules@9..3",
            "windowed:zebra@0..1",
        ] {
            assert!(MinerRegistry::resolve(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn registry_rejects_duplicates_and_resolves_names() {
        let registry = MinerRegistry::from_specs(["rules", "circular"]).unwrap();
        assert_eq!(registry.names(), vec!["rules", "circular"]);
        assert!(registry.get("rules").is_some());
        assert!(registry.get("zebra").is_none());
        assert!(MinerRegistry::from_specs(["rules", "rules"]).is_err());
    }

    #[test]
    fn provenance_hooks_follow_support_flags() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let rules = Rule12Miner;
        let result = rules.mine(&tpiin, &MineContext::default());
        assert!(rules.supports_provenance());
        assert!(rules.provenance(&tpiin, &result.groups[0]).is_some());
        let circular = CircularTradingMiner::default();
        assert!(!circular.supports_provenance());
        assert!(circular.provenance(&tpiin, &result.groups[0]).is_none());
    }
}
