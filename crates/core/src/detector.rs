//! Algorithm 1 orchestration: serial and work-stealing parallel
//! suspicious-group detection over a whole TPIIN.
//!
//! The parallel path shards detection into (subTPIIN, root) work items,
//! sorts them by estimated shard cost (nodes + trading arcs, heaviest
//! first), seeds one deque per worker round-robin, and lets idle workers
//! steal from siblings.  Outcomes carry their original work index and are
//! sorted before merging, so results are bit-identical to the serial run
//! regardless of scheduling.
//!
//! Scheduling is **adaptive**: the requested worker count is capped at
//! the host's available parallelism (oversubscribing a smaller machine
//! only adds queue traffic), the whole run drops to the serial path when
//! the summed cost estimate is below [`DetectorConfig::serial_cutoff`]
//! (thread spawn + steal overhead dwarfs tiny workloads — exactly the
//! regression the first BENCH_detect.json run showed), and items from
//! cheap shards are glued into batches of at least
//! [`DetectorConfig::batch_min_cost`] so one deque transaction covers
//! many tiny roots.

use crate::matching::match_root;
use crate::result::{DetectionResult, GroupKind, SubTpiinStats, SuspiciousGroup};
use crate::subtpiin::segment_tpiin;
use crate::topology::ShardTopology;
use crate::tree::PatternsTree;
use crossbeam::deque::{Steal, Stealer, Worker};
use std::collections::HashSet;
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;
use tpiin_obs::{Span, SpanHandle, ThreadStats};

/// Detection options.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Materialize [`SuspiciousGroup`]s (set `false` for counting-only
    /// sweeps like Table 1, which avoids per-group allocations).
    pub collect_groups: bool,
    /// Worker threads; `0` or `1` runs serially.  Parallelism is over
    /// (subTPIIN, root) work items, the paper's future-work direction.
    pub threads: usize,
    /// Upper bound on patterns-tree nodes per root; trees beyond it mark
    /// the result [`DetectionResult::overflowed`].
    pub max_tree_nodes: usize,
    /// Summed work-item cost estimate (shard nodes + trading arcs, per
    /// root) below which the stealing pool is skipped and mining runs
    /// serially even when `threads > 1`.  Calibrated so fig7-sized
    /// workloads — where the measured parallel slowdown was ~40x — never
    /// pay for thread spawns.
    pub serial_cutoff: usize,
    /// Work items whose shard cost estimate is below this are glued into
    /// batches of at least this combined cost; each batch is one deque
    /// entry, so the cheap tail no longer causes a steal per root.
    pub batch_min_cost: usize,
    /// Cap the worker count at `std::thread::available_parallelism`
    /// (default `true`).  Differential tests disable this to force the
    /// stealing code path regardless of the host.
    pub clamp_to_host: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            collect_groups: true,
            threads: 0,
            max_tree_nodes: 10_000_000,
            serial_cutoff: 4096,
            batch_min_cost: 256,
            clamp_to_host: true,
        }
    }
}

/// The suspicious-group detector (Algorithm 1 + Algorithm 2 + matching).
#[derive(Clone, Copy, Debug, Default)]
pub struct Detector {
    /// Configuration used by [`Detector::detect`].
    pub config: DetectorConfig,
}

/// Output of mining one root of one subTPIIN.
#[derive(Default)]
struct RootOutcome {
    groups: Vec<SuspiciousGroup>,
    complex: usize,
    simple: usize,
    arcs: Vec<(NodeId, NodeId)>,
    /// Circle groups with their local dedup key (circle trail); merged
    /// across roots because every root reaching a circle re-discovers it.
    circles: Vec<(Vec<u32>, SuspiciousGroup)>,
    tree_nodes: usize,
    patterns: usize,
    overflowed: bool,
}

fn mine_root<S: ShardTopology + ?Sized>(
    sub: &S,
    root: u32,
    config: &DetectorConfig,
    parent: Option<&SpanHandle>,
) -> RootOutcome {
    let mut out = RootOutcome::default();
    // Workers record under the orchestrating `detect` span via its
    // explicit handle, so the profile tree reattaches interleaved
    // worker-thread spans; without a handle (recording off, or callers
    // outside the detector entry points) fall back to the absolute path.
    let build_span = match parent {
        Some(p) => Span::enter_under(p, "build_tree"),
        None => Span::at("detect/build_tree"),
    };
    let tree = PatternsTree::build(sub, root, config.max_tree_nodes);
    drop(build_span);
    let Some(tree) = tree else {
        out.overflowed = true;
        return out;
    };
    out.tree_nodes = tree.nodes.len();
    out.patterns = tree.a_leaves.len() + tree.b_leaves.len();
    let to_global = |v: u32| sub.global(v);
    match_root(sub, &tree, |view| {
        let arc = (to_global(view.trade_source), to_global(view.target));
        if view.circle {
            let group = SuspiciousGroup {
                subtpiin: sub.shard_index(),
                kind: GroupKind::Circle,
                antecedent: to_global(view.target),
                end: to_global(view.target),
                trading_arc: arc,
                trail_with_trade: view.prefix.iter().map(|&v| to_global(v)).collect(),
                trail_plain: view.plain.iter().map(|&v| to_global(v)).collect(),
                simple: view.simple,
            };
            out.circles.push((view.prefix.to_vec(), group));
            return;
        }
        if view.simple {
            out.simple += 1;
        } else {
            out.complex += 1;
        }
        out.arcs.push(arc);
        if config.collect_groups {
            out.groups.push(SuspiciousGroup {
                subtpiin: sub.shard_index(),
                kind: GroupKind::Matched,
                antecedent: to_global(view.prefix[0]),
                end: to_global(view.target),
                trading_arc: arc,
                trail_with_trade: view.prefix.iter().map(|&v| to_global(v)).collect(),
                trail_plain: view.plain.iter().map(|&v| to_global(v)).collect(),
                simple: view.simple,
            });
        }
    });
    out
}

/// Merges ordered root outcomes into the final result.
fn merge<S: ShardTopology>(
    tpiin: &Tpiin,
    subs: &[S],
    work: &[(usize, u32)],
    outcomes: Vec<RootOutcome>,
    config: &DetectorConfig,
) -> DetectionResult {
    let mut result = DetectionResult {
        total_trading_arcs: tpiin.trading_arc_count + tpiin.intra_syndicate_trades.len(),
        intra_syndicate_trades: tpiin.intra_syndicate_trades.len(),
        per_subtpiin: subs
            .iter()
            .map(|s| SubTpiinStats {
                index: s.shard_index(),
                nodes: s.node_count(),
                influence_arcs: s.influence_arc_count(),
                trading_arcs: s.trading_arc_count(),
                ..Default::default()
            })
            .collect(),
        ..Default::default()
    };
    // Intra-syndicate trades are suspicious by construction (§4.3): count
    // their arcs.
    for t in &tpiin.intra_syndicate_trades {
        result.suspicious_trading_arcs.insert((
            tpiin.company_node[t.seller.index()],
            tpiin.company_node[t.buyer.index()],
        ));
    }
    // Cross-root circle dedup, per subTPIIN.
    let mut seen_circles: Vec<HashSet<Vec<u32>>> = vec![HashSet::new(); subs.len()];
    for (&(sub_idx, _), outcome) in work.iter().zip(outcomes) {
        let stats = &mut result.per_subtpiin[sub_idx];
        stats.tree_nodes += outcome.tree_nodes;
        stats.patterns += outcome.patterns;
        stats.groups += outcome.complex + outcome.simple;
        result.overflowed |= outcome.overflowed;
        result.complex_group_count += outcome.complex;
        result.simple_group_count += outcome.simple;
        result.suspicious_trading_arcs.extend(outcome.arcs);
        if config.collect_groups {
            result.groups.extend(outcome.groups);
        }
        for (key, group) in outcome.circles {
            if seen_circles[sub_idx].insert(key) {
                result.simple_group_count += 1;
                result.per_subtpiin[sub_idx].groups += 1;
                result.suspicious_trading_arcs.insert(group.trading_arc);
                if config.collect_groups {
                    result.groups.push(group);
                }
            }
        }
    }
    result
}

impl Detector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Detector { config }
    }

    /// Segments `tpiin` and mines every subTPIIN (Algorithm 1).
    pub fn detect(&self, tpiin: &Tpiin) -> DetectionResult {
        let span = Span::at("detect");
        let parent = span.handle();
        let subs = segment_tpiin(tpiin);
        self.detect_under(tpiin, &subs, parent.as_ref())
    }

    /// Mines pre-segmented shards; exposed so benchmarks can separate
    /// segmentation cost from mining cost, and generic over the shard
    /// representation so the CSR production path and the nested-vector
    /// reference path run through the identical scheduler and merge.
    pub fn detect_segmented<S: ShardTopology + Sync>(
        &self,
        tpiin: &Tpiin,
        subs: &[S],
    ) -> DetectionResult {
        let span = Span::at("detect");
        let parent = span.handle();
        self.detect_under(tpiin, subs, parent.as_ref())
    }

    /// The shared mining body behind [`Detector::detect`] and
    /// [`Detector::detect_segmented`]; `parent` is the handle of the
    /// enclosing `detect` span that worker threads attach under.
    fn detect_under<S: ShardTopology + Sync>(
        &self,
        tpiin: &Tpiin,
        subs: &[S],
        parent: Option<&SpanHandle>,
    ) -> DetectionResult {
        // Work items: one per (subTPIIN, root).  SubTPIINs without trading
        // arcs can be skipped wholesale — no type-(b) walks exist.
        let work: Vec<(usize, u32)> = subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.trading_arc_count() > 0)
            .flat_map(|(i, s)| s.zero_indegree_roots().into_iter().map(move |r| (i, r)))
            .collect();

        // Adaptive plan: clamp to the host, then compare the summed cost
        // estimate against the serial cutoff.
        let total_cost: u64 = work.iter().map(|&(i, _)| subs[i].estimated_cost()).sum();
        let mut threads = self.config.threads;
        if self.config.clamp_to_host {
            threads = threads.min(std::thread::available_parallelism().map_or(1, |n| n.get()));
        }
        let outcomes: Vec<RootOutcome> =
            if threads > 1 && work.len() > 1 && total_cost >= self.config.serial_cutoff as u64 {
                self.mine_stealing(subs, &work, threads, parent)
            } else {
                work.iter()
                    .map(|&(sub_idx, root)| mine_root(&subs[sub_idx], root, &self.config, parent))
                    .collect()
            };

        let mut result = merge(tpiin, subs, &work, outcomes, &self.config);
        if self.config.collect_groups {
            result.provenances = crate::provenance::assemble_all(tpiin, &result.groups);
        }
        if tpiin_obs::profiling_enabled() {
            let registry = tpiin_obs::global();
            registry.counter("detect.subtpiins").add(subs.len() as u64);
            registry.counter("detect.roots").add(work.len() as u64);
            registry
                .counter("detect.groups")
                .add(result.group_count() as u64);
            registry
                .counter("detect.suspicious_arcs")
                .add(result.suspicious_trading_arcs.len() as u64);
        }
        tpiin_obs::debug!(
            "mined {} roots across {} subTPIINs -> {} groups",
            work.len(),
            subs.len(),
            result.group_count()
        );
        result
    }

    /// Mines `work` with a pool of work-stealing workers, returning
    /// outcomes in work order.
    ///
    /// Items are scheduled heaviest-shard-first (estimated cost: nodes +
    /// trading arcs) and glued into batches of at least
    /// `batch_min_cost` — an expensive item is a singleton batch, the
    /// cheap tail shares deque entries.  Batches are dealt round-robin
    /// onto per-worker deques, so the expensive shards start immediately
    /// and spread across workers; what gets stolen is whole batches.
    /// Per-worker counters (items, batches, steals, busy time) flow into
    /// the metrics registry when profiling is on.
    fn mine_stealing<S: ShardTopology + Sync>(
        &self,
        subs: &[S],
        work: &[(usize, u32)],
        threads: usize,
        parent: Option<&SpanHandle>,
    ) -> Vec<RootOutcome> {
        let mut schedule: Vec<usize> = (0..work.len()).collect();
        schedule.sort_by_key(|&i| (std::cmp::Reverse(subs[work[i].0].estimated_cost()), i));
        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut cost_of_open_batch = u64::MAX; // force a fresh first batch
        for &item in &schedule {
            if cost_of_open_batch >= self.config.batch_min_cost as u64 {
                batches.push(Vec::new());
                cost_of_open_batch = 0;
            }
            batches.last_mut().expect("batch opened above").push(item);
            cost_of_open_batch += subs[work[item].0].estimated_cost();
        }
        let threads = threads.min(batches.len());
        if threads <= 1 {
            // Batching collapsed the workload onto one worker: skip the pool.
            return work
                .iter()
                .map(|&(sub_idx, root)| mine_root(&subs[sub_idx], root, &self.config, parent))
                .collect();
        }
        let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
        for (k, batch) in batches.iter().enumerate() {
            debug_assert!(!batch.is_empty());
            workers[k % threads].push(k);
        }

        let config = &self.config;
        let collected: parking_lot::Mutex<Vec<(usize, RootOutcome)>> =
            parking_lot::Mutex::new(Vec::with_capacity(work.len()));
        crossbeam::thread::scope(|scope| {
            for (thread_index, worker) in workers.iter().enumerate() {
                let (collected, stealers, batches) = (&collected, &stealers, &batches);
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, RootOutcome)> = Vec::new();
                    let profiling = tpiin_obs::profiling_enabled();
                    let mut stats = ThreadStats {
                        thread: thread_index,
                        ..Default::default()
                    };
                    loop {
                        let (batch, stolen) = match worker.pop() {
                            Some(batch) => (batch, false),
                            None => match steal_any(stealers, thread_index) {
                                Some(batch) => (batch, true),
                                None => break,
                            },
                        };
                        for &item in &batches[batch] {
                            let (sub_idx, root) = work[item];
                            let started = profiling.then(std::time::Instant::now);
                            let outcome = mine_root(&subs[sub_idx], root, config, parent);
                            if let Some(started) = started {
                                stats.busy_ns += started.elapsed().as_nanos() as u64;
                            }
                            stats.items += 1;
                            local.push((item, outcome));
                        }
                        if stolen {
                            stats.steals += 1;
                        } else {
                            stats.batches += 1;
                        }
                    }
                    if profiling && stats.items > 0 {
                        tpiin_obs::global().record_thread(stats);
                    }
                    collected.lock().append(&mut local);
                });
            }
        })
        .expect("detection worker panicked");

        let mut flat = collected.into_inner();
        flat.sort_by_key(|&(item, _)| item);
        assert_eq!(
            flat.len(),
            work.len(),
            "every work item produced an outcome"
        );
        flat.into_iter().map(|(_, outcome)| outcome).collect()
    }
}

/// Steals one item for `me`, scanning siblings starting at the next
/// worker so concurrent thieves fan out over different victims.
fn steal_any(stealers: &[Stealer<usize>], me: usize) -> Option<usize> {
    let n = stealers.len();
    for k in 1..n {
        let victim = (me + k) % n;
        loop {
            match stealers[victim].steal() {
                Steal::Success(item) => return Some(item),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Convenience: detect with the default configuration (serial, collecting
/// groups).
///
/// # Example
///
/// Two companies with the same boss trade with each other — the minimal
/// suspicious group (the triangle of the paper's Fig. 3(a)):
///
/// ```
/// use tpiin_core::detect;
/// use tpiin_fusion::fuse;
/// use tpiin_model::{InfluenceKind, InfluenceRecord, Role, RoleSet,
///                   SourceRegistry, TradingRecord};
///
/// let mut registry = SourceRegistry::new();
/// let boss = registry.add_person("Boss", RoleSet::of(&[Role::Ceo]));
/// let a = registry.add_company("A");
/// let b = registry.add_company("B");
/// for company in [a, b] {
///     registry.add_influence(InfluenceRecord {
///         person: boss, company,
///         kind: InfluenceKind::CeoOf, is_legal_person: true,
///     });
/// }
/// registry.add_trading(TradingRecord { seller: a, buyer: b, volume: 1.0 });
///
/// let (tpiin, _) = fuse(&registry).unwrap();
/// let result = detect(&tpiin);
/// assert_eq!(result.group_count(), 1);
/// assert!(result.groups[0].simple);
/// assert_eq!(result.suspicious_trading_arcs.len(), 1);
/// ```
pub fn detect(tpiin: &Tpiin) -> DetectionResult {
    Detector::default().detect(tpiin)
}

/// Everything mining one shard produces, in the shard's **local**
/// coordinates: group node ids are local indices re-cast as [`NodeId`]s
/// and must be remapped through [`ShardTopology::global`] before they
/// mean anything in the full network.  Local coordinates are the point —
/// a delta engine can cache the outcome keyed on the shard's local
/// structure and replay it after global node ids shift.
#[derive(Clone, Debug, Default)]
pub struct ShardOutcome {
    /// The shard's groups in the exact order the global merge emits them:
    /// per root (ascending), matched groups first, then that root's
    /// not-yet-seen circles.  Suspicious arcs are recoverable as the
    /// distinct `trading_arc`s; complex/simple counts from the `kind` and
    /// `simple` fields.
    pub groups: Vec<SuspiciousGroup>,
    /// Total patterns-tree nodes across the shard's roots.
    pub tree_nodes: usize,
    /// Total component patterns across the shard's roots.
    pub patterns: usize,
    /// Whether any root overflowed `max_tree_nodes`.
    pub overflowed: bool,
}

/// Identity-mapped view of a shard: `global(v) = v`, so [`mine_root`]
/// emits local ids through the one shared mining kernel.
struct LocalShard<'a, S: ?Sized>(&'a S);

impl<S: ShardTopology + ?Sized> ShardTopology for LocalShard<'_, S> {
    fn shard_index(&self) -> usize {
        self.0.shard_index()
    }
    fn node_count(&self) -> usize {
        self.0.node_count()
    }
    fn global(&self, v: u32) -> NodeId {
        NodeId::from_index(v as usize)
    }
    fn influence(&self, v: u32) -> &[u32] {
        self.0.influence(v)
    }
    fn trading(&self, v: u32) -> &[u32] {
        self.0.trading(v)
    }
    fn influence_in_degree(&self, v: u32) -> u32 {
        self.0.influence_in_degree(v)
    }
    fn trading_arc_count(&self) -> usize {
        self.0.trading_arc_count()
    }
    fn is_person(&self, v: u32) -> bool {
        self.0.is_person(v)
    }
}

/// Serially mines every root of one shard, replicating the global
/// merge's per-shard inner loop — matched groups in root order, then
/// per-root circles deduplicated across the shard — and returns the
/// outcome in local coordinates (see [`ShardOutcome`]).  Groups are
/// always collected regardless of `config.collect_groups`, and
/// `max_tree_nodes` applies per root exactly as in [`Detector::detect`],
/// so concatenating remapped shard outcomes over a segmentation reproduces
/// the global result's group sequence bit for bit.
pub fn mine_shard<S: ShardTopology + ?Sized>(sub: &S, config: &DetectorConfig) -> ShardOutcome {
    let config = DetectorConfig {
        collect_groups: true,
        ..*config
    };
    let mut out = ShardOutcome::default();
    if sub.trading_arc_count() == 0 {
        return out;
    }
    let local = LocalShard(sub);
    let mut seen_circles: HashSet<Vec<u32>> = HashSet::new();
    for root in sub.zero_indegree_roots() {
        let mined = mine_root(&local, root, &config, None);
        out.tree_nodes += mined.tree_nodes;
        out.patterns += mined.patterns;
        out.overflowed |= mined.overflowed;
        out.groups.extend(mined.groups);
        for (key, group) in mined.circles {
            if seen_circles.insert(key) {
                out.groups.push(group);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
        SourceRegistry, TradingRecord,
    };

    /// Case 1 (Fig. 1): L1 controls C1 which owns C3; L2 controls C2;
    /// L1 and L2 are brothers; C3 sells to C2.
    fn case1_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l1 = r.add_person("L1", RoleSet::of(&[Role::Ceo]));
        let l2 = r.add_person("L2", RoleSet::of(&[Role::Ceo]));
        let l3 = r.add_person("L3", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        for (p, c) in [(l1, c1), (l2, c2), (l3, c3)] {
            r.add_influence(InfluenceRecord {
                person: p,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_interdependence(l1, l2, InterdependenceKind::Kinship);
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c3,
            share: 1.0,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c2,
            volume: 2552.0,
        });
        r
    }

    #[test]
    fn case1_is_detected_with_merged_kin_antecedent() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let result = detect(&tpiin);
        assert_eq!(result.group_count(), 1);
        assert_eq!(result.suspicious_trading_arcs.len(), 1);
        let g = &result.groups[0];
        assert_eq!(tpiin.label(g.antecedent), "L1+L2");
        assert_eq!(tpiin.label(g.end), "C2");
        assert!(g.simple);
        assert_eq!(g.kind, GroupKind::Matched);
        let explained = g.explain(&tpiin);
        assert!(explained.contains("L1+L2"), "{explained}");
        assert!(explained.contains("IAT"), "{explained}");
    }

    #[test]
    fn unrelated_trade_is_not_suspicious() {
        let mut r = case1_registry();
        // C4 is controlled by an unrelated person; C3 -> C4 trade crosses
        // no common antecedent (C4 joins the weak component via nothing).
        let l4 = r.add_person("L4", RoleSet::of(&[Role::Ceo]));
        let c4 = r.add_company("C4");
        r.add_influence(InfluenceRecord {
            person: l4,
            company: c4,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        r.add_trading(TradingRecord {
            seller: tpiin_model::CompanyId(2),
            buyer: c4,
            volume: 1.0,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let result = detect(&tpiin);
        // Still only the Case-1 group; the C3 -> C4 arc stays clean.
        assert_eq!(result.group_count(), 1);
        assert_eq!(result.suspicious_trading_arcs.len(), 1);
        assert_eq!(result.total_trading_arcs, 2);
        assert!((result.suspicious_percentage() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn counting_only_mode_matches_collecting_mode() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let full = detect(&tpiin);
        let counting = Detector::new(DetectorConfig {
            collect_groups: false,
            ..Default::default()
        })
        .detect(&tpiin);
        assert!(counting.groups.is_empty());
        assert_eq!(counting.group_count(), full.group_count());
        assert_eq!(
            counting.suspicious_trading_arcs,
            full.suspicious_trading_arcs
        );
    }

    #[test]
    fn parallel_detection_is_deterministic_and_equal_to_serial() {
        // A registry with several components to give the scheduler work.
        let mut r = SourceRegistry::new();
        for k in 0..6u32 {
            let l = r.add_person(format!("L{k}"), RoleSet::of(&[Role::Ceo]));
            let a = r.add_company(format!("A{k}"));
            let b = r.add_company(format!("B{k}"));
            for c in [a, b] {
                r.add_influence(InfluenceRecord {
                    person: l,
                    company: c,
                    kind: InfluenceKind::CeoOf,
                    is_legal_person: true,
                });
            }
            r.add_trading(TradingRecord {
                seller: a,
                buyer: b,
                volume: 1.0,
            });
        }
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let serial = detect(&tpiin);
        // Force the stealing pool even on a small host: no host clamp, no
        // serial cutoff, one item per batch.
        let parallel = Detector::new(DetectorConfig {
            threads: 4,
            serial_cutoff: 0,
            batch_min_cost: 1,
            clamp_to_host: false,
            ..Default::default()
        })
        .detect(&tpiin);
        assert_eq!(serial.group_count(), 6);
        assert_eq!(parallel.group_count(), serial.group_count());
        assert_eq!(
            parallel.suspicious_trading_arcs,
            serial.suspicious_trading_arcs
        );
        let keys = |r: &DetectionResult| -> Vec<_> { r.groups.iter().map(|g| g.key()).collect() };
        assert_eq!(
            keys(&parallel),
            keys(&serial),
            "identical order, not just set"
        );
        // Batched variant (several items glued per deque entry) and the
        // adaptive default (which drops this tiny workload to the serial
        // path) must produce the same result again.
        for config in [
            DetectorConfig {
                threads: 4,
                serial_cutoff: 0,
                batch_min_cost: 8,
                clamp_to_host: false,
                ..Default::default()
            },
            DetectorConfig {
                threads: 4,
                ..Default::default()
            },
        ] {
            let result = Detector::new(config).detect(&tpiin);
            assert_eq!(keys(&result), keys(&serial));
            assert_eq!(
                result.suspicious_trading_arcs,
                serial.suspicious_trading_arcs
            );
        }
    }

    #[test]
    fn intra_syndicate_trades_are_counted_suspicious() {
        let mut r = case1_registry();
        // C2 <-> C3 mutual investment forms an SCC; their trade becomes
        // intra-syndicate.
        r.add_investment(InvestmentRecord {
            investor: tpiin_model::CompanyId(1),
            investee: tpiin_model::CompanyId(2),
            share: 0.5,
        });
        r.add_investment(InvestmentRecord {
            investor: tpiin_model::CompanyId(2),
            investee: tpiin_model::CompanyId(1),
            share: 0.5,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        assert_eq!(tpiin.intra_syndicate_trades.len(), 1);
        let result = detect(&tpiin);
        assert_eq!(result.intra_syndicate_trades, 1);
        // The intra-syndicate arc contributes a suspicious self-arc entry.
        assert!(!result.suspicious_trading_arcs.is_empty());
        assert_eq!(result.total_trading_arcs, 1);
    }

    #[test]
    fn tree_overflow_sets_the_flag_instead_of_panicking() {
        let (tpiin, _) = tpiin_fusion::fuse(&case1_registry()).unwrap();
        let result = Detector::new(DetectorConfig {
            max_tree_nodes: 1,
            ..Default::default()
        })
        .detect(&tpiin);
        assert!(result.overflowed);
        assert_eq!(result.group_count(), 0);
    }

    #[test]
    fn empty_tpiin_detects_nothing() {
        let r = SourceRegistry::new();
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let result = detect(&tpiin);
        assert_eq!(result.group_count(), 0);
        assert!(result.suspicious_trading_arcs.is_empty());
        assert!(!result.overflowed);
    }
}
