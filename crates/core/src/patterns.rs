//! Materialized potential component pattern base (Fig. 10).
//!
//! The detector itself matches on the patterns tree; this module renders
//! the explicit pattern base — the per-subTPIIN artifact the paper stores
//! in `patterns(i)` — for inspection, explanation and the worked-example
//! tests.

use crate::listd::listd_order;
use crate::topology::ShardTopology;
use crate::tree::PatternsTree;
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;

/// One suspicious relationship trail of the potential component pattern
/// base: `{A1, …, Am}` (type (a), an `InOT-OutOSP` walk) or
/// `{A1, …, Am, -> Cj}` (type (b), an `InOT-FTAOP` walk).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ComponentPattern {
    /// The influence prefix, in global TPIIN node ids.
    pub nodes: Vec<NodeId>,
    /// The trading-arc target for type-(b) patterns.
    pub trading_target: Option<NodeId>,
}

impl ComponentPattern {
    /// Whether this is an `InOT-FTAOP` walk (ends with a trading arc).
    pub fn is_type_b(&self) -> bool {
        self.trading_target.is_some()
    }

    /// Renders the pattern in the paper's Fig. 10 notation, e.g.
    /// `"L1, C2, C5 -> C6"`, using TPIIN labels.
    pub fn render(&self, tpiin: &Tpiin) -> String {
        let prefix: Vec<&str> = self.nodes.iter().map(|&n| tpiin.label(n)).collect();
        match self.trading_target {
            Some(t) => format!("{} -> {}", prefix.join(", "), tpiin.label(t)),
            None => prefix.join(", "),
        }
    }
}

/// Generates the potential component pattern base of one subTPIIN
/// (Algorithm 2's `patterns` file): all type-(a) and type-(b) walks, with
/// roots processed in `ListD` order and walks in DFS discovery order.
///
/// `max_tree_nodes` bounds each root's tree; `None` on overflow.
pub fn generate_pattern_base<S: ShardTopology + ?Sized>(
    sub: &S,
    max_tree_nodes: usize,
) -> Option<Vec<ComponentPattern>> {
    let mut base = Vec::new();
    let order = listd_order(sub);
    for &v in &order {
        if sub.influence_in_degree(v) != 0 {
            continue;
        }
        let tree = PatternsTree::build(sub, v, max_tree_nodes)?;
        // Interleave a/b leaves in discovery order: reconstruct by walking
        // leaves in tree-node order (a-leaves keyed by their tree node,
        // b-leaves by theirs).
        let mut tagged: Vec<(u32, usize, Option<u32>)> = Vec::new();
        for (i, &a) in tree.a_leaves.iter().enumerate() {
            tagged.push((a, i, None));
        }
        for (i, leaf) in tree.b_leaves.iter().enumerate() {
            tagged.push((leaf.tree_node, i, Some(leaf.target)));
        }
        tagged.sort_by_key(|&(t, i, ref target)| (t, target.is_some(), i));
        for (t, _, target) in tagged {
            base.push(ComponentPattern {
                nodes: tree.trail(t).into_iter().map(|l| sub.global(l)).collect(),
                trading_target: target.map(|c| sub.global(c)),
            });
        }
    }
    Some(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtpiin::subtpiin_from_arcs;

    #[test]
    fn base_contains_both_walk_types() {
        // 0 -> 1 -> 2, trading 2 -> 3, 0 -> 3 (3 has no out-arcs).
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 1), (1, 2), (0, 3)],
            &[(2, 3)],
            vec![true, false, false, false],
        );
        let base = generate_pattern_base(&sub, usize::MAX).unwrap();
        let rendered: Vec<(Vec<usize>, Option<usize>)> = base
            .iter()
            .map(|p| {
                (
                    p.nodes.iter().map(|n| n.index()).collect(),
                    p.trading_target.map(|n| n.index()),
                )
            })
            .collect();
        assert!(
            rendered.contains(&(vec![0, 1, 2], Some(3))),
            "type (b): {rendered:?}"
        );
        assert!(
            rendered.contains(&(vec![0, 3], None)),
            "type (a): {rendered:?}"
        );
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn type_b_flag() {
        let p = ComponentPattern {
            nodes: vec![NodeId::from_index(0)],
            trading_target: None,
        };
        assert!(!p.is_type_b());
        let q = ComponentPattern {
            nodes: vec![NodeId::from_index(0)],
            trading_target: Some(NodeId::from_index(1)),
        };
        assert!(q.is_type_b());
    }

    #[test]
    fn overflow_returns_none() {
        let sub = subtpiin_from_arcs(3, &[(0, 1), (1, 2)], &[], vec![true, false, false]);
        assert!(generate_pattern_base(&sub, 1).is_none());
    }

    #[test]
    fn isolated_root_yields_single_node_pattern() {
        let sub = subtpiin_from_arcs(1, &[], &[], vec![true]);
        let base = generate_pattern_base(&sub, usize::MAX).unwrap();
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].nodes.len(), 1);
        assert!(!base[0].is_type_b());
    }
}
