//! Targeted queries: suspicious groups behind *one* trading relationship.
//!
//! The deployed system of Section 6 supports "the detection of suspicious
//! trading relationships and corresponding suspicious groups of specified
//! companies in a suspicious trading relationship": an investigator picks
//! a company or a transaction and asks for the proof chains behind it.
//! With the national feed peaking at ten million records a day, running
//! the full Algorithm 1 per query would be wasteful; [`groups_behind_arc`]
//! answers for a single arc by restricting the search to the ancestors of
//! its two endpoints.

use crate::matching::match_root;
use crate::result::{GroupKind, SuspiciousGroup};
use crate::subtpiin::SubTpiin;
use crate::tree::PatternsTree;
use tpiin_fusion::{ArcColor, Tpiin};
use tpiin_graph::NodeId;

/// Influence-ancestors of `start` (including `start`), via reverse BFS.
fn ancestors(tpiin: &Tpiin, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; tpiin.graph.node_count()];
    seen[start.index()] = true;
    let mut queue = vec![start];
    while let Some(v) = queue.pop() {
        for e in tpiin.graph.in_edges(v) {
            if e.weight.color == ArcColor::Influence && !seen[e.source.index()] {
                seen[e.source.index()] = true;
                queue.push(e.source);
            }
        }
    }
    seen
}

/// Finds every suspicious group whose interest-affiliated transaction is
/// the trading arc `seller -> buyer` (TPIIN node ids).
///
/// Returns the same groups [`crate::detect`] would report for that arc
/// (tested equal), but touches only the subgraph of common ancestors:
/// the patterns trees are built on the restriction of the TPIIN to
/// ancestors of the two endpoints, with the queried arc as the only
/// trading arc.
///
/// Returns an empty vector if no such trading arc exists.
pub fn groups_behind_arc(tpiin: &Tpiin, seller: NodeId, buyer: NodeId) -> Vec<SuspiciousGroup> {
    let arc_exists = tpiin
        .graph
        .out_edges(seller)
        .any(|e| e.target == buyer && e.weight.color == ArcColor::Trading);
    if !arc_exists {
        return Vec::new();
    }
    // Restrict to nodes that can appear on either trail: ancestors of the
    // seller or of the buyer (trails run root -> … -> endpoint).
    let anc_seller = ancestors(tpiin, seller);
    let anc_buyer = ancestors(tpiin, buyer);
    let keep: Vec<NodeId> = tpiin
        .graph
        .node_ids()
        .filter(|v| anc_seller[v.index()] || anc_buyer[v.index()])
        .collect();
    let mut local_of = vec![u32::MAX; tpiin.graph.node_count()];
    for (local, &g) in keep.iter().enumerate() {
        local_of[g.index()] = local as u32;
    }

    let n = keep.len();
    let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (local, &g) in keep.iter().enumerate() {
        for e in tpiin.graph.out_edges(g) {
            if e.weight.color != ArcColor::Influence {
                continue;
            }
            let t = local_of[e.target.index()];
            if t != u32::MAX {
                influence_out[local].push(t);
            }
        }
    }
    let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    trading_out[local_of[seller.index()] as usize].push(local_of[buyer.index()]);
    let sub = SubTpiin::from_adjacency(
        0,
        keep,
        &influence_out,
        &trading_out,
        vec![false; n], // node colors are not needed for matching
    );

    let mut groups = Vec::new();
    let mut seen_circles: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let roots: Vec<u32> = sub.roots().collect();
    for root in roots {
        let tree = PatternsTree::build(&sub, root, usize::MAX)
            .expect("ancestor-restricted tree stays small");
        let to_global = |v: u32| sub.global[v as usize];
        match_root(&sub, &tree, |view| {
            if view.circle && !seen_circles.insert(view.prefix.to_vec()) {
                return;
            }
            groups.push(SuspiciousGroup {
                subtpiin: 0,
                kind: if view.circle {
                    GroupKind::Circle
                } else {
                    GroupKind::Matched
                },
                antecedent: if view.circle {
                    to_global(view.target)
                } else {
                    to_global(view.prefix[0])
                },
                end: to_global(view.target),
                trading_arc: (to_global(view.trade_source), to_global(view.target)),
                trail_with_trade: view.prefix.iter().map(|&v| to_global(v)).collect(),
                trail_plain: view.plain.iter().map(|&v| to_global(v)).collect(),
                simple: view.simple,
            });
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;

    fn fig7() -> Tpiin {
        tpiin_fusion::fuse(&tpiin_datagen::fig7_registry())
            .unwrap()
            .0
    }

    fn node_by_label(tpiin: &Tpiin, label: &str) -> NodeId {
        tpiin
            .graph
            .nodes()
            .find(|(_, n)| n.label() == label)
            .map(|(id, _)| id)
            .expect("label exists")
    }

    #[test]
    fn query_matches_full_detection_per_arc() {
        let tpiin = fig7();
        let full = detect(&tpiin);
        // Check every trading arc of the worked example.
        for (seller, buyer) in [
            ("C3", "C5"),
            ("C5", "C6"),
            ("C5", "C7"),
            ("C7", "C8"),
            ("C8", "C4"),
        ] {
            let s = node_by_label(&tpiin, seller);
            let b = node_by_label(&tpiin, buyer);
            let mut queried: Vec<_> = groups_behind_arc(&tpiin, s, b)
                .iter()
                .map(|g| g.key())
                .collect();
            let mut expected: Vec<_> = full
                .groups
                .iter()
                .filter(|g| g.trading_arc == (s, b))
                .map(|g| g.key())
                .collect();
            queried.sort();
            expected.sort();
            assert_eq!(queried, expected, "arc {seller}->{buyer}");
        }
    }

    #[test]
    fn missing_arc_yields_nothing() {
        let tpiin = fig7();
        let c1 = node_by_label(&tpiin, "C1");
        let c2 = node_by_label(&tpiin, "C2");
        assert!(groups_behind_arc(&tpiin, c1, c2).is_empty());
    }

    #[test]
    fn query_agrees_on_a_random_province_slice() {
        let config = tpiin_datagen::ProvinceConfig {
            seed: 5,
            ..tpiin_datagen::ProvinceConfig::scaled(0.15)
        };
        let mut registry = tpiin_datagen::generate_province(&config);
        tpiin_datagen::add_random_trading(&mut registry, 0.01, 55);
        let (tpiin, _) = tpiin_fusion::fuse(&registry).unwrap();
        let full = detect(&tpiin);
        // Take the first 25 suspicious arcs and re-derive their groups.
        for &(s, b) in full.suspicious_trading_arcs.iter().take(25) {
            let mut queried: Vec<_> = groups_behind_arc(&tpiin, s, b)
                .iter()
                .map(|g| g.key())
                .collect();
            let mut expected: Vec<_> = full
                .groups
                .iter()
                .filter(|g| g.trading_arc == (s, b))
                .map(|g| g.key())
                .collect();
            queried.sort();
            expected.sort();
            assert_eq!(queried, expected);
            assert!(!queried.is_empty());
        }
    }
}
