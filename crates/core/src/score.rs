//! Weighted group scoring — the paper's future-work extension ("the
//! weight computation methods of edges during a build-in phase of TPIIN in
//! order to help identify the tax evaders").
//!
//! Fusion stores a weight on every arc: `1.0` for positional influence,
//! the share fraction for investment arcs, and the trade volume for
//! trading arcs.  A group's *chain strength* is the product of the
//! influence-arc weights along both trails — the tightness of the control
//! chain binding the two transaction parties — and its score multiplies
//! that by the trade volume, so investigators can rank groups by how much
//! value flows through how tight a chain.

use crate::result::SuspiciousGroup;
use tpiin_fusion::{ArcColor, Tpiin};
use tpiin_graph::NodeId;

/// Ranking information for one suspicious group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupScore {
    /// Product of influence-arc weights along both trails, in `(0, 1]`
    /// for share-weighted chains.
    pub chain_strength: f64,
    /// Weight of the suspicious trading arc (trade volume).
    pub trade_volume: f64,
    /// `chain_strength * trade_volume` — the ranking key.
    pub score: f64,
}

pub(crate) fn arc_weight(tpiin: &Tpiin, s: NodeId, t: NodeId, color: ArcColor) -> Option<f64> {
    tpiin
        .graph
        .out_edges(s)
        .find(|e| e.target == t && e.weight.color == color)
        .map(|e| e.weight.weight)
}

/// Scores `group` against the TPIIN it was mined from.
///
/// # Panics
/// Panics if the group's trails reference arcs that do not exist in
/// `tpiin` (i.e. the group came from a different network).
pub fn score_group(tpiin: &Tpiin, group: &SuspiciousGroup) -> GroupScore {
    let _span = tpiin_obs::Span::at("detect/score");
    let mut chain_strength = 1.0;
    for trail in [&group.trail_with_trade, &group.trail_plain] {
        for pair in trail.windows(2) {
            chain_strength *= arc_weight(tpiin, pair[0], pair[1], ArcColor::Influence)
                .expect("group trail arc missing from TPIIN");
        }
    }
    let trade_volume = arc_weight(
        tpiin,
        group.trading_arc.0,
        group.trading_arc.1,
        ArcColor::Trading,
    )
    .or_else(|| {
        // Intra-syndicate circles reference arcs the contraction
        // dropped; fall back to the recorded intra-syndicate volume.
        tpiin
            .intra_syndicate_trades
            .iter()
            .find(|t| {
                tpiin.company_node[t.seller.index()] == group.trading_arc.0
                    && tpiin.company_node[t.buyer.index()] == group.trading_arc.1
            })
            .map(|t| t.volume)
    })
    .expect("group trading arc missing from TPIIN");
    GroupScore {
        chain_strength,
        trade_volume,
        score: chain_strength * trade_volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, InvestmentRecord, Role, RoleSet, SourceRegistry,
        TradingRecord,
    };

    fn registry(share: f64, volume: f64) -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let l = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        let c3 = r.add_company("C3");
        for c in [c1, c2] {
            r.add_influence(InfluenceRecord {
                person: l,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        let l3 = r.add_person("L3", RoleSet::of(&[Role::Ceo]));
        r.add_influence(InfluenceRecord {
            person: l3,
            company: c3,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c3,
            share,
        });
        r.add_trading(TradingRecord {
            seller: c3,
            buyer: c2,
            volume,
        });
        r
    }

    #[test]
    fn chain_strength_multiplies_shares_along_both_trails() {
        let (tpiin, _) = tpiin_fusion::fuse(&registry(0.6, 100.0)).unwrap();
        let result = detect(&tpiin);
        assert_eq!(result.group_count(), 1);
        let s = score_group(&tpiin, &result.groups[0]);
        // Trails: L -> C1 -> C3 (1.0 * 0.6) and L -> C2 (1.0).
        assert!((s.chain_strength - 0.6).abs() < 1e-12);
        assert!((s.trade_volume - 100.0).abs() < 1e-12);
        assert!((s.score - 60.0).abs() < 1e-12);
    }

    #[test]
    fn top_scored_orders_descending() {
        // Two groups from two trades of different volume.
        let mut r = registry(0.6, 100.0);
        r.add_trading(tpiin_model::TradingRecord {
            seller: tpiin_model::CompanyId(2),
            buyer: tpiin_model::CompanyId(0),
            volume: 900.0,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let result = detect(&tpiin);
        assert!(result.group_count() >= 2);
        let top = result.top_scored(&tpiin, 10);
        for pair in top.windows(2) {
            assert!(pair[0].0.score >= pair[1].0.score);
        }
        let top1 = result.top_scored(&tpiin, 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].0.score, top[0].0.score);
    }

    #[test]
    fn higher_volume_scores_higher() {
        let (t1, _) = tpiin_fusion::fuse(&registry(0.6, 100.0)).unwrap();
        let (t2, _) = tpiin_fusion::fuse(&registry(0.6, 500.0)).unwrap();
        let g1 = detect(&t1).groups.remove(0);
        let g2 = detect(&t2).groups.remove(0);
        assert!(score_group(&t2, &g2).score > score_group(&t1, &g1).score);
    }
}
