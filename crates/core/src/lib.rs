//! `tpiin-core` — mining suspicious tax-evasion groups in a TPIIN.
//!
//! This crate implements the paper's contribution (Section 4.3):
//!
//! * **Algorithm 1** — segmenting a TPIIN into `subTPIIN`s (maximal
//!   weakly connected subgraphs of the antecedent network plus their
//!   internal trading arcs) and mining each independently
//!   ([`segment_tpiin`], [`Detector`]);
//! * **Algorithm 2** — building a *patterns tree* per indegree-zero node
//!   and deriving the *potential component pattern base*
//!   ([`PatternsTree`], [`generate_pattern_base`]);
//! * **pattern matching** — finding two matched component patterns with a
//!   same antecedent behind a trading arc, yielding suspicious groups and
//!   suspicious trading relationships ([`match_root`]);
//! * the **global traversal baseline** the paper compares against
//!   ([`baseline::detect_baseline`]);
//! * a **parallel detector** over subTPIINs/roots (the paper's "parallel
//!   and distributed computation" future-work direction);
//! * a **weighted scoring extension** ranking groups by investment share
//!   and trade volume ([`score::score_group`]);
//! * the **[`GroupMiner`] strategy API** — Rule 1/Rule 2, the baseline,
//!   circular-trading cycle detection and time-windowed decoration all
//!   behind one trait ([`MinerRegistry`]), so new workloads plug into
//!   the pipeline, the serve daemon and the CLI without forking the
//!   detector.
//!
//! # Counting semantics
//!
//! A *suspicious group* is an unordered pair of simple directed trails
//! with the same start (the antecedent) and end node whose edge union
//! contains exactly one trading arc, incoming to the end node
//! (Definition 2).  Following the completeness argument of Appendix A,
//! trails are anchored at indegree-zero antecedent nodes, so one
//! "economic" group is counted once per distinct anchored trail pair —
//! the same multiplicity the paper's Table 1 reports.  Trail pairs are
//! deduplicated (two component patterns sharing a prefix contribute one
//! pair), and a type-(b) walk whose trading arc re-enters its own prefix
//! contributes one *circle* group (the special case of Section 4.3).

mod baseline_impl;
mod detector;
mod listd;
mod matching;
mod miner;
mod nested;
mod patterns;
mod provenance;
mod query;
mod result;
mod score;
mod stats;
mod subtpiin;
mod topology;
mod tree;

pub use detector::{detect, mine_shard, Detector, DetectorConfig, ShardOutcome};
pub use listd::listd_order;
pub use matching::match_root;
pub use miner::{
    mine_with_obs, BaselineMiner, CircularTradingMiner, GroupMiner, MineContext, MinerRegistry,
    Rule12Miner, WindowedMiner, BASELINE_MINER, CIRCULAR_MINER, RULES_MINER,
};
pub use nested::{segment_tpiin_nested, NestedSubTpiin};
pub use patterns::{generate_pattern_base, ComponentPattern};
pub use provenance::{ArcProvenance, MatchedRule, MemberLineage, Provenance, ScoreBreakdown};
pub use query::groups_behind_arc;
pub use result::{DetectionResult, GroupKind, SubTpiinStats, SuspiciousGroup};
pub use stats::{
    group_size_histogram, groups_per_suspicious_arc, node_involvement, top_involved, Involvement,
};
pub use subtpiin::{segment_one, segment_tpiin, subtpiin_from_arcs, whole_tpiin, SubTpiin};
pub use topology::ShardTopology;
pub use tree::{PatternsTree, TreeNode};

/// The global traversal baseline (Section 5.1).
pub mod baseline {
    pub use crate::baseline_impl::{detect_baseline, BaselineResult};
}

/// Weighted group scoring (the paper's future-work extension).
pub use score::{score_group, GroupScore};
