//! The pre-CSR nested-`Vec` shard representation, kept as a reference arm.
//!
//! Before the graph substrate was frozen into CSR slices, every shard
//! stored its adjacency as `Vec<Vec<u32>>` built by walking the TPIIN's
//! mutable [`tpiin_graph::DiGraph`] edge by edge.  That path is preserved
//! here, verbatim in behavior, for two purposes:
//!
//! * the `freeze_equivalence` property test differential-tests the CSR
//!   detector against it on random registries, and
//! * `bench_detect` measures the CSR speedup against it (the "old
//!   adjacency" arm of the BENCH_detect.json record).
//!
//! Production code should use [`crate::segment_tpiin`] / [`crate::SubTpiin`].

use crate::topology::ShardTopology;
use tpiin_fusion::{ArcColor, NodeColor, Tpiin};
use tpiin_graph::{weakly_connected_components, DiGraph, NodeId};

/// One mining shard in the legacy nested-`Vec` layout: one heap
/// allocation per node and per adjacency list.
#[derive(Clone, Debug)]
pub struct NestedSubTpiin {
    /// Position of this subTPIIN in the segmentation output.
    pub index: usize,
    /// Global TPIIN node for each local node id.
    pub global: Vec<NodeId>,
    /// Influence out-adjacency per local node.
    pub influence_out: Vec<Vec<u32>>,
    /// Trading out-adjacency per local node.
    pub trading_out: Vec<Vec<u32>>,
    /// Influence in-degree per local node.
    pub influence_in_degree: Vec<u32>,
    /// Number of trading arcs inside this subTPIIN.
    pub trading_arc_count: usize,
    /// Whether each local node is a Person node (else Company).
    pub is_person: Vec<bool>,
}

impl ShardTopology for NestedSubTpiin {
    fn shard_index(&self) -> usize {
        self.index
    }

    fn node_count(&self) -> usize {
        self.global.len()
    }

    fn global(&self, v: u32) -> NodeId {
        self.global[v as usize]
    }

    fn influence(&self, v: u32) -> &[u32] {
        &self.influence_out[v as usize]
    }

    fn trading(&self, v: u32) -> &[u32] {
        &self.trading_out[v as usize]
    }

    fn influence_in_degree(&self, v: u32) -> u32 {
        self.influence_in_degree[v as usize]
    }

    fn trading_arc_count(&self) -> usize {
        self.trading_arc_count
    }

    fn is_person(&self, v: u32) -> bool {
        self.is_person[v as usize]
    }
}

/// Segments `tpiin` by walking the mutable [`DiGraph`] adjacency — the
/// pre-CSR implementation of Algorithm 1 steps 1–6.  Produces shards with
/// identical node order, neighbor order and trading-arc filtering as
/// [`crate::segment_tpiin`].
pub fn segment_tpiin_nested(tpiin: &Tpiin) -> Vec<NestedSubTpiin> {
    // Weak components of the *antecedent* network only.
    let mut antecedent: DiGraph<(), ()> =
        DiGraph::with_capacity(tpiin.graph.node_count(), tpiin.influence_arc_count);
    for _ in 0..tpiin.graph.node_count() {
        antecedent.add_node(());
    }
    for e in tpiin.graph.edges() {
        if e.weight.color == ArcColor::Influence {
            antecedent.add_edge(e.source, e.target, ());
        }
    }
    let (labels, count) = weakly_connected_components(&antecedent);

    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in tpiin.graph.node_ids() {
        members[labels[v.index()] as usize].push(v);
    }

    // Map global node -> local id within its component.
    let mut local_of = vec![u32::MAX; tpiin.graph.node_count()];
    for comp in &members {
        for (local, &g) in comp.iter().enumerate() {
            local_of[g.index()] = local as u32;
        }
    }

    members
        .iter()
        .enumerate()
        .map(|(index, comp)| {
            let n = comp.len();
            let mut influence_out: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut trading_out: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut influence_in_degree = vec![0u32; n];
            let mut trading_arc_count = 0usize;
            for (local, &g) in comp.iter().enumerate() {
                for e in tpiin.graph.out_edges(g) {
                    let t = local_of[e.target.index()];
                    match e.weight.color {
                        ArcColor::Influence => {
                            influence_out[local].push(t);
                            influence_in_degree[t as usize] += 1;
                        }
                        ArcColor::Trading => {
                            // Trading arcs leaving the component are
                            // unsuspicious: skip.
                            if labels[e.target.index()] == labels[g.index()] {
                                trading_out[local].push(t);
                                trading_arc_count += 1;
                            }
                        }
                    }
                }
            }
            NestedSubTpiin {
                index,
                global: comp.clone(),
                influence_out,
                trading_out,
                influence_in_degree,
                trading_arc_count,
                is_person: comp
                    .iter()
                    .map(|&g| tpiin.color(g) == NodeColor::Person)
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{
        InfluenceKind, InfluenceRecord, Role, RoleSet, SourceRegistry, TradingRecord,
    };

    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        let boss = r.add_person("Boss", RoleSet::of(&[Role::Ceo]));
        let a = r.add_company("A");
        let b = r.add_company("B");
        for c in [a, b] {
            r.add_influence(InfluenceRecord {
                person: boss,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_trading(TradingRecord {
            seller: a,
            buyer: b,
            volume: 1.0,
        });
        r
    }

    #[test]
    fn nested_detection_matches_csr_detection() {
        let (tpiin, _) = tpiin_fusion::fuse(&registry()).unwrap();
        let csr = crate::detector::detect(&tpiin);
        let nested_shards = segment_tpiin_nested(&tpiin);
        let nested = crate::Detector::default().detect_segmented(&tpiin, &nested_shards);
        assert_eq!(csr.group_count(), nested.group_count());
        let keys =
            |r: &crate::DetectionResult| -> Vec<_> { r.groups.iter().map(|g| g.key()).collect() };
        assert_eq!(keys(&csr), keys(&nested));
    }
}
