//! The `ListD` node ordering of Algorithm 2, step 2.
//!
//! Algorithm 2 sorts the nodes of a subTPIIN "according to the increase in
//! indegree of each node and inverted order of outdegree of each node"
//! (Fig. 9(a)).  The ordering only affects the enumeration order of the
//! component pattern base, not its contents; we keep it for fidelity and
//! deterministic output.

use crate::topology::ShardTopology;

/// Returns the local node ids of `sub` sorted by (indegree ascending,
/// outdegree descending, node id ascending).
///
/// Degrees are taken over the whole subTPIIN (influence + trading), as in
/// Algorithm 2 step 1.
pub fn listd_order<S: ShardTopology + ?Sized>(sub: &S) -> Vec<u32> {
    let n = sub.node_count();
    let mut in_deg = vec![0u32; n];
    for v in 0..n as u32 {
        for &t in sub.influence(v).iter().chain(sub.trading(v)) {
            in_deg[t as usize] += 1;
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (in_deg[v as usize], std::cmp::Reverse(sub.out_degree(v)), v));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtpiin::subtpiin_from_arcs;

    #[test]
    fn indegree_ascending_then_outdegree_descending() {
        // Node 0: in 0, out 2. Node 1: in 0, out 1. Node 2: in 2, out 1.
        // Node 3: in 2, out 0.
        let sub = subtpiin_from_arcs(
            4,
            &[(0, 2), (0, 3), (1, 2)],
            &[(2, 3)],
            vec![true, true, false, false],
        );
        let order = listd_order(&sub);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ties_break_by_node_id() {
        let sub = subtpiin_from_arcs(2, &[], &[], vec![true, true]);
        assert_eq!(listd_order(&sub), vec![0, 1]);
    }
}
