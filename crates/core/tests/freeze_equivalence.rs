//! Property-based round-trip testing of the CSR freeze: on random
//! registries, the frozen [`tpiin_graph::CsrGraph`] must agree with the
//! hash-map `DiGraph` algorithms it replaced — identical strongly
//! connected components, identical weak components, and (through the
//! nested-adjacency reference shards) identical detected group sets.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tpiin_core::{segment_tpiin, segment_tpiin_nested, Detector};
use tpiin_fusion::fuse;
use tpiin_graph::{csr_index, tarjan_scc, weakly_connected_components, NodeId};
use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

/// Random but always-valid registry (same scheme as
/// `random_equivalence.rs`): every company gets a legal person, then
/// random directorships, kinship, investments (cycles allowed) and
/// trades.
#[derive(Debug, Clone)]
struct RawRegistry {
    np: usize,
    nc: usize,
    lp_of: Vec<usize>,
    directorships: Vec<(usize, usize)>,
    kinship: Vec<(usize, usize)>,
    investments: Vec<(usize, usize)>,
    trades: Vec<(usize, usize)>,
}

fn arb_registry() -> impl Strategy<Value = RawRegistry> {
    (2usize..6, 2usize..10).prop_flat_map(|(np, nc)| {
        (
            proptest::collection::vec(0..np, nc),
            proptest::collection::vec((0..np, 0..nc), 0..8),
            proptest::collection::vec((0..np, 0..np), 0..4),
            proptest::collection::vec((0..nc, 0..nc), 0..12),
            proptest::collection::vec((0..nc, 0..nc), 0..10),
        )
            .prop_map(
                move |(lp_of, directorships, kinship, investments, trades)| RawRegistry {
                    np,
                    nc,
                    lp_of,
                    directorships,
                    kinship,
                    investments,
                    trades,
                },
            )
    })
}

fn build(raw: &RawRegistry) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let persons: Vec<_> = (0..raw.np)
        .map(|i| r.add_person(format!("P{i}"), RoleSet::of(&[Role::Ceo, Role::Director])))
        .collect();
    let companies: Vec<_> = (0..raw.nc)
        .map(|i| r.add_company(format!("C{i}")))
        .collect();
    for (c, &p) in raw.lp_of.iter().enumerate() {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for &(p, c) in &raw.directorships {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    for &(a, b) in &raw.kinship {
        if a != b {
            r.add_interdependence(persons[a], persons[b], InterdependenceKind::Kinship);
        }
    }
    for &(a, b) in &raw.investments {
        if a != b {
            r.add_investment(InvestmentRecord {
                investor: companies[a],
                investee: companies[b],
                share: 0.5,
            });
        }
    }
    for &(a, b) in &raw.trades {
        if a != b {
            r.add_trading(TradingRecord {
                seller: companies[a],
                buyer: companies[b],
                volume: 1.0,
            });
        }
    }
    r
}

/// Canonical form of a node partition: set of sorted member sets.
fn canonical(components: Vec<Vec<NodeId>>) -> BTreeSet<Vec<u32>> {
    components
        .into_iter()
        .map(|mut c| {
            c.sort();
            c.into_iter().map(csr_index).collect()
        })
        .collect()
}

/// Canonical form of a CSR label vector: set of sorted member sets.
fn canonical_labels(labels: &[u32], count: usize) -> BTreeSet<Vec<u32>> {
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); count];
    for (v, &label) in labels.iter().enumerate() {
        groups[label as usize].push(v as u32);
    }
    groups.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `freeze()` preserves strongly connected components exactly.
    #[test]
    fn frozen_sccs_match_digraph_sccs(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let csr = tpiin.graph.freeze();
        let frozen: BTreeSet<Vec<u32>> = csr
            .tarjan_scc(0)
            .into_iter()
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        prop_assert_eq!(canonical(tarjan_scc(&tpiin.graph)), frozen);
    }

    /// `freeze()` preserves weak components exactly.
    #[test]
    fn frozen_weak_components_match_digraph(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let csr = tpiin.graph.freeze();
        let (dg_labels, dg_count) = weakly_connected_components(&tpiin.graph);
        let (csr_labels, csr_count) = csr.weak_components(0);
        prop_assert_eq!(
            canonical_labels(&dg_labels, dg_count),
            canonical_labels(&csr_labels, csr_count)
        );
    }

    /// CSR segmentation + detection equals the nested-adjacency reference
    /// path end to end: same shard partition, same ordered group keys.
    #[test]
    fn csr_detection_round_trips_against_nested(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let csr_shards = segment_tpiin(&tpiin);
        let nested_shards = segment_tpiin_nested(&tpiin);
        prop_assert_eq!(csr_shards.len(), nested_shards.len());
        for (c, n) in csr_shards.iter().zip(&nested_shards) {
            prop_assert_eq!(&c.global, &n.global);
        }
        let detector = Detector::default();
        let via_csr = detector.detect_segmented(&tpiin, &csr_shards);
        let via_nested = detector.detect_segmented(&tpiin, &nested_shards);
        let keys = |r: &tpiin_core::DetectionResult| -> Vec<_> {
            r.groups.iter().map(|g| g.key()).collect()
        };
        prop_assert_eq!(keys(&via_csr), keys(&via_nested));
        prop_assert_eq!(
            &via_csr.suspicious_trading_arcs,
            &via_nested.suspicious_trading_arcs
        );
    }
}
