//! Property test of the pattern matcher alone: on random antecedent DAGs
//! with random trading arcs, `match_root` must produce exactly the trail
//! pairs a brute-force enumerator finds (per root), and the patterns tree
//! must enumerate exactly the DAG's trails.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tpiin_core::{match_root, subtpiin_from_arcs, PatternsTree, SubTpiin};

#[derive(Clone, Debug)]
struct RawSub {
    n: usize,
    influence: Vec<(u32, u32)>, // low -> high index: a DAG
    trading: Vec<(u32, u32)>,
}

fn arb_sub() -> impl Strategy<Value = RawSub> {
    (3usize..9).prop_flat_map(|n| {
        let arcs = proptest::collection::vec((0..n as u32, 0..n as u32), 0..14);
        let trades = proptest::collection::vec((0..n as u32, 0..n as u32), 0..8);
        (arcs, trades).prop_map(move |(raw_arcs, raw_trades)| {
            let mut influence: Vec<(u32, u32)> = raw_arcs
                .into_iter()
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect();
            influence.sort_unstable();
            influence.dedup();
            let mut trading: Vec<(u32, u32)> =
                raw_trades.into_iter().filter(|&(a, b)| a != b).collect();
            trading.sort_unstable();
            trading.dedup();
            RawSub {
                n,
                influence,
                trading,
            }
        })
    })
}

fn build(raw: &RawSub) -> SubTpiin {
    subtpiin_from_arcs(raw.n, &raw.influence, &raw.trading, vec![false; raw.n])
}

/// All influence trails from `start`, brute force.
fn all_trails(raw: &RawSub, start: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut stack = vec![vec![start]];
    while let Some(trail) = stack.pop() {
        out.push(trail.clone());
        let tip = *trail.last().unwrap();
        for &(a, b) in &raw.influence {
            if a == tip && !trail.contains(&b) {
                let mut next = trail.clone();
                next.push(b);
                stack.push(next);
            }
        }
    }
    out
}

type GroupSig = (Vec<u32>, u32, Vec<u32>, bool);

/// Brute-force group enumeration for one root: every pair (trail ending
/// at x + trading arc x->c, trail ending at c), plus circles.
fn brute_force_root(raw: &RawSub, root: u32) -> BTreeSet<GroupSig> {
    let trails = all_trails(raw, root);
    let mut out = BTreeSet::new();
    let mut circles: BTreeSet<Vec<u32>> = BTreeSet::new();
    for t1 in &trails {
        let x = *t1.last().unwrap();
        for &(a, c) in &raw.trading {
            if a != x {
                continue;
            }
            if let Some(pos) = t1.iter().position(|&v| v == c) {
                // Circle: dedup by circle nodes.
                let circle = t1[pos..].to_vec();
                if circles.insert(circle.clone()) {
                    out.insert((circle, c, vec![c], true));
                }
                continue;
            }
            for t2 in &trails {
                if *t2.last().unwrap() == c {
                    out.insert((t1.clone(), c, t2.clone(), false));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matcher_equals_brute_force_per_root(raw in arb_sub()) {
        let sub = build(&raw);
        for root in sub.roots().collect::<Vec<_>>() {
            let tree = PatternsTree::build(&sub, root, usize::MAX).unwrap();
            let mut found: BTreeSet<GroupSig> = BTreeSet::new();
            match_root(&sub, &tree, |g| {
                found.insert((g.prefix.to_vec(), g.target, g.plain.to_vec(), g.circle));
            });
            let expected = brute_force_root(&raw, root);
            prop_assert_eq!(&found, &expected, "root {}", root);
        }
    }

    #[test]
    fn tree_enumerates_exactly_the_dag_trails(raw in arb_sub()) {
        let sub = build(&raw);
        for root in sub.roots().collect::<Vec<_>>() {
            let tree = PatternsTree::build(&sub, root, usize::MAX).unwrap();
            let mut from_tree: Vec<Vec<u32>> =
                (0..tree.nodes.len() as u32).map(|t| tree.trail(t)).collect();
            let mut brute = all_trails(&raw, root);
            from_tree.sort();
            brute.sort();
            prop_assert_eq!(from_tree, brute);
        }
    }

    #[test]
    fn b_leaves_count_trading_continuations(raw in arb_sub()) {
        // Each trail ending at x contributes one type-(b) leaf per trading
        // arc out of x.
        let sub = build(&raw);
        for root in sub.roots().collect::<Vec<_>>() {
            let tree = PatternsTree::build(&sub, root, usize::MAX).unwrap();
            let expected: usize = all_trails(&raw, root)
                .iter()
                .map(|t| {
                    let tip = *t.last().unwrap();
                    raw.trading.iter().filter(|&&(a, _)| a == tip).count()
                })
                .sum();
            prop_assert_eq!(tree.b_leaves.len(), expected);
        }
    }
}
