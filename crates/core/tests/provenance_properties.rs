//! Property tests for group provenance: on random valid registries,
//! every arc and node a mined group's [`Provenance`] references must
//! exist in the fused TPIIN, every resolved source-record sequence must
//! point into the corresponding source feed, and the score breakdown
//! must agree with `score_group` term by term.

use proptest::prelude::*;
use tpiin_core::{detect, score_group, Provenance};
use tpiin_fusion::ArcColor;
use tpiin_model::{
    CompanyId, InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, PersonId,
    Role, RoleSet, SourceRegistry, TradingRecord,
};

#[derive(Clone, Debug)]
struct RawRegistry {
    n: usize,
    kin: Vec<(u32, u32)>,
    investments: Vec<(u32, u32, f64)>,
    trades: Vec<(u32, u32, f64)>,
}

/// Random registries that always pass fusion validation: person `i` is
/// the legal-person CEO of company `i`, then random kinship edges,
/// investments and trades on top.
fn arb_registry() -> impl Strategy<Value = RawRegistry> {
    (2usize..8).prop_flat_map(|n| {
        let pair = || (0..n as u32, 0..n as u32);
        let kin = proptest::collection::vec(pair(), 0..4);
        let investments = proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f64..1.0), 0..8);
        let trades = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..100.0), 0..8);
        (kin, investments, trades).prop_map(move |(kin, investments, trades)| RawRegistry {
            n,
            kin: kin.into_iter().filter(|&(a, b)| a != b).collect(),
            investments: investments
                .into_iter()
                .filter(|&(a, b, _)| a != b)
                .collect(),
            trades: trades.into_iter().filter(|&(a, b, _)| a != b).collect(),
        })
    })
}

fn build(raw: &RawRegistry) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    for i in 0..raw.n {
        let p = r.add_person(format!("L{i}"), RoleSet::of(&[Role::Ceo]));
        let c = r.add_company(format!("C{i}"));
        r.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for &(a, b) in &raw.kin {
        r.add_interdependence(PersonId(a), PersonId(b), InterdependenceKind::Kinship);
    }
    for &(a, b, share) in &raw.investments {
        r.add_investment(InvestmentRecord {
            investor: CompanyId(a),
            investee: CompanyId(b),
            share,
        });
    }
    for &(a, b, volume) in &raw.trades {
        r.add_trading(TradingRecord {
            seller: CompanyId(a),
            buyer: CompanyId(b),
            volume,
        });
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_provenance_arc_exists_in_the_tpiin(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = tpiin_fusion::fuse(&registry).expect("constructed registries are valid");
        let result = detect(&tpiin);
        prop_assert_eq!(result.provenances.len(), result.groups.len());
        let influence_feed = registry.influences().len() + registry.investments().len();
        let trading_feed = registry.tradings().len();
        for (group, prov) in result.groups.iter().zip(&result.provenances) {
            // Self-audit: every referenced node and arc resolves.
            prop_assert!(prov.audit(&tpiin).is_ok(), "{:?}", prov.audit(&tpiin));
            // Influence arcs physically present, with in-range sources.
            for arc in &prov.influence_arcs {
                prop_assert_eq!(arc.color, ArcColor::Influence);
                let found = tpiin.graph.out_edges(arc.source).any(|e| {
                    e.target == arc.target && e.weight.color == ArcColor::Influence
                });
                prop_assert!(found, "influence arc {} -> {} missing", arc.source, arc.target);
                let seq = arc.source_record.expect("fused arcs carry sources");
                prop_assert!((seq as usize) < influence_feed, "seq {seq} out of feed");
            }
            if let Some(seq) = prov.trading_arc.source_record {
                prop_assert!((seq as usize) < trading_feed);
                // The winning trading record maps exactly onto the arc.
                let record = &registry.tradings()[seq as usize];
                prop_assert_eq!(
                    tpiin.company_node[record.seller.index()],
                    prov.trading_arc.source
                );
                prop_assert_eq!(
                    tpiin.company_node[record.buyer.index()],
                    prov.trading_arc.target
                );
            }
            // Score terms agree with score_group.
            let s = score_group(&tpiin, group);
            prop_assert!((prov.score.chain_strength - s.chain_strength).abs() < 1e-9);
            prop_assert!((prov.score.trade_volume - s.trade_volume).abs() < 1e-9);
            prop_assert!((prov.score.score - s.score).abs() < 1e-9);
        }
    }

    #[test]
    fn provenance_is_identical_across_thread_counts(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = tpiin_fusion::fuse(&registry).expect("valid");
        let serial = detect(&tpiin);
        let parallel = tpiin_core::Detector::new(tpiin_core::DetectorConfig {
            threads: 4,
            serial_cutoff: 0,
            batch_min_cost: 1,
            clamp_to_host: false,
            ..Default::default()
        })
        .detect(&tpiin);
        prop_assert_eq!(&serial.provenances, &parallel.provenances);
    }

}

#[test]
fn provenance_assemble_matches_detection_fill() {
    let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
    let result = detect(&tpiin);
    for (group, prov) in result.groups.iter().zip(&result.provenances) {
        assert_eq!(prov, &Provenance::assemble(&tpiin, group));
    }
}
