//! Differential and recall tests for the `GroupMiner` strategy API.
//!
//! * The trait-ported Rule 1/Rule 2 miner must be **bit-identical** to
//!   the pre-refactor `Detector` entry point on fig7 and the province
//!   workload, in both the serial and the forced work-stealing
//!   configuration (the acceptance bar of the API redesign).
//! * The two sibling strategies must find **100 %** of the patterns the
//!   datagen scenarios plant, and **zero** groups on the pattern-free
//!   controls.

use tpiin_core::{
    BaselineMiner, CircularTradingMiner, Detector, DetectorConfig, GroupMiner, MineContext,
    MinerRegistry, Rule12Miner, WindowedMiner,
};
use tpiin_datagen::{
    add_random_trading, circular_case_registry, circular_control_registry, fig7_registry,
    generate_province, windowed_case_registry, ProvinceConfig, CIRCULAR_RING_LEN, WINDOWED_EARLY,
    WINDOWED_LATE, WINDOWED_QUIET,
};
use tpiin_fusion::{fuse, Tpiin};
use tpiin_model::SourceRegistry;

fn fused(registry: &SourceRegistry) -> Tpiin {
    let (tpiin, _) = fuse(registry).expect("registry fuses");
    tpiin
}

fn province_tpiin() -> Tpiin {
    let mut registry = generate_province(&ProvinceConfig::scaled(0.25));
    add_random_trading(&mut registry, 0.004, 20170417);
    fused(&registry)
}

/// Serial and forced-stealing detector configurations — the stealing
/// one drops every adaptive cutoff so four workers really run.
fn arm_configs() -> [DetectorConfig; 2] {
    [
        DetectorConfig {
            threads: 1,
            ..DetectorConfig::default()
        },
        DetectorConfig {
            threads: 4,
            serial_cutoff: 0,
            batch_min_cost: 1,
            clamp_to_host: false,
            ..DetectorConfig::default()
        },
    ]
}

#[test]
fn rules_miner_is_bit_identical_to_detector_on_fig7_and_province() {
    for tpiin in [fused(&fig7_registry()), province_tpiin()] {
        for config in arm_configs() {
            let direct = Detector::new(config).detect(&tpiin);
            let mined = Rule12Miner.mine(&tpiin, &MineContext::with_config(config));
            assert_eq!(direct.groups, mined.groups, "group vectors must match");
            assert_eq!(
                direct.suspicious_trading_arcs,
                mined.suspicious_trading_arcs
            );
            assert_eq!(direct.complex_group_count, mined.complex_group_count);
            assert_eq!(direct.simple_group_count, mined.simple_group_count);
            assert_eq!(direct.per_subtpiin, mined.per_subtpiin);
            assert_eq!(direct.provenances.len(), mined.provenances.len());
        }
    }
}

#[test]
fn baseline_miner_matches_rules_miner_group_set_on_fig7() {
    let tpiin = fused(&fig7_registry());
    let ctx = MineContext::default();
    let rules = Rule12Miner.mine(&tpiin, &ctx);
    let base = BaselineMiner::default().mine(&tpiin, &ctx);
    let mut rules_keys: Vec<_> = rules.groups.iter().map(|g| g.key()).collect();
    rules_keys.sort();
    let base_keys: Vec<_> = base.groups.iter().map(|g| g.key()).collect();
    assert_eq!(rules_keys, base_keys, "baseline sorts by canonical key");
    assert_eq!(rules.suspicious_trading_arcs, base.suspicious_trading_arcs);
}

#[test]
fn circular_miner_recalls_the_planted_ring_and_nothing_else() {
    let ctx = MineContext {
        tax_rates: circular_case_registry().company_tax_rates(),
        ..MineContext::default()
    };
    let planted = CircularTradingMiner::default().mine(&fused(&circular_case_registry()), &ctx);
    assert_eq!(planted.group_count(), 1, "exactly the planted ring");
    let ring = &planted.groups[0];
    assert_eq!(ring.trail_with_trade.len(), CIRCULAR_RING_LEN);
    assert!(!planted.overflowed);

    let control = CircularTradingMiner::default().mine(&fused(&circular_control_registry()), &ctx);
    assert_eq!(control.group_count(), 0, "no cycle in the control");
}

#[test]
fn circular_miner_scores_the_planted_ring_by_rate_differential() {
    let registry = circular_case_registry();
    let tpiin = fused(&registry);
    let miner = CircularTradingMiner::default();
    let rated = MineContext {
        tax_rates: registry.company_tax_rates(),
        ..MineContext::default()
    };
    let result = miner.mine(&tpiin, &rated);
    // Rates 0.05/0.17/0.25/0.13 around the ring: |Δ| sums to 0.40.
    let score = miner.score(&tpiin, &rated, &result.groups[0]);
    assert!((score - 0.40).abs() < 1e-9, "differential was {score}");
    let flat = MineContext::default();
    assert_eq!(miner.score(&tpiin, &flat, &result.groups[0]), 0.0);
}

#[test]
fn windowed_miner_recalls_only_its_windows_group() {
    let tpiin = fused(&windowed_case_registry());
    let ctx = MineContext::default();
    let full = Rule12Miner.mine(&tpiin, &ctx);
    assert_eq!(full.group_count(), 2, "scenario plants two groups");

    let mine_window = |(start, end): (u32, u32)| {
        WindowedMiner::new(Box::new(Rule12Miner), start, end).mine(&tpiin, &ctx)
    };
    let early = mine_window(WINDOWED_EARLY);
    assert_eq!(early.group_count(), 1);
    assert_eq!(tpiin.label(early.groups[0].trading_arc.0), "EA1");
    let late = mine_window(WINDOWED_LATE);
    assert_eq!(late.group_count(), 1);
    assert_eq!(tpiin.label(late.groups[0].trading_arc.0), "TB1");
    let quiet = mine_window(WINDOWED_QUIET);
    assert_eq!(quiet.group_count(), 0, "background trade forms no group");
    let whole = mine_window((0, 3));
    assert_eq!(whole.group_count(), 2, "the full window sees both");
}

#[test]
fn windowed_rules_equals_plain_rules_when_the_window_covers_the_feed() {
    let tpiin = fused(&fig7_registry());
    let ctx = MineContext::default();
    let plain = Rule12Miner.mine(&tpiin, &ctx);
    let windowed = WindowedMiner::new(Box::new(Rule12Miner), 0, u32::MAX - 1).mine(&tpiin, &ctx);
    let mut plain_keys: Vec<_> = plain.groups.iter().map(|g| g.key()).collect();
    let mut win_keys: Vec<_> = windowed.groups.iter().map(|g| g.key()).collect();
    plain_keys.sort();
    win_keys.sort();
    assert_eq!(plain_keys, win_keys);
}

#[test]
fn registry_mine_all_runs_every_strategy_deterministically() {
    let tpiin = fused(&circular_case_registry());
    let registry = MinerRegistry::from_specs(["rules", "circular", "windowed:circular@0..9"])
        .expect("specs parse");
    let ctx = MineContext::default();
    let a = registry.mine_all(&tpiin, &ctx);
    let b = registry.mine_all(&tpiin, &ctx);
    assert_eq!(a.len(), 3);
    for ((name_a, ra), (name_b, rb)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(ra.groups, rb.groups, "{name_a} must be deterministic");
    }
    assert_eq!(a[0].1.group_count(), 0, "no Rule 1/2 pattern planted");
    assert_eq!(a[1].1.group_count(), 1, "the ring");
    assert_eq!(a[2].1.group_count(), 1, "every ring trade falls in 0..9");
}
