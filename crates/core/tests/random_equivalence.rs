//! Property-based differential testing: on random registries the proposed
//! detector must agree exactly with the independent global-traversal
//! baseline (the Table 1 accuracy claim), and all detector configurations
//! must agree with each other.

use proptest::prelude::*;
use tpiin_core::baseline::detect_baseline;
use tpiin_core::{detect, Detector, DetectorConfig};
use tpiin_fusion::fuse;
use tpiin_graph::NodeId;
use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

/// A randomly generated but always-valid registry: `np` persons, `nc`
/// companies, each company gets a legal person, then random investments
/// (cycles allowed — fusion contracts them), directorships, kinship and
/// trading arcs.
#[derive(Debug, Clone)]
struct RawRegistry {
    np: usize,
    nc: usize,
    lp_of: Vec<usize>,                  // company -> person serving as LP
    directorships: Vec<(usize, usize)>, // (person, company)
    kinship: Vec<(usize, usize)>,       // person pairs
    investments: Vec<(usize, usize)>,   // company pairs (may form cycles)
    trades: Vec<(usize, usize)>,        // company pairs
}

fn arb_registry() -> impl Strategy<Value = RawRegistry> {
    (2usize..6, 2usize..10).prop_flat_map(|(np, nc)| {
        (
            proptest::collection::vec(0..np, nc),
            proptest::collection::vec((0..np, 0..nc), 0..8),
            proptest::collection::vec((0..np, 0..np), 0..4),
            proptest::collection::vec((0..nc, 0..nc), 0..12),
            proptest::collection::vec((0..nc, 0..nc), 0..10),
        )
            .prop_map(
                move |(lp_of, directorships, kinship, investments, trades)| RawRegistry {
                    np,
                    nc,
                    lp_of,
                    directorships,
                    kinship,
                    investments,
                    trades,
                },
            )
    })
}

fn build(raw: &RawRegistry) -> SourceRegistry {
    let mut r = SourceRegistry::new();
    let persons: Vec<_> = (0..raw.np)
        .map(|i| r.add_person(format!("P{i}"), RoleSet::of(&[Role::Ceo, Role::Director])))
        .collect();
    let companies: Vec<_> = (0..raw.nc)
        .map(|i| r.add_company(format!("C{i}")))
        .collect();
    for (c, &p) in raw.lp_of.iter().enumerate() {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
    }
    for &(p, c) in &raw.directorships {
        r.add_influence(InfluenceRecord {
            person: persons[p],
            company: companies[c],
            kind: InfluenceKind::DirectorOf,
            is_legal_person: false,
        });
    }
    for &(a, b) in &raw.kinship {
        if a != b {
            r.add_interdependence(persons[a], persons[b], InterdependenceKind::Kinship);
        }
    }
    for &(a, b) in &raw.investments {
        if a != b {
            r.add_investment(InvestmentRecord {
                investor: companies[a],
                investee: companies[b],
                share: 0.5,
            });
        }
    }
    for &(a, b) in &raw.trades {
        if a != b {
            r.add_trading(TradingRecord {
                seller: companies[a],
                buyer: companies[b],
                volume: 1.0,
            });
        }
    }
    r
}

type Key = ((NodeId, NodeId), Vec<NodeId>, Vec<NodeId>);

fn sorted_keys(groups: &[tpiin_core::SuspiciousGroup]) -> Vec<Key> {
    let mut keys: Vec<Key> = groups.iter().map(|g| g.key()).collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn detector_agrees_with_baseline(raw in arb_registry()) {
        let registry = build(&raw);
        prop_assert!(registry.validate().is_ok());
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let proposed = detect(&tpiin);
        let baseline = detect_baseline(&tpiin, 1_000_000);
        prop_assert!(!baseline.overflowed);
        prop_assert_eq!(sorted_keys(&proposed.groups), sorted_keys(&baseline.groups));
        prop_assert_eq!(&proposed.suspicious_trading_arcs, &baseline.suspicious_trading_arcs);
        // The unrestricted Definition-2 count never undershoots the
        // anchored count minus circles (completeness sanity).
        prop_assert!(baseline.all_start_group_count >= proposed.groups.iter()
            .filter(|g| g.kind == tpiin_core::GroupKind::Matched).count());
    }

    #[test]
    fn parallel_and_counting_configs_agree(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let serial = detect(&tpiin);
        let parallel = Detector::new(DetectorConfig { threads: 3, ..Default::default() })
            .detect(&tpiin);
        let counting = Detector::new(DetectorConfig { collect_groups: false, ..Default::default() })
            .detect(&tpiin);
        prop_assert_eq!(sorted_keys(&serial.groups), sorted_keys(&parallel.groups));
        prop_assert_eq!(serial.complex_group_count, counting.complex_group_count);
        prop_assert_eq!(serial.simple_group_count, counting.simple_group_count);
        prop_assert_eq!(&serial.suspicious_trading_arcs, &counting.suspicious_trading_arcs);
    }

    #[test]
    fn group_invariants_hold(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let result = detect(&tpiin);
        prop_assert_eq!(result.group_count(), result.groups.len());
        for g in &result.groups {
            // Exactly one trading arc, incoming to the end node.
            prop_assert_eq!(g.trading_arc.1, g.end);
            prop_assert_eq!(*g.trail_with_trade.last().unwrap(), g.trading_arc.0);
            // Both trails start at the antecedent.
            prop_assert_eq!(g.trail_with_trade[0], g.antecedent);
            prop_assert_eq!(g.trail_plain[0], g.antecedent);
            // Trails are simple (no repeated nodes).
            for trail in [&g.trail_with_trade, &g.trail_plain] {
                let set: std::collections::HashSet<_> = trail.iter().collect();
                prop_assert_eq!(set.len(), trail.len(), "trail repeats a node");
            }
            // The simple flag matches Definition 3.
            if g.kind == tpiin_core::GroupKind::Matched {
                let interior1: std::collections::HashSet<_> =
                    g.trail_with_trade[1..].iter().collect();
                let plain = &g.trail_plain;
                let interior2: std::collections::HashSet<_> =
                    plain[1..plain.len() - 1].iter().collect();
                prop_assert_eq!(interior1.is_disjoint(&interior2), g.simple);
                // The end node never appears on the trading trail's prefix.
                prop_assert!(!g.trail_with_trade.contains(&g.end));
            }
            // Every arc of both trails exists in the TPIIN with the right
            // color.
            for pair in g.trail_with_trade.windows(2) {
                prop_assert!(tpiin.graph.out_edges(pair[0]).any(|e| e.target == pair[1]
                    && e.weight.color == tpiin_fusion::ArcColor::Influence));
            }
            prop_assert!(tpiin
                .graph
                .out_edges(g.trading_arc.0)
                .any(|e| e.target == g.trading_arc.1
                    && e.weight.color == tpiin_fusion::ArcColor::Trading));
        }
        // Suspicious arcs are exactly the arcs appearing in groups plus
        // intra-syndicate trades.
        let mut from_groups: std::collections::BTreeSet<(NodeId, NodeId)> =
            result.groups.iter().map(|g| g.trading_arc).collect();
        for t in &tpiin.intra_syndicate_trades {
            from_groups.insert((
                tpiin.company_node[t.seller.index()],
                tpiin.company_node[t.buyer.index()],
            ));
        }
        prop_assert_eq!(&from_groups, &result.suspicious_trading_arcs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concatenating per-shard [`tpiin_core::mine_shard`] outcomes
    /// (remapped from local to global coordinates) reproduces the global
    /// detector's group sequence exactly — the invariant the delta
    /// engine's shard cache rests on.
    #[test]
    fn shard_outcomes_concatenate_to_global_detection(raw in arb_registry()) {
        let registry = build(&raw);
        let (tpiin, _) = fuse(&registry).expect("valid registry fuses");
        let global = detect(&tpiin);
        let subs = tpiin_core::segment_tpiin(&tpiin);
        let config = DetectorConfig::default();
        let mut groups = Vec::new();
        let mut overflowed = false;
        for sub in &subs {
            let out = tpiin_core::mine_shard(sub, &config);
            overflowed |= out.overflowed;
            for mut g in out.groups {
                use tpiin_core::ShardTopology;
                let map = |v: NodeId| sub.global(v.index() as u32);
                g.antecedent = map(g.antecedent);
                g.end = map(g.end);
                g.trading_arc = (map(g.trading_arc.0), map(g.trading_arc.1));
                for v in g.trail_with_trade.iter_mut().chain(g.trail_plain.iter_mut()) {
                    *v = map(*v);
                }
                groups.push(g);
            }
        }
        prop_assert_eq!(overflowed, global.overflowed);
        let keys: Vec<Key> = groups.iter().map(|g| g.key()).collect();
        let global_keys: Vec<Key> = global.groups.iter().map(|g| g.key()).collect();
        prop_assert_eq!(keys, global_keys, "same groups in the same order");
    }
}
