//! Structural property checks used to validate fusion-stage invariants.
//!
//! Appendix A of the paper states properties that each intermediate graph
//! must satisfy (e.g. `G2` and `G12'` are bipartite with Person indegree 0
//! and Company outdegree 0).  The fusion pipeline asserts these via the
//! helpers here, so a violation in source data surfaces as a typed error
//! instead of silently corrupting detection results.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

/// Violation found by [`check_bipartite`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BipartiteViolation {
    /// The offending edge's source node.
    pub source: NodeId,
    /// The offending edge's target node.
    pub target: NodeId,
}

impl std::fmt::Display for BipartiteViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edge {:?} -> {:?} does not go from the left class to the right class",
            self.source, self.target
        )
    }
}

impl std::error::Error for BipartiteViolation {}

/// Checks that every edge goes from a "left" node to a "right" node, where
/// `is_left` classifies nodes.  This is the directed-bipartite property of
/// the influence graph `G2`: every arc runs Person -> Company.
pub fn check_bipartite<N, E>(
    graph: &DiGraph<N, E>,
    mut is_left: impl FnMut(NodeId, &N) -> bool,
) -> Result<(), BipartiteViolation> {
    let left: Vec<bool> = graph.nodes().map(|(id, w)| is_left(id, w)).collect();
    for edge in graph.edges() {
        if !left[edge.source.index()] || left[edge.target.index()] {
            return Err(BipartiteViolation {
                source: edge.source,
                target: edge.target,
            });
        }
    }
    Ok(())
}

/// Aggregate degree statistics of a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeSummary {
    /// Number of nodes with indegree zero (the pattern-tree roots of
    /// Algorithm 2).
    pub indegree_zero: usize,
    /// Number of nodes with outdegree zero (Rule 1 stop nodes).
    pub outdegree_zero: usize,
    /// Maximum outdegree over all nodes.
    pub max_out_degree: usize,
    /// Maximum indegree over all nodes.
    pub max_in_degree: usize,
    /// `edge_count / node_count` — the paper's "average node degree"
    /// column of Table 1 (arcs per node).
    pub mean_degree: f64,
}

/// Computes a [`DegreeSummary`] for `graph`.
pub fn degree_summary<N, E>(graph: &DiGraph<N, E>) -> DegreeSummary {
    let mut s = DegreeSummary::default();
    for v in graph.node_ids() {
        let ind = graph.in_degree(v);
        let outd = graph.out_degree(v);
        if ind == 0 {
            s.indegree_zero += 1;
        }
        if outd == 0 {
            s.outdegree_zero += 1;
        }
        s.max_in_degree = s.max_in_degree.max(ind);
        s.max_out_degree = s.max_out_degree.max(outd);
    }
    if graph.node_count() > 0 {
        s.mean_degree = graph.edge_count() as f64 / graph.node_count() as f64;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_person_to_company_passes() {
        // nodes 0,1 "persons"; 2,3 "companies"; arcs person->company only.
        let mut g: DiGraph<bool, ()> = DiGraph::new();
        let p0 = g.add_node(true);
        let p1 = g.add_node(true);
        let c0 = g.add_node(false);
        let c1 = g.add_node(false);
        g.add_edge(p0, c0, ());
        g.add_edge(p1, c1, ());
        assert!(check_bipartite(&g, |_, &is_person| is_person).is_ok());
    }

    #[test]
    fn company_to_company_arc_violates_g2_property() {
        let mut g: DiGraph<bool, ()> = DiGraph::new();
        let c0 = g.add_node(false);
        let c1 = g.add_node(false);
        g.add_edge(c0, c1, ());
        let err = check_bipartite(&g, |_, &is_person| is_person).unwrap_err();
        assert_eq!(err.source, c0);
        assert_eq!(err.target, c1);
        assert!(err.to_string().contains("left class"));
    }

    #[test]
    fn person_to_person_arc_is_also_a_violation() {
        let mut g: DiGraph<bool, ()> = DiGraph::new();
        let p0 = g.add_node(true);
        let p1 = g.add_node(true);
        g.add_edge(p0, p1, ());
        assert!(check_bipartite(&g, |_, &is_person| is_person).is_err());
    }

    #[test]
    fn degree_summary_on_diamond() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[0], n[2], ());
        g.add_edge(n[1], n[3], ());
        g.add_edge(n[2], n[3], ());
        let s = degree_summary(&g);
        assert_eq!(s.indegree_zero, 1);
        assert_eq!(s.outdegree_zero, 1);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_summary_on_empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let s = degree_summary(&g);
        assert_eq!(s, DegreeSummary::default());
    }
}
