//! Dense integer identifiers for nodes and edges.
//!
//! Both identifiers wrap a `u32`: TPIIN instances in the paper's evaluation
//! top out at a few thousand nodes and ~600 k arcs, and a `u32` keeps
//! side-table entries half the size of `usize` on 64-bit targets (see the
//! "Smaller Integers" guidance in the Rust Performance Book).

use std::fmt;

/// Identifier of a node inside one [`crate::DiGraph`].
///
/// Ids are dense: the `k`-th added node receives index `k`.  They are only
/// meaningful relative to the graph that issued them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge inside one [`crate::DiGraph`].
///
/// Ids are dense: the `k`-th added edge receives index `k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Largest number of nodes a graph may hold.
    pub const MAX: usize = u32::MAX as usize;

    /// Creates an id from a raw index.
    ///
    /// Intended for rebuilding ids that were previously obtained from
    /// [`NodeId::index`]; constructing an id for a node that does not exist
    /// yields lookups that panic.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= Self::MAX);
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Largest number of edges a graph may hold.
    pub const MAX: usize = u32::MAX as usize;

    /// Creates an id from a raw index (see [`NodeId::from_index`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= Self::MAX);
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id:?}"), "n42");
        assert_eq!(format!("{id}"), "42");
    }

    #[test]
    fn edge_id_roundtrips_through_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id:?}"), "e7");
        assert_eq!(format!("{id}"), "7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
