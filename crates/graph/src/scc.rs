//! Iterative Tarjan strongly-connected-components algorithm.
//!
//! The paper contracts every strongly connected subgraph of the investment
//! graph `GI` into a company syndicate so that the antecedent network
//! `G123` becomes a DAG (Section 4.1, citing Tarjan 1972).  This module
//! provides the SCC decomposition; [`crate::Partition`] performs the
//! contraction.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

const UNVISITED: u32 = u32::MAX;

/// Computes the strongly connected components of `graph` using an
/// iterative Tarjan traversal.
///
/// Components are returned in **reverse topological order** of the
/// condensation (a property of Tarjan's algorithm): if component `A` has an
/// arc into component `B`, then `B` appears before `A`.  Node order inside
/// a component is unspecified but deterministic.
///
/// # Example
///
/// ```
/// use tpiin_graph::{DiGraph, tarjan_scc};
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ()); // mutual investment: one component
/// assert_eq!(tarjan_scc(&g).len(), 1);
/// ```
pub fn tarjan_scc<N, E>(graph: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS call stack: (node, next successor offset).
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in graph.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut next)) = call.last_mut() {
            if let Some(w) = graph.successors(v).nth(*next) {
                *next += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Dense component labelling derived from [`tarjan_scc`]: returns
/// `(labels, count)` where `labels[v]` identifies the SCC of node `v`.
///
/// Because Tarjan emits components in reverse topological order, the labels
/// are themselves a reverse topological numbering of the condensation.
pub fn condensation_partition<N, E>(graph: &DiGraph<N, E>) -> (Vec<u32>, usize) {
    let components = tarjan_scc(graph);
    let mut labels = vec![0u32; graph.node_count()];
    for (i, comp) in components.iter().enumerate() {
        for &v in comp {
            labels[v.index()] = i as u32;
        }
    }
    (labels, components.len())
}

/// Reusable scratch state for running Tarjan over node subsets of a flat
/// CSR adjacency (`offsets`/`targets` arrays, as produced by edge
/// counting + prefix sum).
///
/// The parallel fusion front-end decomposes the investment graph into
/// weak components and hands each worker a disjoint set of components.
/// Because a weak component is closed under edges, Tarjan never leaves
/// the subset it was started on, so every worker can run over the same
/// shared read-only CSR with its own `SccScratch`.  The scratch arrays
/// are sized for the full graph but never reset between calls: each node
/// belongs to exactly one subset, so its `visited` slot is written at
/// most once over the scratch's lifetime.
///
/// For every node of the subset the callback receives `(node, rep)`
/// where `rep` is the **minimum member** of the node's SCC.  Minimum-
/// member representatives are what make parallel and serial runs agree:
/// they depend only on the component's membership, never on traversal
/// order or on which worker ran the component.
#[derive(Debug)]
pub struct SccScratch {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    /// Explicit DFS call stack: (node, next successor offset).
    call: Vec<(u32, u32)>,
    next_index: u32,
}

impl SccScratch {
    /// Scratch for a CSR with `n` nodes.
    pub fn new(n: usize) -> Self {
        SccScratch {
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            call: Vec::new(),
            next_index: 0,
        }
    }

    /// Runs Tarjan over the nodes of `subset`, which must be closed under
    /// the CSR's edges (e.g. a union of weak components) and disjoint
    /// from every subset previously passed to this scratch.  Emits
    /// `(node, min_member_rep)` once per subset node, in unspecified but
    /// deterministic order.
    pub fn run(
        &mut self,
        offsets: &[u32],
        targets: &[u32],
        subset: &[u32],
        mut emit: impl FnMut(u32, u32),
    ) {
        let mut component: Vec<u32> = Vec::new();
        for &root in subset {
            if self.index[root as usize] != UNVISITED {
                continue;
            }
            self.visit(root);
            while let Some(&mut (v, ref mut next)) = self.call.last_mut() {
                let vi = v as usize;
                let succ = offsets[vi] + *next;
                if succ < offsets[vi + 1] {
                    *next += 1;
                    let w = targets[succ as usize];
                    let wi = w as usize;
                    if self.index[wi] == UNVISITED {
                        self.visit(w);
                    } else if self.on_stack[wi] {
                        self.lowlink[vi] = self.lowlink[vi].min(self.index[wi]);
                    }
                } else {
                    self.call.pop();
                    if let Some(&(parent, _)) = self.call.last() {
                        let pi = parent as usize;
                        self.lowlink[pi] = self.lowlink[pi].min(self.lowlink[vi]);
                    }
                    if self.lowlink[vi] == self.index[vi] {
                        component.clear();
                        loop {
                            let w = self.stack.pop().expect("tarjan stack underflow");
                            self.on_stack[w as usize] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let rep = *component.iter().min().expect("non-empty SCC");
                        for &w in &component {
                            emit(w, rep);
                        }
                    }
                }
            }
        }
    }

    fn visit(&mut self, v: u32) {
        self.index[v as usize] = self.next_index;
        self.lowlink[v as usize] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v as usize] = true;
        self.call.push((v, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from(edges: &[(usize, usize)], n: usize) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a], ids[b], ());
        }
        g
    }

    fn sorted_sets(mut comps: Vec<Vec<NodeId>>) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = comps
            .drain(..)
            .map(|c| {
                let mut v: Vec<usize> = c.into_iter().map(NodeId::index).collect();
                v.sort_unstable();
                v
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn dag_yields_singletons() {
        let g = graph_from(&[(0, 1), (1, 2)], 3);
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(sorted_sets(comps), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let g = graph_from(&[(0, 1), (1, 2), (2, 0)], 3);
        let comps = tarjan_scc(&g);
        assert_eq!(sorted_sets(comps), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn mutual_investment_pair_plus_tail() {
        // The paper's Fig. A-3 situation: two companies invest in each other.
        let g = graph_from(&[(0, 1), (1, 0), (1, 2)], 3);
        let comps = tarjan_scc(&g);
        assert_eq!(sorted_sets(comps), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn components_come_out_in_reverse_topological_order() {
        // 0 <-> 1 -> 2 <-> 3 ; component {2,3} must precede {0,1}.
        let g = graph_from(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4);
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 2);
        let first: Vec<usize> = comps[0].iter().map(|v| v.index()).collect();
        assert!(first.contains(&2) && first.contains(&3));
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let g = graph_from(&[(0, 0), (0, 1)], 2);
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn disconnected_nodes_each_form_a_component() {
        let g = graph_from(&[], 4);
        assert_eq!(tarjan_scc(&g).len(), 4);
    }

    #[test]
    fn condensation_labels_are_dense() {
        let g = graph_from(&[(0, 1), (1, 0), (2, 3)], 4);
        let (labels, count) = condensation_partition(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[3]);
        assert!(labels.iter().all(|&l| (l as usize) < count));
    }

    #[test]
    fn two_nested_cycles_sharing_a_node_merge() {
        // 0->1->2->0 and 1->3->1 share node 1 => one SCC of {0,1,2,3}.
        let g = graph_from(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 1)], 4);
        assert_eq!(sorted_sets(tarjan_scc(&g)), vec![vec![0, 1, 2, 3]]);
    }

    /// Builds the flat CSR used by [`SccScratch`] from an edge list.
    fn flat_csr(edges: &[(u32, u32)], n: usize) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32; n + 1];
        for &(s, _) in edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            targets[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        (offsets, targets)
    }

    fn scratch_reps(edges: &[(u32, u32)], n: usize, subsets: &[&[u32]]) -> Vec<u32> {
        let (offsets, targets) = flat_csr(edges, n);
        let mut scratch = SccScratch::new(n);
        let mut reps = vec![u32::MAX; n];
        for subset in subsets {
            scratch.run(&offsets, &targets, subset, |v, rep| reps[v as usize] = rep);
        }
        reps
    }

    #[test]
    fn scratch_matches_tarjan_on_full_graph() {
        let edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4)];
        let n = 6;
        let all: Vec<u32> = (0..n as u32).collect();
        let reps = scratch_reps(&edges, n, &[&all]);
        assert_eq!(reps, vec![0, 0, 2, 2, 4, 5]);
    }

    #[test]
    fn scratch_runs_per_component_without_reset() {
        // Two weak components: {0,1,2} with a cycle, {3,4} a path.  Run
        // them as separate subsets through ONE scratch — the second call
        // must not be confused by state left over from the first.
        let edges = [(0, 1), (1, 0), (1, 2), (3, 4)];
        let reps = scratch_reps(&edges, 5, &[&[0, 1, 2], &[3, 4]]);
        assert_eq!(reps, vec![0, 0, 2, 3, 4]);
    }

    #[test]
    fn scratch_reps_are_subset_order_independent() {
        let edges = [(0, 1), (1, 0), (2, 3), (3, 2)];
        let forward = scratch_reps(&edges, 4, &[&[0, 1], &[2, 3]]);
        let backward = scratch_reps(&edges, 4, &[&[2, 3], &[0, 1]]);
        let whole = scratch_reps(&edges, 4, &[&[0, 1, 2, 3]]);
        assert_eq!(forward, backward);
        assert_eq!(forward, whole);
    }

    #[test]
    fn large_path_graph_does_not_overflow_stack() {
        // 200k-node path: a recursive Tarjan would blow the stack.
        let n = 200_000;
        let mut g: DiGraph<(), ()> = DiGraph::with_capacity(n, n);
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        assert_eq!(tarjan_scc(&g).len(), n);
    }
}
