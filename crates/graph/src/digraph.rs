//! Append-only directed multigraph with typed node and edge payloads.

use crate::ids::{EdgeId, NodeId};

#[derive(Clone, Debug)]
struct EdgeSlot<E> {
    source: NodeId,
    target: NodeId,
    weight: E,
}

/// A borrowed view of one edge: its id, endpoints, and payload.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef<'g, E> {
    /// Identifier of the edge inside the owning graph.
    pub id: EdgeId,
    /// Tail of the arc.
    pub source: NodeId,
    /// Head of the arc.
    pub target: NodeId,
    /// Borrowed payload.
    pub weight: &'g E,
}

/// Edge-id adjacency rows in one of two layouts: growable per-node
/// vectors while a graph is built incrementally, or a flat offsets+ids
/// pair (CSR-style) produced by bulk construction.  The flat layout
/// costs two allocations total instead of one `Vec` per node, which is
/// what makes snapshot materialization allocation-lean; the first
/// incremental edge insertion thaws it back into nested rows.
#[derive(Clone, Debug)]
enum Adjacency {
    Nested(Vec<Vec<EdgeId>>),
    Flat { offsets: Vec<u32>, ids: Vec<EdgeId> },
}

impl Adjacency {
    /// The edge ids adjacent to node `v`, in insertion order.
    #[inline]
    fn row(&self, v: usize) -> &[EdgeId] {
        match self {
            Adjacency::Nested(rows) => &rows[v],
            Adjacency::Flat { offsets, ids } => &ids[offsets[v] as usize..offsets[v + 1] as usize],
        }
    }

    /// Appends an empty row for a freshly added node.
    fn push_node(&mut self) {
        match self {
            Adjacency::Nested(rows) => rows.push(Vec::new()),
            // A new node has no edges: duplicating the final offset adds
            // an empty row without leaving the flat layout.
            Adjacency::Flat { offsets, .. } => {
                offsets.push(*offsets.last().expect("flat offsets start at [0]"));
            }
        }
    }

    /// Rebuilds a flat layout into nested rows so a single row can grow
    /// (inserting mid-array would shift every later row).
    fn thaw(&mut self) {
        if let Adjacency::Flat { offsets, ids } = self {
            let rows = (0..offsets.len() - 1)
                .map(|u| ids[offsets[u] as usize..offsets[u + 1] as usize].to_vec())
                .collect();
            *self = Adjacency::Nested(rows);
        }
    }

    /// Appends `id` to node `v`'s row, thawing a flat layout first.
    fn push_edge(&mut self, v: usize, id: EdgeId) {
        self.thaw();
        match self {
            Adjacency::Nested(rows) => rows[v].push(id),
            Adjacency::Flat { .. } => unreachable!("thawed above"),
        }
    }

    /// Shifts every stored edge id `>= pos` up by one, then inserts the
    /// freed id `pos` into node `v`'s row at its id-sorted position.
    /// Requires (and preserves) rows sorted ascending by edge id.
    fn splice_edge(&mut self, v: usize, pos: usize) {
        self.thaw();
        let Adjacency::Nested(rows) = self else {
            unreachable!("thawed above")
        };
        for row in rows.iter_mut() {
            for id in row.iter_mut() {
                if id.index() >= pos {
                    *id = EdgeId::from_index(id.index() + 1);
                }
            }
        }
        let row = &mut rows[v];
        let at = row.partition_point(|&id| id.index() < pos);
        row.insert(at, EdgeId::from_index(pos));
    }

    /// Exact heap bytes of the rows' buffers.
    fn heap_bytes(&self) -> usize {
        match self {
            Adjacency::Nested(rows) => {
                rows.capacity() * std::mem::size_of::<Vec<EdgeId>>()
                    + rows
                        .iter()
                        .map(|r| r.capacity() * std::mem::size_of::<EdgeId>())
                        .sum::<usize>()
            }
            Adjacency::Flat { offsets, ids } => {
                offsets.capacity() * std::mem::size_of::<u32>()
                    + ids.capacity() * std::mem::size_of::<EdgeId>()
            }
        }
    }
}

/// An append-only directed multigraph.
///
/// * Parallel edges and self-loops are allowed — the fusion pipeline
///   deduplicates where the paper requires it, not the storage layer.
/// * Nodes and edges can never be removed; graph simplifications
///   (syndicate contraction, SCC condensation) build *new* graphs via
///   [`crate::Partition::quotient`], mirroring how the paper derives
///   `G12'` and `G123` from `G12` and `G_B`.
/// * All iteration orders are deterministic (insertion order), which keeps
///   the detection output stable across runs — important because the
///   paper's component-pattern base (Fig. 10) is ordered.
#[derive(Clone, Debug)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeSlot<E>>,
    out_adj: Adjacency,
    in_adj: Adjacency,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Adjacency::Nested(Vec::new()),
            in_adj: Adjacency::Nested(Vec::new()),
        }
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adj: Adjacency::Nested(Vec::with_capacity(nodes)),
            in_adj: Adjacency::Nested(Vec::with_capacity(nodes)),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    /// Panics if the graph already holds [`NodeId::MAX`] nodes.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        assert!(self.nodes.len() < NodeId::MAX, "node capacity exhausted");
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(weight);
        self.out_adj.push_node();
        self.in_adj.push_node();
        id
    }

    /// Adds a directed edge `source -> target` and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph, or the edge
    /// capacity is exhausted.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(
            source.index() < self.nodes.len(),
            "source {source:?} out of bounds"
        );
        assert!(
            target.index() < self.nodes.len(),
            "target {target:?} out of bounds"
        );
        assert!(self.edges.len() < EdgeId::MAX, "edge capacity exhausted");
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeSlot {
            source,
            target,
            weight,
        });
        self.out_adj.push_edge(source.index(), id);
        self.in_adj.push_edge(target.index(), id);
        id
    }

    /// Inserts a directed edge `source -> target` *at edge id `pos`*,
    /// shifting every existing edge id `>= pos` up by one.  The result
    /// is identical to rebuilding the graph from scratch with the new
    /// edge spliced into the insertion sequence at that position — the
    /// primitive that lets incremental maintenance mirror edge orders a
    /// from-scratch build would pin (e.g. "all antecedent arcs before
    /// all trading arcs").
    ///
    /// Costs O(E) for the id shift, vs O(1) for [`DiGraph::add_edge`]:
    /// meant for small deltas against graphs whose full rebuild would
    /// cost far more than one linear pass.
    ///
    /// Requires adjacency rows sorted ascending by edge id, which every
    /// constructor in this crate establishes ([`DiGraph::add_edge`]
    /// appends the maximum id; [`DiGraph::from_edge_list`] scatters ids
    /// in order) and this method preserves.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph, if
    /// `pos > edge_count()`, or if the edge capacity is exhausted.
    pub fn splice_edge(&mut self, pos: usize, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(
            source.index() < self.nodes.len(),
            "source {source:?} out of bounds"
        );
        assert!(
            target.index() < self.nodes.len(),
            "target {target:?} out of bounds"
        );
        assert!(
            pos <= self.edges.len(),
            "splice position {pos} out of bounds"
        );
        assert!(self.edges.len() < EdgeId::MAX, "edge capacity exhausted");
        self.edges.insert(
            pos,
            EdgeSlot {
                source,
                target,
                weight,
            },
        );
        self.out_adj.splice_edge(source.index(), pos);
        self.in_adj.splice_edge(target.index(), pos);
        EdgeId::from_index(pos)
    }

    /// Builds a graph from complete node and edge lists in one pass —
    /// identical to [`DiGraph::add_node`] / [`DiGraph::add_edge`] calls
    /// in the same order, but storing adjacency in the flat CSR-style
    /// layout: two bulk arrays per direction instead of one growable
    /// `Vec` per node.  Bulk loaders skip ~2 heap allocations per node,
    /// which is the difference between a zero-copy snapshot load being
    /// allocation-bound and memory-bandwidth-bound.
    ///
    /// # Panics
    /// Panics if any edge endpoint is out of bounds, or node/edge
    /// capacity is exhausted.
    pub fn from_edge_list(nodes: Vec<N>, edge_list: Vec<(NodeId, NodeId, E)>) -> Self {
        assert!(nodes.len() <= NodeId::MAX, "node capacity exhausted");
        assert!(edge_list.len() <= EdgeId::MAX, "edge capacity exhausted");
        let n = nodes.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for (source, target, _) in &edge_list {
            assert!(source.index() < n, "source {source:?} out of bounds");
            assert!(target.index() < n, "target {target:?} out of bounds");
            out_offsets[source.index() + 1] += 1;
            in_offsets[target.index() + 1] += 1;
        }
        for v in 0..n {
            out_offsets[v + 1] += out_offsets[v];
            in_offsets[v + 1] += in_offsets[v];
        }
        // Scatter edge ids into their rows with a cursor per node; ids
        // are visited in insertion order, so every row stays sorted the
        // way incremental `add_edge` calls would have left it.
        let mut out_ids = vec![EdgeId::from_index(0); edge_list.len()];
        let mut in_ids = vec![EdgeId::from_index(0); edge_list.len()];
        let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut edges = Vec::with_capacity(edge_list.len());
        for (i, (source, target, weight)) in edge_list.into_iter().enumerate() {
            let id = EdgeId::from_index(i);
            out_ids[out_cursor[source.index()] as usize] = id;
            out_cursor[source.index()] += 1;
            in_ids[in_cursor[target.index()] as usize] = id;
            in_cursor[target.index()] += 1;
            edges.push(EdgeSlot {
                source,
                target,
                weight,
            });
        }
        DiGraph {
            nodes,
            edges,
            out_adj: Adjacency::Flat {
                offsets: out_offsets,
                ids: out_ids,
            },
            in_adj: Adjacency::Flat {
                offsets: in_offsets,
                ids: in_ids,
            },
        }
    }

    /// Exact heap bytes of the graph's own buffers: node slots, edge
    /// slots, and adjacency rows.  Allocations owned by the payloads
    /// themselves (e.g. strings inside `N`) are the caller's to count.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<N>()
            + self.edges.capacity() * std::mem::size_of::<EdgeSlot<E>>()
            + self.out_adj.heap_bytes()
            + self.in_adj.heap_bytes()
    }

    /// Borrow a node payload.
    #[inline]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node payload.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Borrow an edge payload.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].weight
    }

    /// Endpoints `(source, target)` of an edge.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.index()];
        (e.source, e.target)
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterator over `(id, payload)` for all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, w)| (NodeId::from_index(i), w))
    }

    /// Iterator over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| EdgeRef {
            id: EdgeId::from_index(i),
            source: e.source,
            target: e.target,
            weight: &e.weight,
        })
    }

    /// Outgoing edges of `node` in insertion order.
    pub fn out_edges(&self, node: NodeId) -> impl ExactSizeIterator<Item = EdgeRef<'_, E>> + '_ {
        self.out_adj.row(node.index()).iter().map(move |&id| {
            let e = &self.edges[id.index()];
            EdgeRef {
                id,
                source: e.source,
                target: e.target,
                weight: &e.weight,
            }
        })
    }

    /// Incoming edges of `node` in insertion order.
    pub fn in_edges(&self, node: NodeId) -> impl ExactSizeIterator<Item = EdgeRef<'_, E>> + '_ {
        self.in_adj.row(node.index()).iter().map(move |&id| {
            let e = &self.edges[id.index()];
            EdgeRef {
                id,
                source: e.source,
                target: e.target,
                weight: &e.weight,
            }
        })
    }

    /// Successor node ids of `node` (duplicates preserved for parallel edges).
    pub fn successors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.out_adj
            .row(node.index())
            .iter()
            .map(move |&id| self.edges[id.index()].target)
    }

    /// Predecessor node ids of `node` (duplicates preserved for parallel edges).
    pub fn predecessors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.in_adj
            .row(node.index())
            .iter()
            .map(move |&id| self.edges[id.index()].source)
    }

    /// Number of outgoing edges of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adj.row(node.index()).len()
    }

    /// Number of incoming edges of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_adj.row(node.index()).len()
    }

    /// Whether at least one `source -> target` edge exists.
    pub fn contains_edge(&self, source: NodeId, target: NodeId) -> bool {
        // Scan the smaller adjacency list of the two endpoints.
        let out = self.out_adj.row(source.index());
        let inn = self.in_adj.row(target.index());
        if out.len() <= inn.len() {
            out.iter()
                .any(|&id| self.edges[id.index()].target == target)
        } else {
            inn.iter()
                .any(|&id| self.edges[id.index()].source == source)
        }
    }

    /// First edge id for `source -> target`, if any.
    pub fn find_edge(&self, source: NodeId, target: NodeId) -> Option<EdgeId> {
        self.out_adj
            .row(source.index())
            .iter()
            .copied()
            .find(|&id| self.edges[id.index()].target == target)
    }

    /// Builds a graph with identical topology whose payloads are mapped
    /// through the two closures.  Node and edge ids are preserved.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, w)| node_map(NodeId::from_index(i), w))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| EdgeSlot {
                    source: e.source,
                    target: e.target,
                    weight: edge_map(EdgeId::from_index(i), &e.weight),
                })
                .collect(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<u32, &'static str>, Vec<NodeId>) {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4u32).map(|i| g.add_node(i)).collect();
        g.add_edge(n[0], n[1], "a");
        g.add_edge(n[0], n[2], "b");
        g.add_edge(n[1], n[3], "c");
        g.add_edge(n[2], n[3], "d");
        (g, n)
    }

    #[test]
    fn from_edge_list_matches_incremental_build() {
        let (incremental, n) = diamond();
        let bulk = DiGraph::from_edge_list(
            (0..4u32).collect(),
            vec![
                (n[0], n[1], "a"),
                (n[0], n[2], "b"),
                (n[1], n[3], "c"),
                (n[2], n[3], "d"),
            ],
        );
        assert_eq!(bulk.node_count(), incremental.node_count());
        assert_eq!(bulk.edge_count(), incremental.edge_count());
        for v in bulk.node_ids() {
            assert_eq!(bulk.node(v), incremental.node(v));
            let ids = |g: &DiGraph<u32, &str>, v| {
                (
                    g.out_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                    g.in_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                )
            };
            assert_eq!(ids(&bulk, v), ids(&incremental, v));
        }
        for (a, b) in bulk.edges().zip(incremental.edges()) {
            assert_eq!(
                (a.id, a.source, a.target, a.weight),
                (b.id, b.source, b.target, b.weight)
            );
        }
    }

    #[test]
    fn bulk_graph_thaws_for_incremental_mutation() {
        let (mut incremental, n) = diamond();
        let mut bulk = DiGraph::from_edge_list(
            (0..4u32).collect(),
            vec![
                (n[0], n[1], "a"),
                (n[0], n[2], "b"),
                (n[1], n[3], "c"),
                (n[2], n[3], "d"),
            ],
        );
        // Grow both graphs the same way: flat adjacency must accept new
        // nodes in place and thaw transparently on the first add_edge.
        for g in [&mut bulk, &mut incremental] {
            let extra = g.add_node(99);
            g.add_edge(n[3], extra, "e");
            g.add_edge(extra, n[0], "f");
        }
        for v in bulk.node_ids() {
            assert_eq!(
                bulk.out_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                incremental.out_edges(v).map(|e| e.id).collect::<Vec<_>>()
            );
            assert_eq!(
                bulk.in_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                incremental.in_edges(v).map(|e| e.id).collect::<Vec<_>>()
            );
        }
        assert!(bulk.heap_bytes() > 0);
    }

    #[test]
    fn splice_edge_matches_from_scratch_insertion_order() {
        // Splicing "x" at position 2 must equal a clean build whose
        // insertion sequence has "x" third.
        let (mut spliced, n) = diamond();
        spliced.splice_edge(2, n[3], n[0], "x");

        let mut rebuilt = DiGraph::new();
        let m: Vec<_> = (0..4u32).map(|i| rebuilt.add_node(i)).collect();
        rebuilt.add_edge(m[0], m[1], "a");
        rebuilt.add_edge(m[0], m[2], "b");
        rebuilt.add_edge(m[3], m[0], "x");
        rebuilt.add_edge(m[1], m[3], "c");
        rebuilt.add_edge(m[2], m[3], "d");

        assert_eq!(spliced.edge_count(), rebuilt.edge_count());
        for (a, b) in spliced.edges().zip(rebuilt.edges()) {
            assert_eq!(
                (a.id, a.source, a.target, a.weight),
                (b.id, b.source, b.target, b.weight)
            );
        }
        for v in spliced.node_ids() {
            assert_eq!(
                spliced.out_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                rebuilt.out_edges(v).map(|e| e.id).collect::<Vec<_>>()
            );
            assert_eq!(
                spliced.in_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                rebuilt.in_edges(v).map(|e| e.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn splice_edge_at_end_equals_add_edge() {
        let (mut spliced, n) = diamond();
        let (mut appended, _) = diamond();
        let a = spliced.splice_edge(spliced.edge_count(), n[3], n[1], "e");
        let b = appended.add_edge(n[3], n[1], "e");
        assert_eq!(a, b);
        for v in spliced.node_ids() {
            assert_eq!(
                spliced.out_edges(v).map(|e| e.id).collect::<Vec<_>>(),
                appended.out_edges(v).map(|e| e.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn splice_edge_thaws_flat_adjacency() {
        let (_, n) = diamond();
        let mut bulk = DiGraph::from_edge_list(
            (0..4u32).collect(),
            vec![
                (n[0], n[1], "a"),
                (n[0], n[2], "b"),
                (n[1], n[3], "c"),
                (n[2], n[3], "d"),
            ],
        );
        bulk.splice_edge(0, n[3], n[0], "first");
        assert_eq!(*bulk.edge(EdgeId::from_index(0)), "first");
        assert_eq!(*bulk.edge(EdgeId::from_index(1)), "a");
        assert_eq!(
            bulk.out_edges(n[0]).map(|e| *e.weight).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(
            bulk.in_edges(n[0]).map(|e| *e.weight).collect::<Vec<_>>(),
            vec!["first"]
        );
    }

    #[test]
    #[should_panic(expected = "splice position")]
    fn splice_edge_rejects_out_of_range_position() {
        let (mut g, n) = diamond();
        g.splice_edge(99, n[0], n[1], "z");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edge_list_rejects_dangling_endpoints() {
        DiGraph::from_edge_list(
            vec![0u32],
            vec![(NodeId::from_index(0), NodeId::from_index(9), "x")],
        );
    }

    #[test]
    fn counts_and_degrees() {
        let (g, n) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(n[0]), 2);
        assert_eq!(g.in_degree(n[0]), 0);
        assert_eq!(g.in_degree(n[3]), 2);
        assert_eq!(g.out_degree(n[3]), 0);
    }

    #[test]
    fn successors_and_predecessors_follow_insertion_order() {
        let (g, n) = diamond();
        assert_eq!(g.successors(n[0]).collect::<Vec<_>>(), vec![n[1], n[2]]);
        assert_eq!(g.predecessors(n[3]).collect::<Vec<_>>(), vec![n[1], n[2]]);
    }

    #[test]
    fn edge_lookup() {
        let (g, n) = diamond();
        assert!(g.contains_edge(n[0], n[1]));
        assert!(!g.contains_edge(n[1], n[0]));
        let e = g.find_edge(n[2], n[3]).unwrap();
        assert_eq!(*g.edge(e), "d");
        assert_eq!(g.endpoints(e), (n[2], n[3]));
        assert_eq!(g.find_edge(n[3], n[0]), None);
    }

    #[test]
    fn parallel_edges_and_self_loops_are_preserved() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        g.add_edge(a, a, 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(b), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, b, a]);
    }

    #[test]
    fn map_preserves_topology() {
        let (g, n) = diamond();
        let mapped = g.map(|_, &w| w * 10, |_, &s| s.len());
        assert_eq!(*mapped.node(n[2]), 20);
        assert_eq!(
            mapped.successors(n[0]).collect::<Vec<_>>(),
            vec![n[1], n[2]]
        );
        assert_eq!(*mapped.edge(EdgeId::from_index(0)), 1);
    }

    #[test]
    fn node_and_edge_iterators() {
        let (g, _) = diamond();
        assert_eq!(g.node_ids().count(), 4);
        let weights: Vec<_> = g.edges().map(|e| *e.weight).collect();
        assert_eq!(weights, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn node_mut_updates_payload() {
        let (mut g, n) = diamond();
        *g.node_mut(n[1]) = 99;
        assert_eq!(*g.node(n[1]), 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_to_missing_node_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::from_index(5), ());
    }
}
