//! Frozen compressed-sparse-row (CSR) snapshot of a [`DiGraph`].
//!
//! The mutable [`DiGraph`] is the right shape while the fusion pipeline is
//! still contracting syndicates, but its per-node `Vec<EdgeId>` adjacency
//! costs two pointer hops per neighbor on the mining hot path.  Once the
//! TPIIN is final it never changes again, so [`DiGraph::freeze`] packs the
//! whole topology into a handful of flat arrays: every neighbor scan
//! becomes one contiguous slice, and the detector's Algorithm 2 DFS walks
//! cache lines instead of hash buckets.
//!
//! Edges are partitioned into **lanes** at freeze time (one lane per edge
//! color for a TPIIN: trading and influence), so per-color traversals —
//! the antecedent weak components of Algorithm 1, the influence-only tree
//! DFS of Algorithm 2 — index straight into their own offset table with no
//! per-edge color test.

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, NodeId};
use crate::unionfind::UnionFind;

/// One edge lane of a [`CsrGraph`]: a forward and a reverse CSR index over
/// the subset of edges assigned to this lane.
#[derive(Clone, Debug, Default)]
struct Lane {
    /// `out_offsets[v] .. out_offsets[v + 1]` indexes this node's slice of
    /// `out_targets` / `out_edge_ids` (length `node_count + 1`).
    out_offsets: Vec<u32>,
    /// Heads of all out-arcs, grouped by source, insertion order preserved
    /// within each source.
    out_targets: Vec<u32>,
    /// Original [`EdgeId`] of each `out_targets` slot, for mapping back to
    /// payloads in the source graph.
    out_edge_ids: Vec<EdgeId>,
    /// Reverse index: `in_offsets[v] .. in_offsets[v + 1]` slices
    /// `in_sources`.
    in_offsets: Vec<u32>,
    /// Tails of all in-arcs, grouped by target.
    in_sources: Vec<u32>,
}

impl Lane {
    fn out(&self, v: u32) -> &[u32] {
        &self.out_targets
            [self.out_offsets[v as usize] as usize..self.out_offsets[v as usize + 1] as usize]
    }

    fn sources(&self, v: u32) -> &[u32] {
        &self.in_sources
            [self.in_offsets[v as usize] as usize..self.in_offsets[v as usize + 1] as usize]
    }
}

/// An immutable CSR snapshot of a digraph's topology, with edges split
/// into color lanes.  Node indices are the dense `0..node_count` indices
/// of the frozen [`DiGraph`] (convertible via [`NodeId::index`]).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    node_count: usize,
    lanes: Vec<Lane>,
}

/// Owned raw arrays of one CSR lane, for serializing a frozen graph and
/// rebuilding it without re-running the counting sort.  Edge ids travel
/// as their dense `u32` indices (see [`EdgeId::index`]).
#[derive(Clone, Debug, Default)]
pub struct CsrLaneParts {
    /// Forward offsets, length `node_count + 1`, monotone, first `0`.
    pub out_offsets: Vec<u32>,
    /// Arc heads grouped by source, length `out_offsets[node_count]`.
    pub out_targets: Vec<u32>,
    /// Dense edge indices parallel to `out_targets`.
    pub out_edge_ids: Vec<u32>,
    /// Reverse offsets, same shape contract as `out_offsets`.
    pub in_offsets: Vec<u32>,
    /// Arc tails grouped by target, length `in_offsets[node_count]`.
    pub in_sources: Vec<u32>,
}

fn check_offsets(name: &str, offsets: &[u32], n: usize, entries: usize) -> Result<(), String> {
    if offsets.len() != n + 1 {
        return Err(format!(
            "{name}: expected {} offsets for {n} nodes, got {}",
            n + 1,
            offsets.len()
        ));
    }
    if offsets[0] != 0 {
        return Err(format!("{name}: first offset is {}, not 0", offsets[0]));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{name}: offsets are not monotone"));
    }
    if offsets[n] as usize != entries {
        return Err(format!(
            "{name}: final offset {} does not match {entries} entries",
            offsets[n]
        ));
    }
    Ok(())
}

impl CsrGraph {
    /// Reassembles a frozen graph from per-lane raw arrays, validating the
    /// CSR invariants (offset shape/monotonicity, entry counts, node
    /// bounds) instead of trusting the caller.  The inverse of reading the
    /// arrays back via [`CsrGraph::lane_out_offsets`] and friends; lets a
    /// binary snapshot skip the freeze counting sort entirely.
    pub fn from_raw_lanes(node_count: usize, parts: Vec<CsrLaneParts>) -> Result<CsrGraph, String> {
        let mut lanes = Vec::with_capacity(parts.len());
        for (i, p) in parts.into_iter().enumerate() {
            check_offsets(
                &format!("lane {i} out_offsets"),
                &p.out_offsets,
                node_count,
                p.out_targets.len(),
            )?;
            check_offsets(
                &format!("lane {i} in_offsets"),
                &p.in_offsets,
                node_count,
                p.in_sources.len(),
            )?;
            if p.out_edge_ids.len() != p.out_targets.len() {
                return Err(format!(
                    "lane {i}: {} edge ids for {} targets",
                    p.out_edge_ids.len(),
                    p.out_targets.len()
                ));
            }
            if p.out_targets.len() != p.in_sources.len() {
                return Err(format!(
                    "lane {i}: {} out entries but {} in entries",
                    p.out_targets.len(),
                    p.in_sources.len()
                ));
            }
            let bound = node_count as u32;
            if p.out_targets
                .iter()
                .chain(p.in_sources.iter())
                .any(|&v| v >= bound)
            {
                return Err(format!(
                    "lane {i}: node index out of range (n = {node_count})"
                ));
            }
            lanes.push(Lane {
                out_offsets: p.out_offsets,
                out_targets: p.out_targets,
                out_edge_ids: p
                    .out_edge_ids
                    .into_iter()
                    .map(|id| EdgeId::from_index(id as usize))
                    .collect(),
                in_offsets: p.in_offsets,
                in_sources: p.in_sources,
            });
        }
        Ok(CsrGraph { node_count, lanes })
    }

    /// Forward offset array of `lane` (length `node_count + 1`).
    #[inline]
    pub fn lane_out_offsets(&self, lane: usize) -> &[u32] {
        &self.lanes[lane].out_offsets
    }

    /// All arc heads of `lane`, grouped by source.
    #[inline]
    pub fn lane_out_targets(&self, lane: usize) -> &[u32] {
        &self.lanes[lane].out_targets
    }

    /// All dense edge ids of `lane`, parallel to
    /// [`CsrGraph::lane_out_targets`].
    #[inline]
    pub fn lane_out_edge_ids(&self, lane: usize) -> &[EdgeId] {
        &self.lanes[lane].out_edge_ids
    }

    /// Reverse offset array of `lane` (length `node_count + 1`).
    #[inline]
    pub fn lane_in_offsets(&self, lane: usize) -> &[u32] {
        &self.lanes[lane].in_offsets
    }

    /// All arc tails of `lane`, grouped by target.
    #[inline]
    pub fn lane_in_sources(&self, lane: usize) -> &[u32] {
        &self.lanes[lane].in_sources
    }

    /// Exact heap bytes held by the packed arrays (offset tables plus
    /// per-edge entries), for honest `/status` memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| {
                (l.out_offsets.len() + l.in_offsets.len()) * 4
                    + l.out_targets.len() * 4
                    + l.out_edge_ids.len() * std::mem::size_of::<EdgeId>()
                    + l.in_sources.len() * 4
            })
            .sum()
    }
    /// Number of nodes (same as the frozen graph).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edge lanes.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of edges in `lane`.
    #[inline]
    pub fn edge_count(&self, lane: usize) -> usize {
        self.lanes[lane].out_targets.len()
    }

    /// Total edges across all lanes.
    pub fn total_edge_count(&self) -> usize {
        self.lanes.iter().map(|l| l.out_targets.len()).sum()
    }

    /// Out-neighbors of `v` in `lane`, insertion order preserved.
    #[inline]
    pub fn out(&self, lane: usize, v: u32) -> &[u32] {
        self.lanes[lane].out(v)
    }

    /// Original edge ids of `v`'s out-arcs in `lane`, parallel to
    /// [`CsrGraph::out`].
    #[inline]
    pub fn out_edge_ids(&self, lane: usize, v: u32) -> &[EdgeId] {
        let lane = &self.lanes[lane];
        &lane.out_edge_ids
            [lane.out_offsets[v as usize] as usize..lane.out_offsets[v as usize + 1] as usize]
    }

    /// In-neighbors (arc tails) of `v` in `lane`.
    #[inline]
    pub fn sources(&self, lane: usize, v: u32) -> &[u32] {
        self.lanes[lane].sources(v)
    }

    /// Out-degree of `v` within `lane`.
    #[inline]
    pub fn out_degree(&self, lane: usize, v: u32) -> usize {
        self.lanes[lane].out(v).len()
    }

    /// In-degree of `v` within `lane`.
    #[inline]
    pub fn in_degree(&self, lane: usize, v: u32) -> usize {
        self.lanes[lane].sources(v).len()
    }

    /// All `(source, target)` pairs of `lane`, grouped by source.
    pub fn lane_edges(&self, lane: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let l = &self.lanes[lane];
        (0..self.node_count as u32).flat_map(move |v| l.out(v).iter().map(move |&t| (v, t)))
    }

    /// Strongly connected components of one lane, iterative Tarjan over
    /// the packed slices.  Same contract as [`crate::tarjan_scc`]:
    /// components come out in reverse topological order of the
    /// condensation.
    pub fn tarjan_scc(&self, lane: usize) -> Vec<Vec<u32>> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.node_count;
        let lane = &self.lanes[lane];
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut components = Vec::new();
        // Explicit DFS call stack: (node, offset into its out slice).
        let mut call: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            call.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut next)) = call.last_mut() {
                let succ = lane.out(v);
                if *next < succ.len() {
                    let w = succ[*next];
                    *next += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// Dense SCC labelling of one lane: `(labels, count)` with labels in
    /// reverse topological order, mirroring
    /// [`crate::condensation_partition`].
    pub fn condensation(&self, lane: usize) -> (Vec<u32>, usize) {
        let components = self.tarjan_scc(lane);
        let mut labels = vec![0u32; self.node_count];
        for (i, comp) in components.iter().enumerate() {
            for &v in comp {
                labels[v as usize] = i as u32;
            }
        }
        (labels, components.len())
    }

    /// Weakly connected components of one lane (direction ignored):
    /// `(labels, count)` with labels dense and assigned in order of first
    /// appearance by node index, mirroring
    /// [`crate::weakly_connected_components`].
    pub fn weak_components(&self, lane: usize) -> (Vec<u32>, usize) {
        let mut uf = UnionFind::new(self.node_count);
        for (s, t) in self.lane_edges(lane) {
            uf.union(s as usize, t as usize);
        }
        uf.into_labels()
    }

    /// Whether one lane is a DAG, by Kahn's algorithm over the packed
    /// degree arrays.
    pub fn is_acyclic(&self, lane: usize) -> bool {
        let l = &self.lanes[lane];
        let mut in_deg: Vec<u32> = (0..self.node_count as u32)
            .map(|v| l.sources(v).len() as u32)
            .collect();
        let mut queue: Vec<u32> = (0..self.node_count as u32)
            .filter(|&v| in_deg[v as usize] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in l.out(v) {
                in_deg[w as usize] -= 1;
                if in_deg[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        seen == self.node_count
    }

    /// Contracts the graph along `partition` (the CSR port of
    /// [`crate::Partition::quotient`]'s topology step): each group becomes
    /// one node, arcs between groups survive in their lane, arcs internal
    /// to a group are dropped.  Parallel quotient arcs are preserved, and
    /// lane/slice ordering stays deterministic.
    pub fn quotient(&self, partition: &crate::Partition) -> CsrGraph {
        assert_eq!(partition.labels().len(), self.node_count, "partition size");
        let qn = partition.group_count();
        let labels = partition.labels();
        let lanes = (0..self.lanes.len())
            .map(|lane| {
                let pairs: Vec<(u32, u32, EdgeId)> = (0..self.node_count as u32)
                    .flat_map(|v| {
                        let qs = labels[v as usize];
                        self.out(lane, v)
                            .iter()
                            .zip(self.out_edge_ids(lane, v))
                            .filter_map(move |(&t, &id)| {
                                let qt = labels[t as usize];
                                (qs != qt).then_some((qs, qt, id))
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect();
                build_lane(qn, &pairs)
            })
            .collect();
        CsrGraph {
            node_count: qn,
            lanes,
        }
    }
}

/// Counting-sort construction of one lane from `(source, target, id)`
/// triples; stable, so slice order matches input order per node.
fn build_lane(n: usize, edges: &[(u32, u32, EdgeId)]) -> Lane {
    let mut out_offsets = vec![0u32; n + 1];
    let mut in_offsets = vec![0u32; n + 1];
    for &(s, t, _) in edges {
        out_offsets[s as usize + 1] += 1;
        in_offsets[t as usize + 1] += 1;
    }
    for v in 0..n {
        out_offsets[v + 1] += out_offsets[v];
        in_offsets[v + 1] += in_offsets[v];
    }
    let mut out_targets = vec![0u32; edges.len()];
    let mut out_edge_ids = vec![EdgeId::from_index(0); edges.len()];
    let mut in_sources = vec![0u32; edges.len()];
    let mut out_cursor = out_offsets.clone();
    let mut in_cursor = in_offsets.clone();
    for &(s, t, id) in edges {
        let slot = out_cursor[s as usize] as usize;
        out_targets[slot] = t;
        out_edge_ids[slot] = id;
        out_cursor[s as usize] += 1;
        in_sources[in_cursor[t as usize] as usize] = s;
        in_cursor[t as usize] += 1;
    }
    Lane {
        out_offsets,
        out_targets,
        out_edge_ids,
        in_offsets,
        in_sources,
    }
}

impl<N, E> DiGraph<N, E> {
    /// Freezes the whole graph into a single-lane [`CsrGraph`].
    ///
    /// Neighbor order within each node matches the graph's insertion
    /// order, so algorithms that are order-sensitive (Tarjan's component
    /// output, the pattern-tree DFS) produce identical results on either
    /// representation.
    pub fn freeze(&self) -> CsrGraph {
        self.freeze_lanes(1, |_, _| 0)
    }

    /// Freezes the graph into a [`CsrGraph`] whose edges are split into
    /// `lane_count` lanes by `lane_of` (e.g. the TPIIN's arc-color code).
    ///
    /// # Panics
    /// Panics if `lane_of` returns an index `>= lane_count`.
    pub fn freeze_lanes(
        &self,
        lane_count: usize,
        mut lane_of: impl FnMut(EdgeId, &E) -> usize,
    ) -> CsrGraph {
        let mut per_lane: Vec<Vec<(u32, u32, EdgeId)>> = vec![Vec::new(); lane_count];
        for e in self.edges() {
            let lane = lane_of(e.id, e.weight);
            assert!(lane < lane_count, "lane {lane} out of range");
            per_lane[lane].push((e.source.index() as u32, e.target.index() as u32, e.id));
        }
        CsrGraph {
            node_count: self.node_count(),
            lanes: per_lane
                .iter()
                .map(|edges| build_lane(self.node_count(), edges))
                .collect(),
        }
    }
}

/// Convenience: the dense index of `v` as the `u32` the CSR side uses.
#[inline]
pub fn csr_index(v: NodeId) -> u32 {
    v.index() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        condensation_partition, is_acyclic, tarjan_scc, weakly_connected_components, Partition,
    };

    fn graph_from(edges: &[(usize, usize)], n: usize) -> DiGraph<(), u8> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            g.add_edge(ids[a], ids[b], (i % 2) as u8);
        }
        g
    }

    #[test]
    fn freeze_preserves_counts_and_slice_order() {
        let g = graph_from(&[(0, 1), (0, 2), (1, 2), (2, 0)], 3);
        let csr = g.freeze();
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.lane_count(), 1);
        assert_eq!(csr.edge_count(0), 4);
        assert_eq!(csr.out(0, 0), &[1, 2]);
        assert_eq!(csr.out(0, 1), &[2]);
        assert_eq!(csr.sources(0, 2), &[0, 1]);
        assert_eq!(csr.out_degree(0, 0), 2);
        assert_eq!(csr.in_degree(0, 0), 1);
        let ids: Vec<usize> = csr.out_edge_ids(0, 0).iter().map(|e| e.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn lanes_partition_the_edges() {
        // Even-indexed edges in lane 0, odd-indexed in lane 1.
        let g = graph_from(&[(0, 1), (0, 2), (1, 2), (2, 0)], 3);
        let csr = g.freeze_lanes(2, |_, &w| w as usize);
        assert_eq!(csr.edge_count(0) + csr.edge_count(1), g.edge_count());
        assert_eq!(csr.total_edge_count(), g.edge_count());
        assert_eq!(csr.out(0, 0), &[1]); // edge 0
        assert_eq!(csr.out(1, 0), &[2]); // edge 1
        assert_eq!(
            csr.lane_edges(1).collect::<Vec<_>>(),
            vec![(0, 2), (2, 0)] // edges 1 and 3
        );
    }

    #[test]
    fn parallel_edges_and_self_loops_survive() {
        let g = graph_from(&[(0, 1), (0, 1), (1, 1)], 2);
        let csr = g.freeze();
        assert_eq!(csr.out(0, 0), &[1, 1]);
        assert_eq!(csr.out(0, 1), &[1]);
        assert_eq!(csr.sources(0, 1), &[0, 0, 1]);
    }

    #[test]
    fn csr_scc_matches_digraph_scc() {
        let cases: &[(&[(usize, usize)], usize)] = &[
            (&[(0, 1), (1, 2)], 3),
            (&[(0, 1), (1, 2), (2, 0)], 3),
            (&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4),
            (&[(0, 0), (0, 1)], 2),
            (&[], 4),
        ];
        for &(edges, n) in cases {
            let g = graph_from(edges, n);
            let reference: Vec<Vec<u32>> = tarjan_scc(&g)
                .into_iter()
                .map(|c| c.into_iter().map(|v| v.index() as u32).collect())
                .collect();
            assert_eq!(g.freeze().tarjan_scc(0), reference, "edges {edges:?}");
            let (labels, count) = condensation_partition(&g);
            assert_eq!(g.freeze().condensation(0), (labels, count));
        }
    }

    #[test]
    fn csr_weak_components_match_digraph() {
        let g = graph_from(&[(0, 2), (1, 3), (4, 4)], 6);
        let csr = g.freeze();
        assert_eq!(csr.weak_components(0), weakly_connected_components(&g));
    }

    #[test]
    fn csr_acyclicity_matches_digraph() {
        let dag = graph_from(&[(0, 1), (1, 2), (0, 2)], 3);
        assert!(dag.freeze().is_acyclic(0));
        assert_eq!(is_acyclic(&dag), dag.freeze().is_acyclic(0));
        let cyc = graph_from(&[(0, 1), (1, 0)], 2);
        assert!(!cyc.freeze().is_acyclic(0));
    }

    #[test]
    fn acyclicity_is_per_lane() {
        // Lane 0 (even edges) holds 0->1, 1->0: cyclic.  Lane 1 holds
        // 0->1 only: acyclic.
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        g.add_edge(a, b, 1);
        let csr = g.freeze_lanes(2, |_, &w| w as usize);
        assert!(!csr.is_acyclic(0));
        assert!(csr.is_acyclic(1));
    }

    #[test]
    fn quotient_drops_internal_arcs_and_keeps_cross_arcs() {
        // {0,1} merge; 0->1 internal (dropped), 1->2 and 2->0 survive.
        let g = graph_from(&[(0, 1), (1, 2), (2, 0)], 3);
        let csr = g.freeze();
        let partition = Partition::from_labels(vec![0, 0, 1], 2);
        let q = csr.quotient(&partition);
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(0), 2);
        assert_eq!(q.out(0, 0), &[1]);
        assert_eq!(q.out(0, 1), &[0]);
    }

    #[test]
    fn raw_lane_round_trip_rebuilds_identical_csr() {
        let g = graph_from(&[(0, 1), (0, 2), (1, 2), (2, 0)], 3);
        let csr = g.freeze_lanes(2, |_, &w| w as usize);
        let parts: Vec<CsrLaneParts> = (0..csr.lane_count())
            .map(|lane| CsrLaneParts {
                out_offsets: csr.lane_out_offsets(lane).to_vec(),
                out_targets: csr.lane_out_targets(lane).to_vec(),
                out_edge_ids: csr
                    .lane_out_edge_ids(lane)
                    .iter()
                    .map(|e| e.index() as u32)
                    .collect(),
                in_offsets: csr.lane_in_offsets(lane).to_vec(),
                in_sources: csr.lane_in_sources(lane).to_vec(),
            })
            .collect();
        let rebuilt = CsrGraph::from_raw_lanes(csr.node_count(), parts).expect("valid parts");
        assert_eq!(rebuilt.node_count(), csr.node_count());
        for lane in 0..csr.lane_count() {
            for v in 0..csr.node_count() as u32 {
                assert_eq!(rebuilt.out(lane, v), csr.out(lane, v));
                assert_eq!(rebuilt.out_edge_ids(lane, v), csr.out_edge_ids(lane, v));
                assert_eq!(rebuilt.sources(lane, v), csr.sources(lane, v));
            }
        }
        assert_eq!(rebuilt.heap_bytes(), csr.heap_bytes());
    }

    #[test]
    fn raw_lanes_reject_malformed_arrays() {
        let ok = || CsrLaneParts {
            out_offsets: vec![0, 1, 1],
            out_targets: vec![1],
            out_edge_ids: vec![0],
            in_offsets: vec![0, 0, 1],
            in_sources: vec![0],
        };
        assert!(CsrGraph::from_raw_lanes(2, vec![ok()]).is_ok());
        let mut short = ok();
        short.out_offsets.pop();
        assert!(CsrGraph::from_raw_lanes(2, vec![short]).is_err());
        let mut nonmono = ok();
        nonmono.out_offsets = vec![0, 2, 1];
        assert!(CsrGraph::from_raw_lanes(2, vec![nonmono]).is_err());
        let mut bad_total = ok();
        bad_total.out_offsets = vec![0, 1, 2];
        assert!(CsrGraph::from_raw_lanes(2, vec![bad_total]).is_err());
        let mut oob = ok();
        oob.out_targets = vec![7];
        assert!(CsrGraph::from_raw_lanes(2, vec![oob]).is_err());
        let mut lopsided = ok();
        lopsided.in_offsets = vec![0, 0, 0];
        lopsided.in_sources = vec![];
        assert!(CsrGraph::from_raw_lanes(2, vec![lopsided]).is_err());
        let mut ids = ok();
        ids.out_edge_ids = vec![0, 1];
        assert!(CsrGraph::from_raw_lanes(2, vec![ids]).is_err());
        let mut nonzero = ok();
        nonzero.out_offsets = vec![1, 1, 1];
        assert!(CsrGraph::from_raw_lanes(2, vec![nonzero]).is_err());
    }

    #[test]
    fn empty_graph_freezes() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let csr = g.freeze();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.total_edge_count(), 0);
        assert!(csr.is_acyclic(0));
        assert_eq!(csr.weak_components(0), (vec![], 0));
    }
}
