//! `tpiin-graph` — a from-scratch directed multigraph substrate.
//!
//! The TPIIN pipeline of the paper needs a small set of graph operations:
//! adjacency storage with typed payloads, depth-first traversal, Tarjan's
//! strongly-connected-components algorithm (used to contract mutual
//! investment structures), weakly-connected components (used to segment a
//! TPIIN into `subTPIIN`s), node contraction into *syndicates* with
//! provenance, bipartite/degree property checks, and DOT export for
//! inspection.  None of the offline dependency set provides these, so this
//! crate implements them directly.
//!
//! The central type is [`DiGraph`], an append-only directed multigraph.
//! Append-only storage keeps node and edge identifiers dense and stable,
//! which lets every algorithm in the workspace use plain `Vec`-indexed
//! side tables instead of hash maps on the hot path.
//!
//! # Example
//!
//! ```
//! use tpiin_graph::DiGraph;
//!
//! let mut g: DiGraph<&str, ()> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! g.add_edge(a, b, ());
//! assert_eq!(g.out_degree(a), 1);
//! assert!(tpiin_graph::is_acyclic(&g));
//! ```

mod contraction;
mod csr;
mod digraph;
mod export;
mod ids;
mod properties;
mod scc;
mod subgraph;
mod traversal;
mod unionfind;
mod wcc;

pub use contraction::{dedup_edges, ContractionOutcome, Partition};
pub use csr::{csr_index, CsrGraph, CsrLaneParts};
pub use digraph::{DiGraph, EdgeRef};
pub use export::{dot, edge_list, DotStyle, EdgeRender, NodeRender};
pub use ids::{EdgeId, NodeId};
pub use properties::{check_bipartite, degree_summary, BipartiteViolation, DegreeSummary};
pub use scc::{condensation_partition, tarjan_scc, SccScratch};
pub use subgraph::{induced_subgraph, transpose, InducedSubgraph};
pub use traversal::{
    dfs_postorder, dfs_preorder, is_acyclic, reachable_from, topological_sort, CycleError,
};
pub use unionfind::UnionFind;
pub use wcc::{weak_component_members, weakly_connected_components};
