//! Derived graphs: transpose and induced subgraphs.
//!
//! The per-arc query of the detection crate works on the *ancestor cone*
//! of a trading arc's endpoints — an induced subgraph over a node subset
//! reached by walking the transpose.  These helpers implement both
//! operations generically with provenance back to the original node ids.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

/// The transpose (edge-reversed) graph.  Node ids are preserved; edge
/// payloads are cloned; edge insertion order follows the original.
pub fn transpose<N: Clone, E: Clone>(graph: &DiGraph<N, E>) -> DiGraph<N, E> {
    let mut out: DiGraph<N, E> = DiGraph::with_capacity(graph.node_count(), graph.edge_count());
    for (_, w) in graph.nodes() {
        out.add_node(w.clone());
    }
    for e in graph.edges() {
        out.add_edge(e.target, e.source, e.weight.clone());
    }
    out
}

/// An induced subgraph with provenance.
pub struct InducedSubgraph<N, E> {
    /// The subgraph over dense local ids.
    pub graph: DiGraph<N, E>,
    /// Original node id of each local node.
    pub original: Vec<NodeId>,
    /// Local id of each original node (`None` when excluded).
    pub local: Vec<Option<NodeId>>,
}

/// Builds the subgraph induced by `keep` (deduplicated, order preserved):
/// the kept nodes and every edge whose two endpoints are kept.
pub fn induced_subgraph<N: Clone, E: Clone>(
    graph: &DiGraph<N, E>,
    keep: impl IntoIterator<Item = NodeId>,
) -> InducedSubgraph<N, E> {
    let mut local: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut original = Vec::new();
    let mut sub: DiGraph<N, E> = DiGraph::new();
    for node in keep {
        if local[node.index()].is_some() {
            continue;
        }
        let l = sub.add_node(graph.node(node).clone());
        local[node.index()] = Some(l);
        original.push(node);
    }
    for e in graph.edges() {
        if let (Some(s), Some(t)) = (local[e.source.index()], local[e.target.index()]) {
            sub.add_edge(s, t, e.weight.clone());
        }
    }
    InducedSubgraph {
        graph: sub,
        original,
        local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<u8, char>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4u8).map(|i| g.add_node(i)).collect();
        g.add_edge(n[0], n[1], 'a');
        g.add_edge(n[0], n[2], 'b');
        g.add_edge(n[1], n[3], 'c');
        g.add_edge(n[2], n[3], 'd');
        (g, n)
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let (g, n) = diamond();
        let t = transpose(&g);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 4);
        assert!(t.contains_edge(n[1], n[0]));
        assert!(t.contains_edge(n[3], n[2]));
        assert!(!t.contains_edge(n[0], n[1]));
        // Payloads preserved.
        assert_eq!(*t.edge(t.find_edge(n[3], n[1]).unwrap()), 'c');
    }

    #[test]
    fn double_transpose_is_identity_on_structure() {
        let (g, _) = diamond();
        let tt = transpose(&transpose(&g));
        let arcs = |g: &DiGraph<u8, char>| -> Vec<(usize, usize, char)> {
            g.edges()
                .map(|e| (e.source.index(), e.target.index(), *e.weight))
                .collect()
        };
        assert_eq!(arcs(&g), arcs(&tt));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (g, n) = diamond();
        let sub = induced_subgraph(&g, [n[0], n[1], n[3]]);
        assert_eq!(sub.graph.node_count(), 3);
        // Edges 0->1 and 1->3 survive; 0->2 and 2->3 are cut.
        assert_eq!(sub.graph.edge_count(), 2);
        assert_eq!(sub.original.len(), 3);
        assert!(sub.local[n[2].index()].is_none());
        let l0 = sub.local[n[0].index()].unwrap();
        assert_eq!(*sub.graph.node(l0), 0);
    }

    #[test]
    fn duplicate_keep_entries_are_ignored() {
        let (g, n) = diamond();
        let sub = induced_subgraph(&g, [n[1], n[1], n[1]]);
        assert_eq!(sub.graph.node_count(), 1);
        assert_eq!(sub.graph.edge_count(), 0);
    }

    #[test]
    fn empty_keep_yields_empty_graph() {
        let (g, _) = diamond();
        let sub = induced_subgraph(&g, []);
        assert_eq!(sub.graph.node_count(), 0);
        assert!(sub.original.is_empty());
    }
}
