//! Graph export helpers (Graphviz DOT and plain edge lists).
//!
//! The paper's Algorithm 1 takes a TPIIN "in the form of edge list (a
//! `r x 3` array)", and its figures (Figs. 11–16) are network drawings;
//! [`edge_list`] and [`dot`] regenerate both representations.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use std::fmt::Write as _;

/// Rendering callback for a node: `(id, payload) -> text`.
pub type NodeRender<'a, N> = Box<dyn Fn(NodeId, &N) -> String + 'a>;
/// Rendering callback for an edge payload: `&payload -> attributes`.
pub type EdgeRender<'a, E> = Box<dyn Fn(&E) -> String + 'a>;

/// Per-element styling callbacks for [`dot`].
pub struct DotStyle<'a, N, E> {
    /// Node label text.
    pub node_label: NodeRender<'a, N>,
    /// Extra node attributes, e.g. `color=red` (empty for none).
    pub node_attrs: NodeRender<'a, N>,
    /// Extra edge attributes, e.g. `color=blue` (empty for none).
    pub edge_attrs: EdgeRender<'a, E>,
}

impl<'a, N: std::fmt::Debug, E> DotStyle<'a, N, E> {
    /// Style that labels nodes with their `Debug` payload and no colors.
    pub fn debug_labels() -> Self {
        DotStyle {
            node_label: Box::new(|_, w| format!("{w:?}")),
            node_attrs: Box::new(|_, _| String::new()),
            edge_attrs: Box::new(|_| String::new()),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders `graph` in Graphviz DOT syntax.
pub fn dot<N, E>(graph: &DiGraph<N, E>, style: &DotStyle<'_, N, E>) -> String {
    let mut out = String::with_capacity(64 + graph.node_count() * 24 + graph.edge_count() * 16);
    out.push_str("digraph tpiin {\n");
    for (id, w) in graph.nodes() {
        let label = escape(&(style.node_label)(id, w));
        let attrs = (style.node_attrs)(id, w);
        if attrs.is_empty() {
            let _ = writeln!(out, "  n{} [label=\"{}\"];", id, label);
        } else {
            let _ = writeln!(out, "  n{} [label=\"{}\", {}];", id, label, attrs);
        }
    }
    for e in graph.edges() {
        let attrs = (style.edge_attrs)(e.weight);
        if attrs.is_empty() {
            let _ = writeln!(out, "  n{} -> n{};", e.source, e.target);
        } else {
            let _ = writeln!(out, "  n{} -> n{} [{}];", e.source, e.target, attrs);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders `graph` as the paper's `r x 3` edge list: one
/// `source<TAB>target<TAB>color` row per arc, where `color` is produced by
/// the callback (the paper uses `0` for trading/black and `1` for
/// influence/blue).
pub fn edge_list<N, E>(graph: &DiGraph<N, E>, mut color: impl FnMut(&E) -> u32) -> String {
    let mut out = String::with_capacity(graph.edge_count() * 12);
    for e in graph.edges() {
        let _ = writeln!(out, "{}\t{}\t{}", e.source, e.target, color(e.weight));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<&'static str, u8> {
        let mut g = DiGraph::new();
        let a = g.add_node("P1");
        let b = g.add_node("C\"1\"");
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 0);
        g
    }

    #[test]
    fn dot_contains_nodes_edges_and_escapes_quotes() {
        let g = sample();
        let style = DotStyle {
            node_label: Box::new(|_, w: &&str| w.to_string()),
            node_attrs: Box::new(|_, w| {
                if w.starts_with('P') {
                    "color=black".into()
                } else {
                    "color=red".into()
                }
            }),
            edge_attrs: Box::new(|&c| {
                if c == 1 {
                    "color=blue".into()
                } else {
                    String::new()
                }
            }),
        };
        let text = dot(&g, &style);
        assert!(text.starts_with("digraph tpiin {"));
        assert!(text.contains("n0 [label=\"P1\", color=black];"));
        assert!(text.contains("C\\\"1\\\""), "quotes escaped: {text}");
        assert!(text.contains("n0 -> n1 [color=blue];"));
        assert!(text.contains("n1 -> n0;"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn debug_style_renders() {
        let g = sample();
        let text = dot(&g, &DotStyle::debug_labels());
        assert!(text.contains("label=\"\\\"P1\\\"\"") || text.contains("P1"));
    }

    #[test]
    fn edge_list_rows_match_paper_format() {
        let g = sample();
        let text = edge_list(&g, |&c| c as u32);
        assert_eq!(text, "0\t1\t1\n1\t0\t0\n");
    }
}
