//! Depth-first traversals, reachability, cycle detection and topological
//! ordering.
//!
//! Everything here is iterative — the synthetic province networks reach
//! hundreds of thousands of arcs and a recursive DFS would overflow the
//! stack long before that.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

/// Error returned by [`topological_sort`] when the graph has a directed
/// cycle; carries one node known to lie on a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node that participates in some directed cycle.
    pub on_cycle: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a directed cycle through {:?}",
            self.on_cycle
        )
    }
}

impl std::error::Error for CycleError {}

/// Nodes reachable from `start` (including `start`) in preorder.
pub fn dfs_preorder<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(node) = stack.pop() {
        if std::mem::replace(&mut visited[node.index()], true) {
            continue;
        }
        order.push(node);
        // Push successors in reverse so the first successor is visited first.
        let succs: Vec<_> = graph.successors(node).collect();
        for &s in succs.iter().rev() {
            if !visited[s.index()] {
                stack.push(s);
            }
        }
    }
    order
}

/// Nodes reachable from `start` (including `start`) in postorder: a node
/// appears only after all of its descendants.
pub fn dfs_postorder<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    // Stack frame: (node, next successor offset).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    if !visited[start.index()] {
        visited[start.index()] = true;
        stack.push((start, 0));
    }
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let succ = graph.successors(node).nth(*next);
        *next += 1;
        match succ {
            Some(s) if !visited[s.index()] => {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
            Some(_) => {}
            None => {
                order.push(node);
                stack.pop();
            }
        }
    }
    order
}

/// Boolean reachability mask from `start` (index = node index).
pub fn reachable_from<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<bool> {
    let mut visited = vec![false; graph.node_count()];
    let mut stack = vec![start];
    visited[start.index()] = true;
    while let Some(node) = stack.pop() {
        for s in graph.successors(node) {
            if !std::mem::replace(&mut visited[s.index()], true) {
                stack.push(s);
            }
        }
    }
    visited
}

/// Kahn's algorithm.  Returns a topological order of all nodes, or a
/// [`CycleError`] naming a node on a directed cycle.
pub fn topological_sort<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let n = graph.node_count();
    let mut indegree: Vec<usize> = (0..n)
        .map(|i| graph.in_degree(NodeId::from_index(i)))
        .collect();
    let mut queue: Vec<NodeId> = graph
        .node_ids()
        .filter(|&v| indegree[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head];
        head += 1;
        order.push(node);
        for s in graph.successors(node) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let on_cycle = graph
            .node_ids()
            .find(|&v| indegree[v.index()] > 0)
            .expect("incomplete topological order implies a node with residual indegree");
        Err(CycleError { on_cycle })
    }
}

/// Whether the graph is a DAG.  The paper's antecedent network `G123` must
/// satisfy this after SCC contraction (Appendix A).
pub fn is_acyclic<N, E>(graph: &DiGraph<N, E>) -> bool {
    topological_sort(graph).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from(edges: &[(usize, usize)], n: usize) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a], ids[b], ());
        }
        g
    }

    #[test]
    fn preorder_visits_parent_before_children() {
        let g = graph_from(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let order = dfs_preorder(&g, NodeId::from_index(0));
        assert_eq!(order[0], NodeId::from_index(0));
        assert_eq!(order.len(), 4);
        let pos = |i: usize| {
            order
                .iter()
                .position(|&v| v == NodeId::from_index(i))
                .unwrap()
        };
        assert!(pos(0) < pos(1) && pos(0) < pos(2) && pos(1) < pos(3));
    }

    #[test]
    fn postorder_emits_descendants_first() {
        let g = graph_from(&[(0, 1), (1, 2)], 3);
        let order = dfs_postorder(&g, NodeId::from_index(0));
        assert_eq!(
            order,
            vec![
                NodeId::from_index(2),
                NodeId::from_index(1),
                NodeId::from_index(0)
            ]
        );
    }

    #[test]
    fn postorder_handles_cycles_without_spinning() {
        let g = graph_from(&[(0, 1), (1, 0)], 2);
        let order = dfs_postorder(&g, NodeId::from_index(0));
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn reachability_mask() {
        let g = graph_from(&[(0, 1), (1, 2), (3, 1)], 4);
        let mask = reachable_from(&g, NodeId::from_index(0));
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn topological_sort_of_dag() {
        let g = graph_from(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let order = topological_sort(&g).unwrap();
        let pos = |i: usize| {
            order
                .iter()
                .position(|&v| v == NodeId::from_index(i))
                .unwrap()
        };
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn topological_sort_detects_cycles() {
        let g = graph_from(&[(0, 1), (1, 2), (2, 0)], 3);
        let err = topological_sort(&g).unwrap_err();
        assert!(err.on_cycle.index() < 3);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph_from(&[(0, 0)], 1);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(is_acyclic(&g));
        assert!(topological_sort(&g).unwrap().is_empty());
    }
}
