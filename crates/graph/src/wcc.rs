//! Weakly connected components.
//!
//! Step 3 of the paper's Algorithm 1 segments the antecedent network into
//! maximal weakly connected subgraphs (`MWCS`): a trading arc whose two
//! endpoints fall into different antecedent components cannot be backed by
//! a common interest party, so each component can be mined independently
//! (divide and conquer).

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::unionfind::UnionFind;

/// Computes the weakly connected components of `graph` (edge direction
/// ignored).
///
/// Returns `(labels, count)`: `labels[v]` is the component of node `v`,
/// with labels dense in `0..count` and assigned in order of first
/// appearance by node index — deterministic across runs.
pub fn weakly_connected_components<N, E>(graph: &DiGraph<N, E>) -> (Vec<u32>, usize) {
    let mut uf = UnionFind::new(graph.node_count());
    for edge in graph.edges() {
        uf.union(edge.source.index(), edge.target.index());
    }
    uf.into_labels()
}

/// Groups node ids by weak component, preserving node order inside each
/// component.  Convenience wrapper over [`weakly_connected_components`].
pub fn weak_component_members<N, E>(graph: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let (labels, count) = weakly_connected_components(graph);
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in graph.node_ids() {
        groups[labels[v.index()] as usize].push(v);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from(edges: &[(usize, usize)], n: usize) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a], ids[b], ());
        }
        g
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 and 2 -> 1: all three weakly connected.
        let g = graph_from(&[(0, 1), (2, 1)], 3);
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = graph_from(&[(0, 1)], 4);
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[3]);
    }

    #[test]
    fn members_grouped_in_order() {
        let g = graph_from(&[(0, 2), (1, 3)], 4);
        let groups = weak_component_members(&g);
        assert_eq!(groups.len(), 2);
        assert_eq!(
            groups[0],
            vec![NodeId::from_index(0), NodeId::from_index(2)]
        );
        assert_eq!(
            groups[1],
            vec![NodeId::from_index(1), NodeId::from_index(3)]
        );
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let (labels, count) = weakly_connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }
}
