//! Node contraction into syndicates via quotient graphs.
//!
//! The paper performs two contraction passes while building a TPIIN:
//!
//! 1. **Interdependence edge contraction** (`G12 -> G12'`): persons joined
//!    by kinship/interlocking edges collapse into a *person syndicate*
//!    (e.g. nodes `L6`/`LB` of Fig. 7 become syndicate `L1` of Fig. 8).
//! 2. **Strongly-connected-subgraph contraction** (`G_B -> G123`): mutually
//!    investing companies collapse into a *company syndicate*, turning the
//!    antecedent network into a DAG.
//!
//! Both are the same operation: pick a partition of the nodes and build
//! the quotient graph, keeping provenance of which original nodes were
//! merged.  [`Partition`] encodes the partition; [`Partition::quotient`]
//! builds the contracted graph.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::unionfind::UnionFind;

/// A partition of the node set `0..len` of some graph into groups.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `labels[v]` is the group of node `v`; labels are dense in
    /// `0..group_count`.
    labels: Vec<u32>,
    group_count: usize,
}

/// Result of contracting a graph along a [`Partition`].
pub struct ContractionOutcome<N2, E> {
    /// The quotient graph.  Node `k` corresponds to partition group `k`.
    pub graph: DiGraph<N2, E>,
    /// For each quotient node, the original node ids merged into it, in
    /// ascending order.  Singleton groups have a one-element list.
    pub members: Vec<Vec<NodeId>>,
    /// Number of self-loop edges dropped because both endpoints fell into
    /// the same group (e.g. the investment arcs inside a contracted SCC).
    pub dropped_internal_edges: usize,
}

impl Partition {
    /// Builds a partition from a dense labelling (`labels[v] < group_count`).
    ///
    /// # Panics
    /// Panics if any label is out of range.
    pub fn from_labels(labels: Vec<u32>, group_count: usize) -> Self {
        assert!(
            labels.iter().all(|&l| (l as usize) < group_count),
            "partition label out of range"
        );
        Partition {
            labels,
            group_count,
        }
    }

    /// Builds the partition whose groups are the connected components of
    /// the undirected relation given by `pairs` over `len` nodes.  This is
    /// exactly the fixed point of repeatedly contracting one relation edge
    /// at a time, as the paper describes for interdependence links.
    pub fn from_merge_pairs(len: usize, pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut uf = UnionFind::new(len);
        for (a, b) in pairs {
            uf.union(a.index(), b.index());
        }
        let (labels, group_count) = uf.into_labels();
        Partition {
            labels,
            group_count,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// The dense labelling: `labels()[v]` is the group of node `v`.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Group of node `v`, as a node id of the quotient graph.
    pub fn group_of(&self, v: NodeId) -> NodeId {
        NodeId::from_index(self.labels[v.index()] as usize)
    }

    /// Whether the partition is trivial (every group a singleton).
    pub fn is_identity(&self) -> bool {
        self.group_count == self.labels.len()
    }

    /// Contracts `graph` along this partition.
    ///
    /// * Quotient node `k`'s payload is produced by `merge_nodes`, which
    ///   receives the (non-empty, ascending) member list of group `k`.
    /// * Edges between distinct groups are kept (payload cloned); edges
    ///   internal to a group are dropped and counted.
    /// * Parallel quotient edges are preserved; dedupe afterwards if the
    ///   caller needs simple graphs.
    ///
    /// # Panics
    /// Panics if the partition length differs from the graph's node count.
    pub fn quotient<N, E: Clone, N2>(
        &self,
        graph: &DiGraph<N, E>,
        mut merge_nodes: impl FnMut(&[NodeId]) -> N2,
    ) -> ContractionOutcome<N2, E> {
        assert_eq!(
            self.labels.len(),
            graph.node_count(),
            "partition does not match graph size"
        );
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); self.group_count];
        for v in graph.node_ids() {
            members[self.labels[v.index()] as usize].push(v);
        }
        let mut quotient: DiGraph<N2, E> =
            DiGraph::with_capacity(self.group_count, graph.edge_count());
        for group in &members {
            debug_assert!(!group.is_empty(), "dense labels guarantee non-empty groups");
            quotient.add_node(merge_nodes(group));
        }
        let mut dropped = 0usize;
        for edge in graph.edges() {
            let s = self.group_of(edge.source);
            let t = self.group_of(edge.target);
            if s == t {
                dropped += 1;
            } else {
                quotient.add_edge(s, t, edge.weight.clone());
            }
        }
        ContractionOutcome {
            graph: quotient,
            members,
            dropped_internal_edges: dropped,
        }
    }
}

/// Removes duplicate `(source, target, key)` arcs, keeping the first
/// occurrence of each.  `key` projects the payload to the equality class
/// that matters (for TPIIN arcs, the color).  Returns a new graph with the
/// same nodes.
pub fn dedup_edges<N: Clone, E: Clone, K: Ord>(
    graph: &DiGraph<N, E>,
    mut key: impl FnMut(&E) -> K,
) -> DiGraph<N, E> {
    let mut out: DiGraph<N, E> = DiGraph::with_capacity(graph.node_count(), graph.edge_count());
    for (_, w) in graph.nodes() {
        out.add_node(w.clone());
    }
    let mut seen: std::collections::BTreeSet<(u32, u32, K)> = std::collections::BTreeSet::new();
    for edge in graph.edges() {
        let sig = (
            edge.source.index() as u32,
            edge.target.index() as u32,
            key(edge.weight),
        );
        if seen.insert(sig) {
            out.add_edge(edge.source, edge.target, edge.weight.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from(edges: &[(usize, usize)], n: usize) -> DiGraph<usize, u32> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for (k, &(a, b)) in edges.iter().enumerate() {
            g.add_edge(ids[a], ids[b], k as u32);
        }
        g
    }

    #[test]
    fn merge_pairs_forms_transitive_groups() {
        let p = Partition::from_merge_pairs(
            5,
            [
                (NodeId::from_index(0), NodeId::from_index(1)),
                (NodeId::from_index(1), NodeId::from_index(2)),
            ],
        );
        assert_eq!(p.group_count(), 3);
        assert_eq!(
            p.group_of(NodeId::from_index(0)),
            p.group_of(NodeId::from_index(2))
        );
        assert_ne!(
            p.group_of(NodeId::from_index(0)),
            p.group_of(NodeId::from_index(3))
        );
        assert!(!p.is_identity());
    }

    #[test]
    fn quotient_reattaches_external_arcs_and_drops_internal() {
        // 0 -> 1 (will merge 0,1), 1 -> 2, 3 -> 0.
        let g = graph_from(&[(0, 1), (1, 2), (3, 0)], 4);
        let p = Partition::from_merge_pairs(4, [(NodeId::from_index(0), NodeId::from_index(1))]);
        let out = p.quotient(&g, |members| members.len());
        assert_eq!(out.graph.node_count(), 3);
        assert_eq!(out.dropped_internal_edges, 1);
        assert_eq!(out.graph.edge_count(), 2);
        // The merged group contains the two original nodes.
        let syndicate = p.group_of(NodeId::from_index(0));
        assert_eq!(
            out.members[syndicate.index()],
            vec![NodeId::from_index(0), NodeId::from_index(1)]
        );
        assert_eq!(*out.graph.node(syndicate), 2);
        // 1 -> 2 became syndicate -> group(2); 3 -> 0 became group(3) -> syndicate.
        assert!(out
            .graph
            .contains_edge(syndicate, p.group_of(NodeId::from_index(2))));
        assert!(out
            .graph
            .contains_edge(p.group_of(NodeId::from_index(3)), syndicate));
    }

    #[test]
    fn identity_partition_copies_the_graph() {
        let g = graph_from(&[(0, 1), (1, 2)], 3);
        let p = Partition::from_labels(vec![0, 1, 2], 3);
        assert!(p.is_identity());
        let out = p.quotient(&g, |m| m[0].index());
        assert_eq!(out.graph.node_count(), 3);
        assert_eq!(out.graph.edge_count(), 2);
        assert_eq!(out.dropped_internal_edges, 0);
    }

    #[test]
    fn quotient_keeps_parallel_arcs_until_dedup() {
        // Merging 1 and 2 makes both 0->1 and 0->2 become 0'->{1,2}.
        let g = graph_from(&[(0, 1), (0, 2)], 3);
        let p = Partition::from_merge_pairs(3, [(NodeId::from_index(1), NodeId::from_index(2))]);
        let out = p.quotient(&g, |_| ());
        assert_eq!(out.graph.edge_count(), 2);
        let deduped = dedup_edges(&out.graph, |_| 0u8);
        assert_eq!(deduped.edge_count(), 1);
    }

    #[test]
    fn dedup_distinguishes_by_key() {
        let mut g: DiGraph<(), char> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 'x');
        g.add_edge(a, b, 'x');
        g.add_edge(a, b, 'y');
        let d = dedup_edges(&g, |&c| c);
        assert_eq!(d.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        Partition::from_labels(vec![0, 3], 2);
    }

    #[test]
    #[should_panic(expected = "does not match graph size")]
    fn mismatched_partition_rejected() {
        let g = graph_from(&[], 2);
        let p = Partition::from_labels(vec![0], 1);
        let _ = p.quotient(&g, |_| ());
    }
}
