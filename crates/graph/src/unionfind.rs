//! Disjoint-set forest (union–find) with path halving and union by size.
//!
//! Used for weakly-connected-component segmentation (Algorithm 1, step 3)
//! and for contracting interdependence edges into person syndicates.

/// A disjoint-set forest over the dense index range `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Parent pointer per element; roots point to themselves.
    parent: Vec<u32>,
    /// Size of the set rooted at each root (arbitrary for non-roots).
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize);
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x`, with path halving.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Collapses the forest into a dense labelling: returns `(labels,
    /// count)` where `labels[x]` is in `0..count` and two elements share a
    /// label iff they share a set.  Labels are assigned in order of first
    /// appearance, so the output is deterministic.
    pub fn into_labels(mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        for x in 0..n {
            let r = self.find(x);
            if label[r] == u32::MAX {
                label[r] = next;
                next += 1;
            }
            label[x] = label[r];
        }
        (label, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "repeated union reports no change");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(1, 2));
        assert_eq!(uf.set_size(4), 2);
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same_set(0, 2));
        assert_eq!(uf.set_size(0), 3);
    }

    #[test]
    fn labels_are_dense_and_first_appearance_ordered() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(1, 2);
        let (labels, count) = uf.into_labels();
        assert_eq!(count, 4);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert!(labels.iter().all(|&l| (l as usize) < count));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        let (labels, count) = uf.into_labels();
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }
}
