//! Property-based tests for the graph substrate: the algorithms are
//! checked against independent naive reference implementations on random
//! graphs.

use proptest::prelude::*;
use tpiin_graph::{
    condensation_partition, is_acyclic, reachable_from, tarjan_scc, topological_sort,
    weakly_connected_components, DiGraph, NodeId, Partition, UnionFind,
};

/// Strategy: a random digraph with up to `max_n` nodes and `max_m` edges.
fn arb_digraph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_m).prop_map(move |edges| {
            let mut g = DiGraph::new();
            let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
            for (a, b) in edges {
                g.add_edge(ids[a], ids[b], ());
            }
            g
        })
    })
}

/// Strategy: a random DAG (edges only from lower to higher index).
fn arb_dag(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_m).prop_map(move |edges| {
            let mut g = DiGraph::new();
            let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
            for (a, b) in edges {
                if a < b {
                    g.add_edge(ids[a], ids[b], ());
                }
            }
            g
        })
    })
}

/// Naive SCC labelling: mutual reachability via per-node DFS masks.
fn naive_scc_labels(g: &DiGraph<(), ()>) -> Vec<usize> {
    let n = g.node_count();
    let reach: Vec<Vec<bool>> = (0..n)
        .map(|v| reachable_from(g, NodeId::from_index(v)))
        .collect();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for v in 0..n {
        if label[v] != usize::MAX {
            continue;
        }
        for w in v..n {
            if reach[v][w] && reach[w][v] {
                label[w] = next;
            }
        }
        next += 1;
    }
    label
}

proptest! {
    #[test]
    fn tarjan_matches_naive_mutual_reachability(g in arb_digraph(12, 30)) {
        let (labels, _) = condensation_partition(&g);
        let naive = naive_scc_labels(&g);
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                prop_assert_eq!(
                    labels[a] == labels[b],
                    naive[a] == naive[b],
                    "SCC disagreement on nodes {} and {}", a, b
                );
            }
        }
    }

    #[test]
    fn tarjan_components_partition_the_nodes(g in arb_digraph(20, 60)) {
        let comps = tarjan_scc(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v.index()], "node {:?} in two components", v);
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn condensation_is_acyclic(g in arb_digraph(15, 40)) {
        let (labels, count) = condensation_partition(&g);
        let part = Partition::from_labels(labels, count);
        let out = part.quotient(&g, |_| ());
        prop_assert!(is_acyclic(&out.graph), "condensation must be a DAG");
    }

    #[test]
    fn topological_sort_respects_all_edges(g in arb_dag(20, 80)) {
        let order = topological_sort(&g).expect("generated graph is a DAG");
        let mut pos = vec![0usize; g.node_count()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.source.index()] < pos[e.target.index()]);
        }
    }

    #[test]
    fn graph_with_cycle_fails_topological_sort(n in 2usize..10) {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g.add_edge(ids[n - 1], ids[0], ());
        prop_assert!(topological_sort(&g).is_err());
        prop_assert!(!is_acyclic(&g));
    }

    #[test]
    fn wcc_labels_agree_with_union_find_over_edges(g in arb_digraph(25, 50)) {
        let (labels, count) = weakly_connected_components(&g);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        // Endpoint labels agree for every edge.
        for e in g.edges() {
            prop_assert_eq!(labels[e.source.index()], labels[e.target.index()]);
        }
        // Count matches an independent union-find run.
        let mut uf = UnionFind::new(g.node_count());
        for e in g.edges() {
            uf.union(e.source.index(), e.target.index());
        }
        prop_assert_eq!(uf.set_count(), count);
    }

    #[test]
    fn quotient_conserves_external_edges(g in arb_digraph(12, 30)) {
        // Merge nodes by parity: a partition with at most two groups.
        let n = g.node_count();
        let labels: Vec<u32> = (0..n).map(|v| (v % 2) as u32).collect();
        let groups = if n >= 2 { 2 } else { 1 };
        let part = Partition::from_labels(labels, groups);
        let out = part.quotient(&g, |members| members.len());
        let internal = g
            .edges()
            .filter(|e| e.source.index() % 2 == e.target.index() % 2)
            .count();
        prop_assert_eq!(out.dropped_internal_edges, internal);
        prop_assert_eq!(out.graph.edge_count(), g.edge_count() - internal);
        let member_total: usize = (0..out.graph.node_count())
            .map(|k| *out.graph.node(NodeId::from_index(k)))
            .sum();
        prop_assert_eq!(member_total, n);
    }

    #[test]
    fn reachability_is_transitive(g in arb_digraph(12, 24)) {
        let n = g.node_count();
        let reach: Vec<Vec<bool>> =
            (0..n).map(|v| reachable_from(&g, NodeId::from_index(v))).collect();
        for a in 0..n {
            for b in 0..n {
                if !reach[a][b] {
                    continue;
                }
                for (c, &reachable) in reach[b].iter().enumerate() {
                    if reachable {
                        prop_assert!(reach[a][c], "reach not transitive: {}->{}->{}", a, b, c);
                    }
                }
            }
        }
    }
}
