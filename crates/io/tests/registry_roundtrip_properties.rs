//! Property-based round-trip tests of the interned ingest path: a
//! registry assembled by [`tpiin_io::RegistryBuilder`] (names resolved
//! through the arena interner, symbol index == entity id), saved with
//! [`tpiin_io::save_registry`] and re-loaded with
//! [`tpiin_io::load_registry`], must come back record-for-record equal —
//! and fuse to an identical TPIIN.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tpiin_io::adapters::RegistryBuilder;
use tpiin_io::registry_csv::{load_registry, save_registry};

#[derive(Debug, Clone)]
struct RawSources {
    lp_of: Vec<usize>,
    directorships: Vec<(usize, usize)>,
    kinship: Vec<(usize, usize, bool)>,
    investments: Vec<(usize, usize)>,
    trades: Vec<(usize, usize)>,
}

fn arb_sources() -> impl Strategy<Value = RawSources> {
    (2usize..7, 2usize..10).prop_flat_map(|(np, nc)| {
        (
            proptest::collection::vec(0..np, nc),
            proptest::collection::vec((0..np, 0..nc), 0..10),
            proptest::collection::vec((0..np, 0..np, any::<bool>()), 0..5),
            proptest::collection::vec((0..nc, 0..nc), 0..12),
            proptest::collection::vec((0..nc, 0..nc), 0..10),
        )
            .prop_map(
                move |(lp_of, directorships, kinship, investments, trades)| RawSources {
                    lp_of,
                    directorships,
                    kinship,
                    investments,
                    trades,
                },
            )
    })
}

/// Renders the raw data as the adapter's four CSV formats and ingests
/// them through the interned builder.
fn ingest(raw: &RawSources) -> tpiin_model::SourceRegistry {
    let mut board = String::from("name,company,position,legal_person\n");
    for (c, &p) in raw.lp_of.iter().enumerate() {
        board.push_str(&format!("P{p},C{c},CEO,yes\n"));
    }
    for &(p, c) in &raw.directorships {
        board.push_str(&format!("P{p},C{c},director,no\n"));
    }
    let mut shares = String::from("investor,investee,share\n");
    for &(a, b) in &raw.investments {
        if a != b {
            shares.push_str(&format!("C{a},C{b},50%\n"));
        }
    }
    let mut relations = String::from("a,b,relation\n");
    for &(a, b, kin) in &raw.kinship {
        if a != b {
            let rel = if kin { "sibling" } else { "acting-in-concert" };
            relations.push_str(&format!("P{a},P{b},{rel}\n"));
        }
    }
    let mut trades = String::from("seller,buyer,volume\n");
    for &(a, b) in &raw.trades {
        if a != b {
            trades.push_str(&format!("C{a},C{b},100\n"));
        }
    }

    let mut builder = RegistryBuilder::new();
    builder.load_board_roster(&board, "board.csv").unwrap();
    builder.load_shareholdings(&shares, "shares.csv").unwrap();
    builder.load_relationships(&relations, "rel.csv").unwrap();
    builder.load_trades(&trades, "trades.csv").unwrap();
    builder.finish().expect("generated sources are valid")
}

fn fresh_dir() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tpiin-io-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interned ingest -> save -> load preserves every record, and both
    /// sides fuse to the same TPIIN.
    #[test]
    fn interned_ingest_roundtrips_through_csv(raw in arb_sources()) {
        let original = ingest(&raw);
        let dir = fresh_dir();
        save_registry(&original, &dir).unwrap();
        let reloaded = load_registry(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        prop_assert_eq!(reloaded.person_count(), original.person_count());
        prop_assert_eq!(reloaded.company_count(), original.company_count());
        for (id, p) in original.persons() {
            prop_assert_eq!(reloaded.person(id), p);
        }
        for (id, c) in original.companies() {
            prop_assert_eq!(reloaded.company(id), c);
        }
        prop_assert_eq!(reloaded.interdependencies(), original.interdependencies());
        prop_assert_eq!(reloaded.influences(), original.influences());
        prop_assert_eq!(reloaded.investments(), original.investments());
        prop_assert_eq!(reloaded.tradings(), original.tradings());

        let (fused_original, _) = tpiin_fusion::fuse(&original).expect("valid registry fuses");
        let (fused_reloaded, _) = tpiin_fusion::fuse(&reloaded).expect("valid registry fuses");
        prop_assert_eq!(fused_original.edge_list(), fused_reloaded.edge_list());
    }

    /// Re-ingesting the same rows in the same order hands out the same
    /// interned ids: ingest is deterministic.
    #[test]
    fn interned_ingest_is_deterministic(raw in arb_sources()) {
        let a = ingest(&raw);
        let b = ingest(&raw);
        prop_assert_eq!(a.person_count(), b.person_count());
        prop_assert_eq!(a.company_count(), b.company_count());
        prop_assert_eq!(a.influences(), b.influences());
        prop_assert_eq!(a.investments(), b.investments());
        prop_assert_eq!(a.interdependencies(), b.interdependencies());
        prop_assert_eq!(a.tradings(), b.tradings());
    }
}
