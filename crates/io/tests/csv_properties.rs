//! Property-based round-trip tests for the CSV layer and the registry
//! serialization.

use proptest::prelude::*;
use tpiin_io::csv;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any table of arbitrary unicode strings survives render -> parse.
    #[test]
    fn csv_roundtrip(records in proptest::collection::vec(
        proptest::collection::vec(".*", 1..5), 0..8)) {
        let text = csv::render(&records);
        let parsed = csv::parse(&text, "prop").unwrap();
        // Rows that are entirely empty single fields serialize to blank
        // lines, which parse skips; normalize both sides.
        let normalize = |rows: &[Vec<String>]| -> Vec<Vec<String>> {
            rows.iter()
                .filter(|r| !(r.len() == 1 && r[0].is_empty()))
                .cloned()
                .collect()
        };
        prop_assert_eq!(normalize(&parsed), normalize(&records));
    }

    /// Escaping never changes the parsed value of a single field.
    #[test]
    fn field_escape_roundtrip(field in ".*") {
        let text = format!("{},x\n", csv::escape_field(&field));
        let parsed = csv::parse(&text, "prop").unwrap();
        prop_assert_eq!(&parsed[0][0], &field);
    }
}

/// Registry CSV round-trip on randomized provinces (seeded, three sizes).
#[test]
fn registry_roundtrip_random_provinces() {
    for (seed, scale) in [(1u64, 0.05), (2, 0.1), (3, 0.15)] {
        let config = tpiin_datagen::ProvinceConfig {
            seed,
            investment_cycles: 1,
            ..tpiin_datagen::ProvinceConfig::scaled(scale)
        };
        let mut registry = tpiin_datagen::generate_province(&config);
        tpiin_datagen::add_random_trading(&mut registry, 0.01, seed);
        let dir = std::env::temp_dir().join(format!("tpiin-io-prop-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        tpiin_io::registry_csv::save_registry(&registry, &dir).unwrap();
        let loaded = tpiin_io::registry_csv::load_registry(&dir).unwrap();
        assert_eq!(loaded.influences(), registry.influences());
        assert_eq!(loaded.investments(), registry.investments());
        assert_eq!(loaded.tradings(), registry.tradings());
        assert_eq!(loaded.interdependencies(), registry.interdependencies());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

mod json_roundtrip {
    use proptest::prelude::*;
    use tpiin_io::json::Json;

    fn arb_json() -> impl Strategy<Value = Json> {
        let leaf = prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            // Finite numbers only; NaN/inf serialize to null by design.
            (-1e12f64..1e12).prop_map(Json::Number),
            ".*".prop_map(Json::String),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
                proptest::collection::vec((".*", inner), 0..4).prop_map(|entries| Json::Object(
                    entries
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect()
                )),
            ]
        })
    }

    fn approx_eq(a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Number(x), Json::Number(y)) => {
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
            }
            (Json::Array(xs), Json::Array(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| approx_eq(x, y))
            }
            (Json::Object(xs), Json::Object(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|((ka, x), (kb, y))| ka == kb && approx_eq(x, y))
            }
            _ => a == b,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn compact_and_pretty_roundtrip(value in arb_json()) {
            let compact = Json::parse(&value.to_string()).unwrap();
            prop_assert!(approx_eq(&compact, &value), "{compact:?} != {value:?}");
            let pretty = Json::parse(&value.to_pretty()).unwrap();
            prop_assert!(approx_eq(&pretty, &value));
        }
    }
}

/// The summary.json written by the reports module parses back and its
/// counters agree with the detection result.
#[test]
fn summary_json_roundtrip() {
    use tpiin_io::json::Json;
    let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
    let result = tpiin_core::detect(&tpiin);
    let text = tpiin_io::reports::summary_json(&result).to_pretty();
    let parsed = Json::parse(&text).unwrap();
    assert_eq!(
        parsed.get("simple_groups").and_then(Json::as_f64),
        Some(result.simple_group_count as f64)
    );
    assert_eq!(
        parsed.get("total_trading_arcs").and_then(Json::as_f64),
        Some(result.total_trading_arcs as f64)
    );
    assert_eq!(parsed.get("overflowed"), Some(&Json::Bool(false)));
}

mod edgelist_fuzz {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The edge-list parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(text in ".*") {
            let _ = tpiin_io::edgelist::parse_rows(&text, "fuzz");
            let _ = tpiin_io::edgelist::parse_edge_list(&text, "fuzz");
        }

        /// The snapshot reader never panics on arbitrary input.
        #[test]
        fn snapshot_reader_never_panics(text in ".*") {
            let _ = tpiin_io::snapshot::read_snapshot(&text);
        }

        /// The JSON parser never panics on arbitrary input.
        #[test]
        fn json_parser_never_panics(text in ".*") {
            let _ = tpiin_io::json::Json::parse(&text);
        }

        /// Structured edge lists round-trip through render + parse.
        #[test]
        fn valid_edge_lists_roundtrip(
            rows in proptest::collection::vec((0u32..50, 0u32..50, proptest::bool::ANY), 0..40)
        ) {
            let text: String = rows
                .iter()
                .map(|&(s, t, inf)| format!("{s}\t{t}\t{}\n", u8::from(inf)))
                .collect();
            let parsed = tpiin_io::edgelist::parse_rows(&text, "prop").unwrap();
            prop_assert_eq!(parsed.len(), rows.len());
            for (row, &(s, t, inf)) in parsed.iter().zip(&rows) {
                prop_assert_eq!(row.source, s);
                prop_assert_eq!(row.target, t);
                prop_assert_eq!(row.influence, inf);
            }
        }
    }
}
