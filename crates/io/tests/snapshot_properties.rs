//! Property-based round-trip tests for the snapshot label escaping:
//! arbitrary Unicode labels — salted with the escape metacharacters
//! (`%`, space, tab, CR, LF) — must survive `write_snapshot` →
//! `read_snapshot` byte-for-byte.  Decoding `%XX` per *character*
//! instead of per *byte* corrupted every multi-byte UTF-8 label; this
//! test pins the byte-level contract.

use proptest::prelude::*;
use tpiin_io::snapshot::{read_snapshot, write_snapshot};
use tpiin_model::{InfluenceKind, InfluenceRecord, Role, RoleSet, SourceRegistry};

/// Characters the escaper must handle explicitly, plus multi-byte
/// UTF-8 neighbours that a Latin-1 decode would corrupt.
const SPECIALS: &[char] = &['%', ' ', '\t', '\r', '\n', 'é', '中', '🦀', '%'];

/// An arbitrary Unicode string with escape metacharacters woven in.
fn arb_label() -> impl Strategy<Value = String> {
    (
        ".*",
        proptest::collection::vec(0usize..SPECIALS.len(), 0..8),
    )
        .prop_map(|(base, specials)| {
            let mut label = String::from("x"); // labels stay non-empty
            let mut specials = specials.into_iter();
            for ch in base.chars() {
                label.push(ch);
                if let Some(i) = specials.next() {
                    label.push(SPECIALS[i]);
                }
            }
            for i in specials {
                label.push(SPECIALS[i]);
            }
            label
        })
}

proptest! {
    #[test]
    fn unicode_labels_roundtrip(person_label in arb_label(), company_label in arb_label()) {
        let mut registry = SourceRegistry::new();
        let p = registry.add_person(&person_label, RoleSet::of(&[Role::Ceo]));
        let c = registry.add_company(&company_label);
        registry.add_influence(InfluenceRecord {
            person: p,
            company: c,
            kind: InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&registry).expect("two-node registry fuses");
        let restored = read_snapshot(&write_snapshot(&tpiin)).expect("snapshot parses");
        prop_assert_eq!(restored.label(tpiin.person_node[0]), person_label.as_str());
        prop_assert_eq!(restored.label(tpiin.company_node[0]), company_label.as_str());
    }

    /// Group provenance must survive the v2 snapshot round-trip: same
    /// records, and every referenced arc still resolves in the restored
    /// network.
    #[test]
    fn provenance_survives_snapshot_roundtrip(seed in 0u64..32) {
        let config = tpiin_datagen::ProvinceConfig {
            seed,
            ..tpiin_datagen::ProvinceConfig::scaled(0.05)
        };
        let mut registry = tpiin_datagen::generate_province(&config);
        tpiin_datagen::add_random_trading(&mut registry, 0.02, seed.wrapping_add(7));
        let (tpiin, _) = tpiin_fusion::fuse(&registry).expect("generated registry fuses");
        let restored = read_snapshot(&write_snapshot(&tpiin)).expect("snapshot parses");
        let a = tpiin_core::detect(&tpiin);
        let b = tpiin_core::detect(&restored);
        prop_assert_eq!(&a.provenances, &b.provenances);
        for prov in &b.provenances {
            prop_assert!(prov.audit(&restored).is_ok());
        }
    }

    /// The binary zero-copy decode must be bit-identical to the text
    /// decode of the same network: same snapshot rendering, same
    /// provenance feed, same frozen CSR lanes, same detection output.
    #[test]
    fn binary_and_text_decodes_are_bit_identical(seed in 0u64..32) {
        let config = tpiin_datagen::ProvinceConfig {
            seed,
            ..tpiin_datagen::ProvinceConfig::scaled(0.05)
        };
        let mut registry = tpiin_datagen::generate_province(&config);
        tpiin_datagen::add_random_trading(&mut registry, 0.02, seed.wrapping_add(7));
        let (tpiin, _) = tpiin_fusion::fuse(&registry).expect("generated registry fuses");

        let text = write_snapshot(&tpiin);
        let bin = tpiin_io::snapshot_bin::write_snapshot_bin(&tpiin);
        let from_text =
            tpiin_io::snapshot::read_snapshot_bytes(text.as_bytes()).expect("text decodes");
        let from_bin = tpiin_io::snapshot::read_snapshot_bytes(&bin).expect("binary decodes");

        // Full-state equality via the canonical text rendering, plus
        // the fields the rendering cannot see: provenance feed order
        // and the frozen CSR arrays of every colour lane.
        prop_assert_eq!(write_snapshot(&from_text), write_snapshot(&from_bin));
        prop_assert_eq!(&from_text.arc_sources, &from_bin.arc_sources);
        let (a, b) = (from_text.csr(), from_bin.csr());
        for lane in 0..2 {
            prop_assert_eq!(a.lane_out_offsets(lane), b.lane_out_offsets(lane));
            prop_assert_eq!(a.lane_out_targets(lane), b.lane_out_targets(lane));
            prop_assert_eq!(a.lane_out_edge_ids(lane), b.lane_out_edge_ids(lane));
            prop_assert_eq!(a.lane_in_offsets(lane), b.lane_in_offsets(lane));
            prop_assert_eq!(a.lane_in_sources(lane), b.lane_in_sources(lane));
        }
        let (da, db) = (tpiin_core::detect(&from_text), tpiin_core::detect(&from_bin));
        prop_assert_eq!(&da.groups, &db.groups);
        prop_assert_eq!(&da.suspicious_trading_arcs, &db.suspicious_trading_arcs);
        prop_assert_eq!(&da.provenances, &db.provenances);
    }
}
