//! Binary zero-copy snapshot format for a fused TPIIN.
//!
//! The text snapshot (see [`crate::snapshot`]) re-parses every record on
//! load: each arc line costs several integer/float parses and each label
//! an unescape pass.  At nation scale (10⁵–10⁶ companies) that parse
//! dominates `serve --watch` hot-swap latency.  This module defines a
//! versioned, magic-tagged flat layout where loading is one bulk read
//! into an 8-byte-aligned buffer plus cheap section-slice views — no
//! per-record parsing — and the frozen CSR lanes travel inside the file
//! so materialization skips the freeze counting sort too.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic     8 bytes   "TPIINBIN"
//! version   u32       1
//! sections  u32       section count (17 + 5 per CSR lane)
//! table     sections × (offset u64, len u64)   byte ranges, 8-aligned
//! payload   the sections, each padded to an 8-byte boundary
//! ```
//!
//! Fixed section indices (element types in brackets):
//!
//! | # | section | contents |
//! |---|---------|----------|
//! | 0 | header  | `[u64; 8]`: nodes, influence arcs, trading arcs, edges, intra trades, person-table len, company-table len, lane count |
//! | 1 | label arena | concatenated UTF-8 label bytes (validated once) |
//! | 2 | label offsets | `u32[n+1]` byte offsets into the arena |
//! | 3 | node tags | `u8[n]`, `0` person / `1` company |
//! | 4 | member offsets | `u32[n+1]` into the flat member array |
//! | 5 | members | `u32[]` source person/company ids, grouped by node |
//! | 6–10 | arcs, columnar | `u32[] src`, `u32[] dst`, `u8[] color`, `f64[] weight`, `u32[] source-seq` |
//! | 11–14 | intra trades, columnar | `u32[] seller`, `u32[] buyer`, `u32[] syndicate`, `f64[] volume` |
//! | 15 | person table | `u32[]` TPIIN node per source person |
//! | 16 | company table | `u32[]` TPIIN node per source company |
//! | 17+ | CSR lanes | per lane: `u32[n+1] out_offsets`, `u32[] out_targets`, `u32[] out_edge_ids`, `u32[n+1] in_offsets`, `u32[] in_sources` |
//!
//! ## Versioning policy
//!
//! The magic never changes; `version` bumps on any layout change and the
//! reader rejects versions it does not know (no silent reinterpretation).
//! New optional sections append to the table — a reader may ignore
//! trailing sections of a version it understands, but never reorder.
//!
//! Every section view is bounds- and alignment-checked before use;
//! malformed input yields a typed [`IoError`], never a panic.

use crate::error::IoError;
use std::ops::Range;
use tpiin_fusion::compact::Label;
use tpiin_fusion::{ArcColor, IntraSyndicateTrade, Tpiin, TpiinArc, TpiinNode};
use tpiin_graph::{CsrGraph, CsrLaneParts, DiGraph, NodeId};
use tpiin_model::{CompanyId, PersonId};

// The on-disk layout is little-endian and the reader reinterprets the
// buffer in place; a big-endian port would need explicit byte swaps.
#[cfg(target_endian = "big")]
compile_error!("the binary snapshot reader assumes a little-endian host");

/// Leading magic bytes of a binary snapshot.  Distinct in the first byte
/// from the text format's `tpiin-snapshot` header, so readers can
/// auto-detect the format from the first eight bytes.
pub const MAGIC: [u8; 8] = *b"TPIINBIN";
/// Current format version.
pub const VERSION: u32 = 1;

/// Sections before the per-lane CSR arrays.
const FIXED_SECTIONS: usize = 17;
/// Sections per CSR lane.
const LANE_SECTIONS: usize = 5;
/// `u64` fields in the header section.
const HEADER_FIELDS: usize = 8;

fn bin_err(message: impl Into<String>) -> IoError {
    IoError::parse("snapshot-bin", 0, message)
}

/// An 8-byte-aligned owned byte buffer.  `Vec<u8>` makes no alignment
/// promise, so the bulk file read is copied once into `u64` storage;
/// every `u32`/`f64` section view is then a plain in-place slice cast.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: u64 -> u8 reinterpretation is always aligned and any
        // byte pattern is a valid u8; the slice covers exactly the
        // allocation the words own.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len()) };
        dst.copy_from_slice(bytes);
        AlignedBuf {
            words,
            len: bytes.len(),
        }
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: as above — alignment 8 ≥ 1 and len ≤ words.len() * 8.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Reinterprets a byte slice as `u32`s; `None` if misaligned or ragged.
fn view_u32(bytes: &[u8]) -> Option<&[u32]> {
    // SAFETY: align_to only returns elements in `mid` when they are
    // correctly aligned, and every bit pattern is a valid u32.
    let (prefix, mid, suffix) = unsafe { bytes.align_to::<u32>() };
    (prefix.is_empty() && suffix.is_empty()).then_some(mid)
}

/// Reinterprets a byte slice as `u64`s; `None` if misaligned or ragged.
fn view_u64(bytes: &[u8]) -> Option<&[u64]> {
    // SAFETY: as `view_u32`.
    let (prefix, mid, suffix) = unsafe { bytes.align_to::<u64>() };
    (prefix.is_empty() && suffix.is_empty()).then_some(mid)
}

/// Reinterprets a byte slice as `f64`s; `None` if misaligned or ragged.
/// Every bit pattern (including NaNs) is a valid `f64`.
fn view_f64(bytes: &[u8]) -> Option<&[f64]> {
    // SAFETY: as `view_u32`.
    let (prefix, mid, suffix) = unsafe { bytes.align_to::<f64>() };
    (prefix.is_empty() && suffix.is_empty()).then_some(mid)
}

/// Incremental writer: appends sections 8-byte-padded and records the
/// `(offset, len)` table to be patched into the preamble at the end.
struct SectionWriter {
    buf: Vec<u8>,
    table: Vec<(u64, u64)>,
}

impl SectionWriter {
    fn new(section_count: usize) -> SectionWriter {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(section_count as u32).to_le_bytes());
        // Reserve the table; patched in `finish`.
        buf.resize(buf.len() + section_count * 16, 0);
        while buf.len() % 8 != 0 {
            buf.push(0);
        }
        SectionWriter {
            buf,
            table: Vec::with_capacity(section_count),
        }
    }

    fn section(&mut self, bytes: &[u8]) {
        self.table.push((self.buf.len() as u64, bytes.len() as u64));
        self.buf.extend_from_slice(bytes);
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    fn section_u32s(&mut self, values: impl Iterator<Item = u32>) {
        let start = self.buf.len();
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        let len = self.buf.len() - start;
        self.table.push((start as u64, len as u64));
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    fn section_f64s(&mut self, values: impl Iterator<Item = f64>) {
        let start = self.buf.len();
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        let len = self.buf.len() - start;
        self.table.push((start as u64, len as u64));
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let mut cursor = MAGIC.len() + 8;
        for &(offset, len) in &self.table {
            self.buf[cursor..cursor + 8].copy_from_slice(&offset.to_le_bytes());
            self.buf[cursor + 8..cursor + 16].copy_from_slice(&len.to_le_bytes());
            cursor += 16;
        }
        self.buf
    }
}

/// Serializes a fused TPIIN into the binary layout.
pub fn write_snapshot_bin(tpiin: &Tpiin) -> Vec<u8> {
    let n = tpiin.graph.node_count();
    let edges = tpiin.graph.edge_count();
    let csr = tpiin.csr();
    let lanes = csr.lane_count();
    let mut w = SectionWriter::new(FIXED_SECTIONS + LANE_SECTIONS * lanes);

    // 0: header.
    let mut header = Vec::with_capacity(HEADER_FIELDS * 8);
    for v in [
        n as u64,
        tpiin.influence_arc_count as u64,
        tpiin.trading_arc_count as u64,
        edges as u64,
        tpiin.intra_syndicate_trades.len() as u64,
        tpiin.person_node.len() as u64,
        tpiin.company_node.len() as u64,
        lanes as u64,
    ] {
        header.extend_from_slice(&v.to_le_bytes());
    }
    w.section(&header);

    // 1–2: label arena + offsets.
    let mut arena = String::new();
    let mut label_offsets = Vec::with_capacity(n + 1);
    label_offsets.push(0u32);
    for (_, node) in tpiin.graph.nodes() {
        arena.push_str(node.label());
        assert!(
            arena.len() <= u32::MAX as usize,
            "label arena exceeds 4 GiB"
        );
        label_offsets.push(arena.len() as u32);
    }
    w.section(arena.as_bytes());
    w.section_u32s(label_offsets.into_iter());

    // 3–5: node tags, member offsets, flat members.
    let mut tags = Vec::with_capacity(n);
    let mut member_offsets = Vec::with_capacity(n + 1);
    let mut members: Vec<u32> = Vec::new();
    member_offsets.push(0u32);
    for (_, node) in tpiin.graph.nodes() {
        match node {
            TpiinNode::Person { members: m, .. } => {
                tags.push(0u8);
                members.extend(m.iter().map(|p| p.0));
            }
            TpiinNode::Company { members: m, .. } => {
                tags.push(1u8);
                members.extend(m.iter().map(|c| c.0));
            }
        }
        member_offsets.push(members.len() as u32);
    }
    w.section(&tags);
    w.section_u32s(member_offsets.into_iter());
    w.section_u32s(members.into_iter());

    // 6–10: columnar arcs, insertion (edge-id) order.
    w.section_u32s(tpiin.graph.edges().map(|e| e.source.index() as u32));
    w.section_u32s(tpiin.graph.edges().map(|e| e.target.index() as u32));
    let colors: Vec<u8> = tpiin
        .graph
        .edges()
        .map(|e| e.weight.color.code() as u8)
        .collect();
    w.section(&colors);
    w.section_f64s(tpiin.graph.edges().map(|e| e.weight.weight));
    w.section_u32s((0..edges).map(|i| tpiin.arc_sources.get(i).copied().unwrap_or(u32::MAX)));

    // 11–14: columnar intra-syndicate trades.
    let intra = &tpiin.intra_syndicate_trades;
    w.section_u32s(intra.iter().map(|t| t.seller.0));
    w.section_u32s(intra.iter().map(|t| t.buyer.0));
    w.section_u32s(intra.iter().map(|t| t.syndicate.index() as u32));
    w.section_f64s(intra.iter().map(|t| t.volume));

    // 15–16: dense member -> node lookup tables.
    w.section_u32s(tpiin.person_node.iter().map(|v| v.index() as u32));
    w.section_u32s(tpiin.company_node.iter().map(|v| v.index() as u32));

    // 17+: the frozen CSR lanes, verbatim.
    for lane in 0..lanes {
        w.section_u32s(csr.lane_out_offsets(lane).iter().copied());
        w.section_u32s(csr.lane_out_targets(lane).iter().copied());
        w.section_u32s(csr.lane_out_edge_ids(lane).iter().map(|e| e.index() as u32));
        w.section_u32s(csr.lane_in_offsets(lane).iter().copied());
        w.section_u32s(csr.lane_in_sources(lane).iter().copied());
    }
    w.finish()
}

/// Scalar counts from the header section.
#[derive(Clone, Copy, Debug)]
struct Header {
    nodes: usize,
    influence_arcs: usize,
    trading_arcs: usize,
    edges: usize,
    intra: usize,
    persons: usize,
    companies: usize,
    lanes: usize,
}

/// A validated view over an in-memory binary snapshot.
///
/// Construction ([`SnapshotView::parse`]) checks the magic, version and
/// the whole section table (bounds, 8-byte alignment, expected count)
/// plus every per-section shape invariant, so the section accessors and
/// [`SnapshotView::materialize`] cannot read out of bounds or panic on
/// malformed input.  The buffer is copied once into aligned storage at
/// parse time; all section views borrow it in place.
pub struct SnapshotView {
    buf: AlignedBuf,
    sections: Vec<Range<usize>>,
    header: Header,
}

impl SnapshotView {
    /// Parses and validates a binary snapshot image.
    pub fn parse(bytes: &[u8]) -> Result<SnapshotView, IoError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(bin_err("file shorter than preamble"));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(bin_err("bad magic bytes"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(bin_err(format!(
                "unsupported version {version} (reader knows {VERSION})"
            )));
        }
        let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        if section_count < FIXED_SECTIONS {
            return Err(bin_err(format!(
                "section count {section_count} below the fixed minimum {FIXED_SECTIONS}"
            )));
        }
        let table_end = 16usize
            .checked_add(
                section_count
                    .checked_mul(16)
                    .ok_or_else(|| bin_err(format!("section count {section_count} overflows")))?,
            )
            .ok_or_else(|| bin_err("section table overflows"))?;
        if table_end > bytes.len() {
            return Err(bin_err(format!(
                "section table ({section_count} entries) is truncated"
            )));
        }

        let buf = AlignedBuf::from_bytes(bytes);
        let data = buf.bytes();
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let at = 16 + i * 16;
            let offset = u64::from_le_bytes(data[at..at + 8].try_into().unwrap());
            let len = u64::from_le_bytes(data[at + 8..at + 16].try_into().unwrap());
            let (offset, len) = (
                usize::try_from(offset)
                    .map_err(|_| bin_err(format!("section {i} offset overflows")))?,
                usize::try_from(len)
                    .map_err(|_| bin_err(format!("section {i} length overflows")))?,
            );
            let end = offset
                .checked_add(len)
                .ok_or_else(|| bin_err(format!("section {i} range overflows")))?;
            if end > data.len() {
                return Err(bin_err(format!(
                    "section {i} [{offset}, {end}) exceeds file size {}",
                    data.len()
                )));
            }
            if offset % 8 != 0 {
                return Err(bin_err(format!(
                    "section {i} offset {offset} is misaligned"
                )));
            }
            sections.push(offset..end);
        }

        let view = SnapshotView {
            buf,
            sections,
            header: Header {
                nodes: 0,
                influence_arcs: 0,
                trading_arcs: 0,
                edges: 0,
                intra: 0,
                persons: 0,
                companies: 0,
                lanes: 0,
            },
        };
        let h = view.read_header()?;
        if section_count != FIXED_SECTIONS + LANE_SECTIONS * h.lanes {
            return Err(bin_err(format!(
                "expected {} sections for {} lanes, found {section_count}",
                FIXED_SECTIONS + LANE_SECTIONS * h.lanes,
                h.lanes
            )));
        }
        let view = SnapshotView { header: h, ..view };
        view.validate_shapes()?;
        Ok(view)
    }

    /// Total bytes of the backing buffer (the whole snapshot image).
    pub fn buffer_len(&self) -> usize {
        self.buf.bytes().len()
    }

    /// TPIIN node count recorded in the header.
    pub fn node_count(&self) -> usize {
        self.header.nodes
    }

    /// Arc count recorded in the header.
    pub fn edge_count(&self) -> usize {
        self.header.edges
    }

    fn section_bytes(&self, i: usize) -> &[u8] {
        &self.buf.bytes()[self.sections[i].clone()]
    }

    fn section_u32s(&self, i: usize, what: &str) -> Result<&[u32], IoError> {
        view_u32(self.section_bytes(i))
            .ok_or_else(|| bin_err(format!("{what} (section {i}) is not a u32 array")))
    }

    fn section_f64s(&self, i: usize, what: &str) -> Result<&[f64], IoError> {
        view_f64(self.section_bytes(i))
            .ok_or_else(|| bin_err(format!("{what} (section {i}) is not an f64 array")))
    }

    fn read_header(&self) -> Result<Header, IoError> {
        let words =
            view_u64(self.section_bytes(0)).ok_or_else(|| bin_err("header is not a u64 array"))?;
        if words.len() != HEADER_FIELDS {
            return Err(bin_err(format!(
                "header holds {} fields, expected {HEADER_FIELDS}",
                words.len()
            )));
        }
        let field = |i: usize, what: &str| -> Result<usize, IoError> {
            usize::try_from(words[i]).map_err(|_| bin_err(format!("{what} count overflows")))
        };
        let h = Header {
            nodes: field(0, "node")?,
            influence_arcs: field(1, "influence-arc")?,
            trading_arcs: field(2, "trading-arc")?,
            edges: field(3, "edge")?,
            intra: field(4, "intra-trade")?,
            persons: field(5, "person")?,
            companies: field(6, "company")?,
            lanes: field(7, "lane")?,
        };
        if h.influence_arcs.checked_add(h.trading_arcs) != Some(h.edges) {
            return Err(bin_err(format!(
                "arc counts {} + {} do not sum to edge count {}",
                h.influence_arcs, h.trading_arcs, h.edges
            )));
        }
        if h.nodes > u32::MAX as usize || h.edges > u32::MAX as usize {
            return Err(bin_err("node or edge count exceeds u32 index space"));
        }
        if h.lanes == 0 || h.lanes > 16 {
            return Err(bin_err(format!("implausible lane count {}", h.lanes)));
        }
        Ok(h)
    }

    /// Cross-checks every section's length against the header counts and
    /// the offset arrays' CSR-style invariants, so `materialize` can
    /// trust the shapes.
    fn validate_shapes(&self) -> Result<(), IoError> {
        let h = &self.header;
        let arena_len = self.section_bytes(1).len();
        check_offset_array(
            self.section_u32s(2, "label offsets")?,
            h.nodes,
            arena_len,
            "label offsets",
        )?;
        if self.section_bytes(3).len() != h.nodes {
            return Err(bin_err(format!(
                "node tags hold {} entries for {} nodes",
                self.section_bytes(3).len(),
                h.nodes
            )));
        }
        let members_len = self.section_u32s(5, "members")?.len();
        check_offset_array(
            self.section_u32s(4, "member offsets")?,
            h.nodes,
            members_len,
            "member offsets",
        )?;
        for (i, what, want) in [
            (6usize, "arc sources(src)", h.edges),
            (7, "arc targets", h.edges),
            (10, "arc source-seqs", h.edges),
            (11, "intra sellers", h.intra),
            (12, "intra buyers", h.intra),
            (13, "intra syndicates", h.intra),
            (15, "person table", h.persons),
            (16, "company table", h.companies),
        ] {
            let got = self.section_u32s(i, what)?.len();
            if got != want {
                return Err(bin_err(format!(
                    "{what} holds {got} entries, expected {want}"
                )));
            }
        }
        if self.section_bytes(8).len() != h.edges {
            return Err(bin_err("arc colors length mismatch"));
        }
        for (i, what, want) in [
            (9usize, "arc weights", h.edges),
            (14, "intra volumes", h.intra),
        ] {
            let got = self.section_f64s(i, what)?.len();
            if got != want {
                return Err(bin_err(format!(
                    "{what} holds {got} entries, expected {want}"
                )));
            }
        }
        for lane in 0..h.lanes {
            let base = FIXED_SECTIONS + lane * LANE_SECTIONS;
            // Only the offset-array shape is checked here; the CSR
            // invariants proper are re-validated by `from_raw_lanes`.
            let targets = self.section_u32s(base + 1, "lane out targets")?.len();
            check_offset_array(
                self.section_u32s(base, "lane out offsets")?,
                h.nodes,
                targets,
                "lane out offsets",
            )?;
            let sources = self.section_u32s(base + 4, "lane in sources")?.len();
            check_offset_array(
                self.section_u32s(base + 3, "lane in offsets")?,
                h.nodes,
                sources,
                "lane in offsets",
            )?;
            let ids = self.section_u32s(base + 2, "lane edge ids")?;
            if ids.len() != targets {
                return Err(bin_err("lane edge ids length mismatch"));
            }
            if ids.iter().any(|&id| id as usize >= h.edges) {
                return Err(bin_err("lane edge id out of range"));
            }
        }
        Ok(())
    }

    /// Materializes the [`Tpiin`] the detector and serve paths consume.
    ///
    /// Labels are sliced out of the one-time-validated arena (no
    /// unescaping), arcs come straight from the columnar arrays (no
    /// number parsing) and the CSR is adopted from the stored lanes (no
    /// freeze counting sort).
    pub fn materialize(&self) -> Result<Tpiin, IoError> {
        let h = &self.header;
        let arena = std::str::from_utf8(self.section_bytes(1))
            .map_err(|_| bin_err("label arena is not valid UTF-8"))?;
        let label_offsets = self.section_u32s(2, "label offsets")?;
        let tags = self.section_bytes(3);
        let member_offsets = self.section_u32s(4, "member offsets")?;
        let members = self.section_u32s(5, "members")?;

        // Node payloads use the small-buffer `Label` / `Members` types:
        // short labels and ≤2-entry member lists land inline in the node
        // slot, so this loop performs no per-node heap allocation for
        // ordinary (non-syndicate) nodes.
        let mut nodes: Vec<TpiinNode> = Vec::with_capacity(h.nodes);
        for v in 0..h.nodes {
            let label = arena
                .get(label_offsets[v] as usize..label_offsets[v + 1] as usize)
                .ok_or_else(|| bin_err(format!("label {v} splits a UTF-8 sequence")))?;
            let ms = &members[member_offsets[v] as usize..member_offsets[v + 1] as usize];
            nodes.push(match tags[v] {
                0 => TpiinNode::Person {
                    label: Label::new(label),
                    members: ms.iter().map(|&m| PersonId(m)).collect(),
                },
                1 => TpiinNode::Company {
                    label: Label::new(label),
                    members: ms.iter().map(|&m| CompanyId(m)).collect(),
                },
                other => return Err(bin_err(format!("bad node tag {other} at node {v}"))),
            });
        }

        let srcs = self.section_u32s(6, "arc sources(src)")?;
        let dsts = self.section_u32s(7, "arc targets")?;
        let colors = self.section_bytes(8);
        let weights = self.section_f64s(9, "arc weights")?;
        let mut edge_list: Vec<(NodeId, NodeId, TpiinArc)> = Vec::with_capacity(h.edges);
        for i in 0..h.edges {
            if srcs[i] as usize >= h.nodes || dsts[i] as usize >= h.nodes {
                return Err(bin_err(format!("arc {i} endpoint out of range")));
            }
            let color = match colors[i] {
                0 => ArcColor::Trading,
                1 => ArcColor::Influence,
                other => return Err(bin_err(format!("bad arc color {other} at arc {i}"))),
            };
            edge_list.push((
                NodeId::from_index(srcs[i] as usize),
                NodeId::from_index(dsts[i] as usize),
                TpiinArc {
                    color,
                    weight: weights[i],
                },
            ));
        }
        // Bulk construction: endpoints were bounds-checked above, so the
        // counting pass allocates every adjacency list at its exact
        // final size instead of growing it push by push.
        let graph = DiGraph::from_edge_list(nodes, edge_list);

        let sellers = self.section_u32s(11, "intra sellers")?;
        let buyers = self.section_u32s(12, "intra buyers")?;
        let syndicates = self.section_u32s(13, "intra syndicates")?;
        let volumes = self.section_f64s(14, "intra volumes")?;
        let mut intra = Vec::with_capacity(h.intra);
        for i in 0..h.intra {
            if syndicates[i] as usize >= h.nodes {
                return Err(bin_err(format!("intra trade {i} syndicate out of range")));
            }
            intra.push(IntraSyndicateTrade {
                seller: CompanyId(sellers[i]),
                buyer: CompanyId(buyers[i]),
                syndicate: NodeId::from_index(syndicates[i] as usize),
                volume: volumes[i],
            });
        }

        let node_table = |i: usize, what: &str| -> Result<Vec<NodeId>, IoError> {
            let raw = self.section_u32s(i, what)?;
            if raw.iter().any(|&v| v as usize >= h.nodes) {
                return Err(bin_err(format!("{what} entry out of range")));
            }
            Ok(raw
                .iter()
                .map(|&v| NodeId::from_index(v as usize))
                .collect())
        };
        let person_node = node_table(15, "person table")?;
        let company_node = node_table(16, "company table")?;

        let mut lanes = Vec::with_capacity(h.lanes);
        for lane in 0..h.lanes {
            let base = FIXED_SECTIONS + lane * LANE_SECTIONS;
            lanes.push(CsrLaneParts {
                out_offsets: self.section_u32s(base, "lane out offsets")?.to_vec(),
                out_targets: self.section_u32s(base + 1, "lane out targets")?.to_vec(),
                out_edge_ids: self.section_u32s(base + 2, "lane edge ids")?.to_vec(),
                in_offsets: self.section_u32s(base + 3, "lane in offsets")?.to_vec(),
                in_sources: self.section_u32s(base + 4, "lane in sources")?.to_vec(),
            });
        }
        let csr = CsrGraph::from_raw_lanes(h.nodes, lanes).map_err(bin_err)?;
        if csr.total_edge_count() != h.edges {
            return Err(bin_err(format!(
                "CSR lanes hold {} edges, header says {}",
                csr.total_edge_count(),
                h.edges
            )));
        }

        Ok(Tpiin::assemble_frozen(
            graph,
            person_node,
            company_node,
            h.influence_arcs,
            h.trading_arcs,
            intra,
            self.section_u32s(10, "arc source-seqs")?.to_vec(),
            csr,
        ))
    }
}

/// Checks the CSR-style shape of an offset array: `n + 1` entries,
/// starts at zero, monotone, final entry equal to the element count of
/// the array it indexes.
fn check_offset_array(
    offsets: &[u32],
    n: usize,
    entries: usize,
    what: &str,
) -> Result<(), IoError> {
    if offsets.len() != n + 1 {
        return Err(bin_err(format!(
            "{what}: {} entries for {n} nodes",
            offsets.len()
        )));
    }
    if offsets[0] != 0 {
        return Err(bin_err(format!(
            "{what}: first offset {} is not 0",
            offsets[0]
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bin_err(format!("{what}: offsets are not monotone")));
    }
    if offsets[n] as usize != entries {
        return Err(bin_err(format!(
            "{what}: final offset {} does not match {entries} entries",
            offsets[n]
        )));
    }
    Ok(())
}

/// Deserializes a binary snapshot produced by [`write_snapshot_bin`].
pub fn read_snapshot_bin(bytes: &[u8]) -> Result<Tpiin, IoError> {
    SnapshotView::parse(bytes)?.materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;

    fn fig7() -> Tpiin {
        tpiin_fusion::fuse(&tpiin_datagen::fig7_registry())
            .unwrap()
            .0
    }

    #[test]
    fn round_trip_preserves_everything() {
        let tpiin = fig7();
        let bytes = write_snapshot_bin(&tpiin);
        let restored = read_snapshot_bin(&bytes).expect("binary snapshot parses");
        assert_eq!(restored.node_count(), tpiin.node_count());
        assert_eq!(restored.influence_arc_count, tpiin.influence_arc_count);
        assert_eq!(restored.trading_arc_count, tpiin.trading_arc_count);
        assert_eq!(restored.person_node, tpiin.person_node);
        assert_eq!(restored.company_node, tpiin.company_node);
        assert_eq!(restored.arc_sources, tpiin.arc_sources);
        // The text writer is the canonical full-state rendering; equal
        // text means equal graph payloads, labels and members.
        assert_eq!(write_snapshot(&restored), write_snapshot(&tpiin));
    }

    #[test]
    fn csr_lanes_are_adopted_not_refrozen() {
        let tpiin = fig7();
        let restored = read_snapshot_bin(&write_snapshot_bin(&tpiin)).unwrap();
        let (a, b) = (tpiin.csr(), restored.csr());
        assert_eq!(a.lane_count(), b.lane_count());
        for lane in 0..a.lane_count() {
            assert_eq!(a.lane_out_offsets(lane), b.lane_out_offsets(lane));
            assert_eq!(a.lane_out_targets(lane), b.lane_out_targets(lane));
            assert_eq!(a.lane_out_edge_ids(lane), b.lane_out_edge_ids(lane));
            assert_eq!(a.lane_in_offsets(lane), b.lane_in_offsets(lane));
            assert_eq!(a.lane_in_sources(lane), b.lane_in_sources(lane));
        }
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let bytes = write_snapshot_bin(&fig7());
        for len in [0, 4, 15, 16, 40, bytes.len() / 2, bytes.len() - 1] {
            let err = read_snapshot_bin(&bytes[..len]);
            assert!(err.is_err(), "length {len} should be rejected");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = write_snapshot_bin(&fig7());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        let err = read_snapshot_bin(&wrong_magic).unwrap_err().to_string();
        assert!(err.contains("bad magic"), "{err}");
        bytes[8] = 0xFF; // version LSB
        let err = read_snapshot_bin(&bytes).unwrap_err().to_string();
        assert!(err.contains("unsupported version"), "{err}");
    }

    #[test]
    fn oversized_and_misaligned_section_offsets_are_rejected() {
        let good = write_snapshot_bin(&fig7());
        // Section 1 (label arena) table entry sits at byte 16 + 16.
        let entry = 32;
        let mut oversized = good.clone();
        oversized[entry..entry + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = read_snapshot_bin(&oversized).unwrap_err().to_string();
        assert!(err.contains("exceeds file size"), "{err}");
        let mut misaligned = good.clone();
        let offset = u64::from_le_bytes(good[entry..entry + 8].try_into().unwrap());
        misaligned[entry..entry + 8].copy_from_slice(&(offset + 1).to_le_bytes());
        let err = read_snapshot_bin(&misaligned).unwrap_err().to_string();
        assert!(err.contains("misaligned"), "{err}");
    }

    #[test]
    fn corrupt_counts_are_rejected_not_panicking() {
        let good = write_snapshot_bin(&fig7());
        // Header section: first table entry points at it; flip each
        // header field to a huge value and expect a typed error.
        let header_off = u64::from_le_bytes(good[16..24].try_into().unwrap()) as usize;
        for field in 0..HEADER_FIELDS {
            let mut bad = good.clone();
            let at = header_off + field * 8;
            bad[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(
                read_snapshot_bin(&bad).is_err(),
                "header field {field} = MAX should be rejected"
            );
        }
    }

    #[test]
    fn view_reports_buffer_len() {
        let bytes = write_snapshot_bin(&fig7());
        let view = SnapshotView::parse(&bytes).unwrap();
        assert_eq!(view.buffer_len(), bytes.len());
        assert_eq!(view.node_count(), fig7().node_count());
    }
}
