//! Investment-tree view of one company (Fig. 17) and its influence
//! surroundings (Fig. 18).
//!
//! The deployed monitoring system shows "a tree-like structure that
//! describes investment relationships between companies related to a
//! specific company"; [`investment_tree`] renders that structure as
//! text: the company's controlling persons, its investee subtree (with
//! shares) and its investor chain upwards.

use std::fmt::Write as _;
use tpiin_model::{CompanyId, SourceRegistry};

fn persons_of(registry: &SourceRegistry, company: CompanyId) -> String {
    let mut lp = None;
    let mut others = Vec::new();
    for inf in registry.influences() {
        if inf.company != company {
            continue;
        }
        let name = &registry.person(inf.person).name;
        if inf.is_legal_person {
            lp = Some(name.clone());
        } else {
            others.push(name.clone());
        }
    }
    let mut parts = Vec::new();
    if let Some(lp) = lp {
        parts.push(format!("LP: {lp}"));
    }
    if !others.is_empty() {
        parts.push(format!("directors: {}", others.join(", ")));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" ({})", parts.join("; "))
    }
}

fn descend(
    registry: &SourceRegistry,
    company: CompanyId,
    prefix: &str,
    depth: usize,
    path: &mut Vec<CompanyId>,
    out: &mut String,
) {
    if depth == 0 {
        return;
    }
    let children: Vec<_> = registry
        .investments()
        .iter()
        .filter(|inv| inv.investor == company)
        .collect();
    for (i, inv) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let branch = if last { "`-" } else { "|-" };
        let cont = if last { "  " } else { "| " };
        if path.contains(&inv.investee) {
            let _ = writeln!(
                out,
                "{prefix}{branch} {} [{}%] (cycle)",
                registry.company(inv.investee).name,
                (inv.share * 100.0).round()
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{prefix}{branch} {} [{}%]{}",
            registry.company(inv.investee).name,
            (inv.share * 100.0).round(),
            persons_of(registry, inv.investee)
        );
        path.push(inv.investee);
        descend(
            registry,
            inv.investee,
            &format!("{prefix}{cont}"),
            depth - 1,
            path,
            out,
        );
        path.pop();
    }
}

/// Renders the investment neighbourhood of `company`: controlling
/// persons, the investee subtree down to `depth` levels, and the direct
/// investors above.  Cycles (mutual investments) are marked rather than
/// recursed into.
pub fn investment_tree(registry: &SourceRegistry, company: CompanyId, depth: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}{}",
        registry.company(company).name,
        persons_of(registry, company)
    );
    let mut path = vec![company];
    descend(registry, company, "", depth, &mut path, &mut out);

    let investors: Vec<_> = registry
        .investments()
        .iter()
        .filter(|inv| inv.investee == company)
        .collect();
    if !investors.is_empty() {
        out.push_str("investors:\n");
        for inv in investors {
            let _ = writeln!(
                out,
                "  <- {} holds {}%{}",
                registry.company(inv.investor).name,
                (inv.share * 100.0).round(),
                persons_of(registry, inv.investor)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{InfluenceKind, InfluenceRecord, InvestmentRecord, Role, RoleSet};

    #[test]
    fn fig7_c1_subtree() {
        let registry = tpiin_datagen::fig7_registry();
        // C1 (id 0) invests in C3; C3's LP is L2.
        let text = investment_tree(&registry, CompanyId(0), 3);
        assert!(text.starts_with("C1 (LP: L6)"), "{text}");
        assert!(text.contains("`- C3 [80%] (LP: L2)"), "{text}");
    }

    #[test]
    fn investors_listed_upward() {
        let registry = tpiin_datagen::fig7_registry();
        // C5 (id 4) is owned by C2.
        let text = investment_tree(&registry, CompanyId(4), 1);
        assert!(text.contains("investors:"), "{text}");
        assert!(text.contains("<- C2 holds 60%"), "{text}");
    }

    #[test]
    fn cycles_are_marked_not_recursed() {
        let mut r = SourceRegistry::new();
        let l = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        let a = r.add_company("A");
        let b = r.add_company("B");
        for c in [a, b] {
            r.add_influence(InfluenceRecord {
                person: l,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(InvestmentRecord {
            investor: a,
            investee: b,
            share: 0.5,
        });
        r.add_investment(InvestmentRecord {
            investor: b,
            investee: a,
            share: 0.5,
        });
        let text = investment_tree(&r, a, 10);
        assert!(text.contains("(cycle)"), "{text}");
        // Terminates (depth guard + cycle mark) with both companies shown.
        assert!(text.contains("B [50%]"));
    }

    #[test]
    fn depth_zero_shows_only_the_root() {
        let registry = tpiin_datagen::fig7_registry();
        let text = investment_tree(&registry, CompanyId(0), 0);
        assert_eq!(text.lines().count(), 1);
    }
}
