//! Source adapters: from raw disclosure formats to registry records.
//!
//! Fig. 4's information sources arrive in their own shapes: CSRC
//! shareholding disclosures list percentages as strings, board rosters
//! mix names and position titles, and the household registry links people
//! by name.  These adapters normalize the three raw formats into a
//! [`SourceRegistry`], resolving entities by name and creating them on
//! first sight:
//!
//! * **board roster** (`name,company,position,legal_person`) — positions
//!   are natural-language-ish titles (`"CEO"`, `"chairman"`,
//!   `"director"`, `"executive director"`, `"shareholder"`);
//! * **shareholding table** (`investor,investee,share`) — shares accept
//!   `"45%"`, `"0.45"` or `"45.0 %"`;
//! * **household/agreement registry** (`a,b,relation`) — relations map
//!   onto kinship (`"sibling"`, `"parent"`, `"spouse"`, `"kin"`) or
//!   interlocking (`"acting-in-concert"`, `"interlocking"`).
//!
//! The adapter is forgiving about case and whitespace but strict about
//! unknown vocabulary: a typo'd position or relation is an error with the
//! file and line, not a silently dropped record.

use crate::csv;
use crate::error::IoError;
use tpiin_model::{
    InfluenceKind, InfluenceRecord, InterdependenceKind, Interner, InvestmentRecord, Role, RoleSet,
    SourceRegistry, TradingRecord,
};

/// Incremental registry builder with name resolution.
///
/// Names are resolved through two arena-backed [`Interner`]s (one per
/// entity kind); symbols are dense in first-sight order, so
/// `Symbol::index` *is* the entity id — each freshly interned name
/// immediately registers the matching registry entity.
#[derive(Default)]
pub struct RegistryBuilder {
    registry: SourceRegistry,
    persons: Interner,
    companies: Interner,
}

impl RegistryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn person(&mut self, name: &str) -> tpiin_model::PersonId {
        let known = self.persons.len();
        let symbol = self.persons.intern(name);
        if symbol.index() == known {
            let id = self.registry.add_person(name, RoleSet::EMPTY);
            debug_assert_eq!(id.index(), symbol.index());
        }
        tpiin_model::PersonId(symbol.0)
    }

    fn company(&mut self, name: &str) -> tpiin_model::CompanyId {
        let known = self.companies.len();
        let symbol = self.companies.intern(name);
        if symbol.index() == known {
            let id = self.registry.add_company(name);
            debug_assert_eq!(id.index(), symbol.index());
        }
        tpiin_model::CompanyId(symbol.0)
    }

    /// Ingests a board roster CSV (`name,company,position,legal_person`,
    /// header row required).
    pub fn load_board_roster(&mut self, text: &str, context: &str) -> Result<usize, IoError> {
        let mut loaded = 0;
        for (i, record) in csv::parse(text, context)?.into_iter().enumerate().skip(1) {
            let line = i + 1;
            if record.len() != 4 {
                return Err(IoError::parse(context, line, "expected 4 columns"));
            }
            let person = self.person(record[0].trim());
            let company = self.company(record[1].trim());
            let (kind, roles) = parse_position(record[2].trim(), context, line)?;
            let is_legal_person = match record[3].trim() {
                "1" | "yes" | "true" => true,
                "0" | "no" | "false" | "" => false,
                other => {
                    return Err(IoError::parse(
                        context,
                        line,
                        format!("legal_person must be yes/no, found `{other}`"),
                    ))
                }
            };
            // Accumulate roles: one person can hold positions in many
            // companies across roster rows.
            let merged = roles
                .iter()
                .fold(self.registry.person(person).roles, |acc, &r| acc.with(r));
            self.registry.set_person_roles(person, merged);
            self.registry.add_influence(InfluenceRecord {
                person,
                company,
                kind,
                is_legal_person,
            });
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Ingests a shareholding table CSV (`investor,investee,share`).
    pub fn load_shareholdings(&mut self, text: &str, context: &str) -> Result<usize, IoError> {
        let mut loaded = 0;
        for (i, record) in csv::parse(text, context)?.into_iter().enumerate().skip(1) {
            let line = i + 1;
            if record.len() != 3 {
                return Err(IoError::parse(context, line, "expected 3 columns"));
            }
            let investor = self.company(record[0].trim());
            let investee = self.company(record[1].trim());
            let share = parse_share(record[2].trim(), context, line)?;
            self.registry.add_investment(InvestmentRecord {
                investor,
                investee,
                share,
            });
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Ingests a household/agreement registry CSV (`a,b,relation`).
    pub fn load_relationships(&mut self, text: &str, context: &str) -> Result<usize, IoError> {
        let mut loaded = 0;
        for (i, record) in csv::parse(text, context)?.into_iter().enumerate().skip(1) {
            let line = i + 1;
            if record.len() != 3 {
                return Err(IoError::parse(context, line, "expected 3 columns"));
            }
            let a = self.person(record[0].trim());
            let b = self.person(record[1].trim());
            let kind = match record[2].trim().to_ascii_lowercase().as_str() {
                "sibling" | "parent" | "child" | "spouse" | "kin" | "kinship" => {
                    InterdependenceKind::Kinship
                }
                "acting-in-concert" | "interlocking" | "agreement" => {
                    InterdependenceKind::Interlocking
                }
                other => {
                    return Err(IoError::parse(
                        context,
                        line,
                        format!("unknown relation `{other}`"),
                    ))
                }
            };
            self.registry.add_interdependence(a, b, kind);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Ingests trading relationships (`seller,buyer,volume`).
    pub fn load_trades(&mut self, text: &str, context: &str) -> Result<usize, IoError> {
        let mut loaded = 0;
        for (i, record) in csv::parse(text, context)?.into_iter().enumerate().skip(1) {
            let line = i + 1;
            if record.len() != 3 {
                return Err(IoError::parse(context, line, "expected 3 columns"));
            }
            let seller = self.company(record[0].trim());
            let buyer = self.company(record[1].trim());
            let volume: f64 = record[2]
                .trim()
                .parse()
                .map_err(|e| IoError::parse(context, line, format!("bad volume: {e}")))?;
            self.registry.add_trading(TradingRecord {
                seller,
                buyer,
                volume,
            });
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Finishes, validating the assembled registry.
    pub fn finish(self) -> Result<SourceRegistry, IoError> {
        self.registry.validate().map_err(IoError::Invalid)?;
        Ok(self.registry)
    }
}

fn parse_position(
    raw: &str,
    context: &str,
    line: usize,
) -> Result<(InfluenceKind, Vec<Role>), IoError> {
    match raw.to_ascii_lowercase().as_str() {
        "ceo" | "general manager" => Ok((InfluenceKind::CeoOf, vec![Role::Ceo])),
        "chairman" | "cb" | "chairman of the board" => {
            Ok((InfluenceKind::ChairmanOf, vec![Role::Chairman]))
        }
        "director" | "board member" => Ok((InfluenceKind::DirectorOf, vec![Role::Director])),
        "executive director" | "managing director" | "ceo and director" => Ok((
            InfluenceKind::CeoAndDirectorOf,
            vec![Role::Ceo, Role::Director],
        )),
        "shareholder" => Ok((InfluenceKind::DirectorOf, vec![Role::Shareholder])),
        other => Err(IoError::parse(
            context,
            line,
            format!("unknown position `{other}`"),
        )),
    }
}

fn parse_share(raw: &str, context: &str, line: usize) -> Result<f64, IoError> {
    let cleaned = raw.trim_end_matches('%').trim();
    let value: f64 = cleaned
        .parse()
        .map_err(|e| IoError::parse(context, line, format!("bad share `{raw}`: {e}")))?;
    let share = if raw.contains('%') || value > 1.0 {
        value / 100.0
    } else {
        value
    };
    if share > 0.0 && share <= 1.0 {
        Ok(share)
    } else {
        Err(IoError::parse(
            context,
            line,
            format!("share `{raw}` outside (0, 100%]"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOARD: &str = "\
name,company,position,legal_person
Li Wei,Acme,CEO,yes
Li Wei,Beta,director,no
Zhang San,Beta,Chairman,yes
Wang Wu,Gamma,executive director,yes
";
    const SHARES: &str = "\
investor,investee,share
Acme,Beta,45%
Beta,Gamma,0.30
";
    const RELATIONS: &str = "\
a,b,relation
Li Wei,Zhang San,sibling
Zhang San,Wang Wu,acting-in-concert
";
    const TRADES: &str = "\
seller,buyer,volume
Beta,Gamma,100000
";

    fn build_all() -> SourceRegistry {
        let mut b = RegistryBuilder::new();
        assert_eq!(b.load_board_roster(BOARD, "board.csv").unwrap(), 4);
        assert_eq!(b.load_shareholdings(SHARES, "shares.csv").unwrap(), 2);
        assert_eq!(b.load_relationships(RELATIONS, "rel.csv").unwrap(), 2);
        assert_eq!(b.load_trades(TRADES, "trades.csv").unwrap(), 1);
        b.finish().unwrap()
    }

    #[test]
    fn assembles_a_valid_registry_with_name_resolution() {
        let r = build_all();
        assert_eq!(r.person_count(), 3, "Li Wei deduplicated across rows");
        assert_eq!(r.company_count(), 3);
        assert_eq!(r.influences().len(), 4);
        assert_eq!(r.investments().len(), 2);
        assert!(
            (r.investments()[0].share - 0.45).abs() < 1e-12,
            "percent parsed"
        );
        assert!(
            (r.investments()[1].share - 0.30).abs() < 1e-12,
            "fraction parsed"
        );
        assert_eq!(r.interdependencies().len(), 2);
        assert!(
            r.validate_strict().is_ok(),
            "adapter assigns consistent roles"
        );
    }

    #[test]
    fn roles_accumulate_across_rows() {
        let r = build_all();
        let li = r.person_by_name("Li Wei").unwrap();
        let roles = r.person(li).roles;
        assert!(roles.contains(Role::Ceo));
        assert!(roles.contains(Role::Director));
    }

    #[test]
    fn detection_runs_on_adapted_data() {
        // Li Wei (CEO of Acme, director of Beta) + sibling Zhang San
        // (chairman of Beta); Acme holds Beta which trades with Gamma,
        // Beta holds Gamma: the IAT Beta -> Gamma is suspicious.
        let r = build_all();
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let result = tpiin_core::detect(&tpiin);
        assert!(result.group_count() >= 1);
        assert!(result
            .suspicious_trading_arcs
            .iter()
            .any(|&(s, t)| tpiin.label(s) == "Beta" && tpiin.label(t) == "Gamma"));
    }

    #[test]
    fn vocabulary_errors_carry_location() {
        let mut b = RegistryBuilder::new();
        let err = b
            .load_board_roster(
                "name,company,position,legal_person\nA,B,emperor,yes\n",
                "b.csv",
            )
            .unwrap_err();
        assert!(err.to_string().contains("b.csv:2"), "{err}");
        let err = b
            .load_relationships("a,b,relation\nA,B,frenemy\n", "r.csv")
            .unwrap_err();
        assert!(err.to_string().contains("frenemy"), "{err}");
        let err = b
            .load_shareholdings("investor,investee,share\nA,B,150%\n", "s.csv")
            .unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn share_parsing_variants() {
        assert!((parse_share("45%", "t", 1).unwrap() - 0.45).abs() < 1e-12);
        assert!((parse_share("45.5 %", "t", 1).unwrap() - 0.455).abs() < 1e-12);
        assert!((parse_share("0.5", "t", 1).unwrap() - 0.5).abs() < 1e-12);
        assert!(
            (parse_share("55", "t", 1).unwrap() - 0.55).abs() < 1e-12,
            "bare >1 treated as percent"
        );
        assert!(parse_share("0", "t", 1).is_err());
        assert!(parse_share("abc", "t", 1).is_err());
    }

    #[test]
    fn finish_rejects_companies_without_legal_person() {
        let mut b = RegistryBuilder::new();
        b.load_shareholdings("investor,investee,share\nA,B,10%\n", "s.csv")
            .unwrap();
        match b.finish() {
            Err(IoError::Invalid(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}
