//! Snapshot format for a fused TPIIN.
//!
//! Fusion runs nightly against the master data; detection, queries and
//! streaming ingestion happen all day.  A snapshot lets those processes
//! share the fused network without re-running fusion: a small header,
//! a node table (color, label, member ids) and the arc list, in a plain
//! line-oriented text format.
//!
//! ```text
//! tpiin-snapshot v2
//! nodes <count>
//! P|C <label> <member-ids,comma-separated>
//! ...
//! arcs <influence-count> <trading-count>
//! <source> <target> <color 0|1> <weight> <source-record-seq>
//! ...
//! intra <count>
//! <seller> <buyer> <syndicate-node> <volume>
//! ```
//!
//! Labels are percent-escaped so whitespace and newlines round-trip.
//!
//! ## Format versions
//!
//! * **v2** (current writer) appends the winning source-record sequence
//!   number to every arc line, carrying [`Tpiin::arc_sources`] so group
//!   provenance survives the snapshot round-trip.  `4294967295`
//!   (`u32::MAX`) marks an arc with no recorded source.
//! * **v1** arc lines have four fields; the reader still accepts them
//!   and fills `arc_sources` with the unknown sentinel.

use crate::error::IoError;
use std::fmt::Write as _;
use tpiin_fusion::{ArcColor, IntraSyndicateTrade, Tpiin, TpiinArc, TpiinNode};
use tpiin_graph::{DiGraph, NodeId};
use tpiin_model::{CompanyId, PersonId};

/// Escaping works on raw bytes: only ASCII metacharacters (`%`, space,
/// tab, CR, LF) are rewritten as `%XX`, so multi-byte UTF-8 sequences
/// pass through untouched and the file stays valid UTF-8.
fn escape_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for ch in label.chars() {
        match ch {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            '\t' => out.push_str("%09"),
            // Everything else — including multi-byte UTF-8 — passes
            // through byte-for-byte.
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label`]: decode `%XX` at the byte level, then
/// validate the assembled bytes as UTF-8.  Decoding per *character*
/// would turn escaped bytes >= 0x80 into Latin-1 code points and corrupt
/// multi-byte labels.
fn unescape_label(text: &str, line: usize) -> Result<String, IoError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'%' {
            out.push(bytes[i]);
            i += 1;
            continue;
        }
        let hex = bytes
            .get(i + 1..i + 3)
            .and_then(|h| std::str::from_utf8(h).ok());
        let code = hex
            .and_then(|h| u8::from_str_radix(h, 16).ok())
            .ok_or_else(|| {
                IoError::parse(
                    "snapshot",
                    line,
                    format!("bad escape %{}", hex.unwrap_or("")),
                )
            })?;
        out.push(code);
        i += 3;
    }
    String::from_utf8(out).map_err(|_| IoError::parse("snapshot", line, "label is not valid UTF-8"))
}

/// Serializes a fused TPIIN.
pub fn write_snapshot(tpiin: &Tpiin) -> String {
    let mut out = String::new();
    out.push_str("tpiin-snapshot v2\n");
    let _ = writeln!(out, "nodes {}", tpiin.graph.node_count());
    for (_, node) in tpiin.graph.nodes() {
        match node {
            TpiinNode::Person { label, members } => {
                let ids: Vec<String> = members.iter().map(|m| m.0.to_string()).collect();
                let _ = writeln!(out, "P {} {}", escape_label(label), ids.join(","));
            }
            TpiinNode::Company { label, members } => {
                let ids: Vec<String> = members.iter().map(|m| m.0.to_string()).collect();
                let _ = writeln!(out, "C {} {}", escape_label(label), ids.join(","));
            }
        }
    }
    let _ = writeln!(
        out,
        "arcs {} {}",
        tpiin.influence_arc_count, tpiin.trading_arc_count
    );
    for (i, e) in tpiin.graph.edges().enumerate() {
        let seq = tpiin.arc_sources.get(i).copied().unwrap_or(u32::MAX);
        let _ = writeln!(
            out,
            "{} {} {} {} {}",
            e.source,
            e.target,
            e.weight.color.code(),
            e.weight.weight,
            seq
        );
    }
    let _ = writeln!(out, "intra {}", tpiin.intra_syndicate_trades.len());
    for t in &tpiin.intra_syndicate_trades {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            t.seller.0, t.buyer.0, t.syndicate, t.volume
        );
    }
    out
}

struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<(usize, &'a str), IoError> {
        self.iter
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| IoError::parse("snapshot", 0, "unexpected end of file"))
    }
}

/// Deserializes a snapshot in either format, auto-detected from the
/// leading bytes: the binary magic (`TPIINBIN`) routes to
/// [`crate::snapshot_bin::read_snapshot_bin`], anything else is decoded
/// as UTF-8 and handed to the text parser.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Tpiin, IoError> {
    if bytes.starts_with(&crate::snapshot_bin::MAGIC) {
        return crate::snapshot_bin::read_snapshot_bin(bytes);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| IoError::parse("snapshot", 0, "snapshot is neither binary nor UTF-8 text"))?;
    read_snapshot(text)
}

/// Deserializes a snapshot produced by [`write_snapshot`].
pub fn read_snapshot(text: &str) -> Result<Tpiin, IoError> {
    let mut lines = Lines {
        iter: text.lines().enumerate(),
    };
    let (ln, header) = lines.next()?;
    let version = match header {
        "tpiin-snapshot v1" => 1,
        "tpiin-snapshot v2" => 2,
        _ => return Err(IoError::parse("snapshot", ln, "bad header")),
    };

    let (ln, nodes_line) = lines.next()?;
    let node_count: usize = nodes_line
        .strip_prefix("nodes ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| IoError::parse("snapshot", ln, "bad nodes line"))?;

    let mut graph: DiGraph<TpiinNode, TpiinArc> = DiGraph::with_capacity(node_count, 0);
    let mut person_node: Vec<(u32, NodeId)> = Vec::new();
    let mut company_node: Vec<(u32, NodeId)> = Vec::new();
    for _ in 0..node_count {
        let (ln, line) = lines.next()?;
        let mut parts = line.splitn(3, ' ');
        let tag = parts.next().unwrap_or("");
        let label = unescape_label(
            parts
                .next()
                .ok_or_else(|| IoError::parse("snapshot", ln, "missing label"))?,
            ln,
        )?;
        let members_raw = parts.next().unwrap_or("");
        let member_ids: Vec<u32> = if members_raw.is_empty() {
            Vec::new()
        } else {
            members_raw
                .split(',')
                .map(|m| {
                    m.parse()
                        .map_err(|_| IoError::parse("snapshot", ln, format!("bad member id {m}")))
                })
                .collect::<Result<_, _>>()?
        };
        match tag {
            "P" => {
                let node = graph.add_node(TpiinNode::Person {
                    label: label.into(),
                    members: member_ids.iter().map(|&m| PersonId(m)).collect(),
                });
                person_node.extend(member_ids.iter().map(|&m| (m, node)));
            }
            "C" => {
                let node = graph.add_node(TpiinNode::Company {
                    label: label.into(),
                    members: member_ids.iter().map(|&m| CompanyId(m)).collect(),
                });
                company_node.extend(member_ids.iter().map(|&m| (m, node)));
            }
            other => {
                return Err(IoError::parse(
                    "snapshot",
                    ln,
                    format!("bad node tag `{other}`"),
                ))
            }
        }
    }

    let (ln, arcs_line) = lines.next()?;
    let counts: Vec<usize> = arcs_line
        .strip_prefix("arcs ")
        .map(|rest| rest.split(' ').filter_map(|n| n.parse().ok()).collect())
        .unwrap_or_default();
    if counts.len() != 2 {
        return Err(IoError::parse("snapshot", ln, "bad arcs line"));
    }
    let (influence_arc_count, trading_arc_count) = (counts[0], counts[1]);
    let arc_fields = if version >= 2 { 5 } else { 4 };
    let mut arc_sources = Vec::with_capacity(influence_arc_count + trading_arc_count);
    for _ in 0..influence_arc_count + trading_arc_count {
        let (ln, line) = lines.next()?;
        let fields: Vec<&str> = line.split(' ').collect();
        if fields.len() != arc_fields {
            return Err(IoError::parse("snapshot", ln, "bad arc line"));
        }
        let parse_u32 = |s: &str| -> Result<u32, IoError> {
            s.parse()
                .map_err(|_| IoError::parse("snapshot", ln, format!("bad id {s}")))
        };
        let source = NodeId::from_index(parse_u32(fields[0])? as usize);
        let target = NodeId::from_index(parse_u32(fields[1])? as usize);
        let color = match fields[2] {
            "0" => ArcColor::Trading,
            "1" => ArcColor::Influence,
            other => return Err(IoError::parse("snapshot", ln, format!("bad color {other}"))),
        };
        let weight: f64 = fields[3]
            .parse()
            .map_err(|_| IoError::parse("snapshot", ln, "bad weight"))?;
        if source.index() >= node_count || target.index() >= node_count {
            return Err(IoError::parse("snapshot", ln, "arc endpoint out of range"));
        }
        if version >= 2 {
            arc_sources.push(
                fields[4]
                    .parse()
                    .map_err(|_| IoError::parse("snapshot", ln, "bad source seq"))?,
            );
        }
        graph.add_edge(source, target, TpiinArc { color, weight });
    }

    let (ln, intra_line) = lines.next()?;
    let intra_count: usize = intra_line
        .strip_prefix("intra ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| IoError::parse("snapshot", ln, "bad intra line"))?;
    let mut intra = Vec::with_capacity(intra_count);
    for _ in 0..intra_count {
        let (ln, line) = lines.next()?;
        let fields: Vec<&str> = line.split(' ').collect();
        if fields.len() != 4 {
            return Err(IoError::parse("snapshot", ln, "bad intra line"));
        }
        intra.push(IntraSyndicateTrade {
            seller: CompanyId(
                fields[0]
                    .parse()
                    .map_err(|_| IoError::parse("snapshot", ln, "bad seller"))?,
            ),
            buyer: CompanyId(
                fields[1]
                    .parse()
                    .map_err(|_| IoError::parse("snapshot", ln, "bad buyer"))?,
            ),
            syndicate: NodeId::from_index(
                fields[2]
                    .parse::<usize>()
                    .map_err(|_| IoError::parse("snapshot", ln, "bad syndicate"))?,
            ),
            volume: fields[3]
                .parse()
                .map_err(|_| IoError::parse("snapshot", ln, "bad volume"))?,
        });
    }

    // Rebuild the dense member -> node lookup tables.
    let build_table = |mut pairs: Vec<(u32, NodeId)>| -> Vec<NodeId> {
        pairs.sort_by_key(|&(m, _)| m);
        pairs.into_iter().map(|(_, n)| n).collect()
    };
    Ok(Tpiin::assemble(
        graph,
        build_table(person_node),
        build_table(company_node),
        influence_arc_count,
        trading_arc_count,
        intra,
        arc_sources,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_core::detect;

    fn roundtrip(tpiin: &Tpiin) -> Tpiin {
        read_snapshot(&write_snapshot(tpiin)).expect("snapshot parses")
    }

    #[test]
    fn fig7_roundtrips_and_detects_identically() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let restored = roundtrip(&tpiin);
        assert_eq!(restored.node_count(), tpiin.node_count());
        assert_eq!(restored.influence_arc_count, tpiin.influence_arc_count);
        assert_eq!(restored.trading_arc_count, tpiin.trading_arc_count);
        assert_eq!(restored.person_node, tpiin.person_node);
        assert_eq!(restored.company_node, tpiin.company_node);
        let a = detect(&tpiin);
        let b = detect(&restored);
        assert_eq!(a.group_count(), b.group_count());
        let keys = |r: &tpiin_core::DetectionResult| -> Vec<_> {
            r.groups.iter().map(|g| g.key()).collect()
        };
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn labels_with_spaces_and_percent_roundtrip() {
        let mut r = tpiin_model::SourceRegistry::new();
        let p = r.add_person(
            "Li Wei 100%",
            tpiin_model::RoleSet::of(&[tpiin_model::Role::Ceo]),
        );
        let c = r.add_company("ACME Ltd.");
        r.add_influence(tpiin_model::InfluenceRecord {
            person: p,
            company: c,
            kind: tpiin_model::InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let restored = roundtrip(&tpiin);
        assert_eq!(restored.label(tpiin.person_node[0]), "Li Wei 100%");
        assert_eq!(restored.label(tpiin.company_node[0]), "ACME Ltd.");
    }

    #[test]
    fn intra_syndicate_trades_survive() {
        let mut r = tpiin_model::SourceRegistry::new();
        let l = r.add_person("L", tpiin_model::RoleSet::of(&[tpiin_model::Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        for c in [c1, c2] {
            r.add_influence(tpiin_model::InfluenceRecord {
                person: l,
                company: c,
                kind: tpiin_model::InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(tpiin_model::InvestmentRecord {
            investor: c1,
            investee: c2,
            share: 0.5,
        });
        r.add_investment(tpiin_model::InvestmentRecord {
            investor: c2,
            investee: c1,
            share: 0.5,
        });
        r.add_trading(tpiin_model::TradingRecord {
            seller: c1,
            buyer: c2,
            volume: 7.0,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        assert_eq!(tpiin.intra_syndicate_trades.len(), 1);
        let restored = roundtrip(&tpiin);
        assert_eq!(restored.intra_syndicate_trades.len(), 1);
        assert_eq!(restored.intra_syndicate_trades[0].volume, 7.0);
    }

    #[test]
    fn v2_roundtrip_preserves_arc_sources() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let text = write_snapshot(&tpiin);
        assert!(text.starts_with("tpiin-snapshot v2\n"));
        let restored = roundtrip(&tpiin);
        assert_eq!(restored.arc_sources, tpiin.arc_sources);
    }

    #[test]
    fn v1_snapshots_still_load_with_unknown_sources() {
        // Backward compatibility: rewrite a current snapshot into the v1
        // layout (4-field arc lines) and load it.
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let v2 = write_snapshot(&tpiin);
        let mut in_arcs = false;
        let v1: String = v2
            .lines()
            .map(|line| {
                let line = if line == "tpiin-snapshot v2" {
                    "tpiin-snapshot v1".to_string()
                } else if in_arcs && line.split(' ').count() == 5 {
                    line.rsplit_once(' ').unwrap().0.to_string()
                } else {
                    line.to_string()
                };
                if line.starts_with("arcs ") {
                    in_arcs = true;
                } else if line.starts_with("intra ") {
                    in_arcs = false;
                }
                line + "\n"
            })
            .collect();
        let restored = read_snapshot(&v1).expect("v1 snapshot parses");
        assert_eq!(restored.node_count(), tpiin.node_count());
        assert_eq!(restored.graph.edge_count(), tpiin.graph.edge_count());
        // Sources are unknown in v1 — every slot holds the sentinel.
        assert_eq!(restored.arc_sources.len(), tpiin.graph.edge_count());
        assert!(restored.arc_sources.iter().all(|&s| s == u32::MAX));
        // Detection still agrees with the v2 load.
        let a = detect(&tpiin);
        let b = detect(&restored);
        assert_eq!(a.group_count(), b.group_count());
    }

    #[test]
    fn unknown_format_versions_are_rejected() {
        let err = read_snapshot("tpiin-snapshot v3\nnodes 0\narcs 0 0\nintra 0\n").unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_context() {
        for (bad, needle) in [
            ("", "unexpected end"),
            ("wrong header\n", "bad header"),
            ("tpiin-snapshot v1\nnodes x\n", "bad nodes line"),
            (
                "tpiin-snapshot v1\nnodes 1\nX lbl 0\narcs 0 0\nintra 0\n",
                "bad node tag",
            ),
            (
                "tpiin-snapshot v1\nnodes 1\nP lbl 0\narcs 1 0\n0 5 1 1.0\nintra 0\n",
                "out of range",
            ),
        ] {
            let err = read_snapshot(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn province_scale_roundtrip() {
        let config = tpiin_datagen::ProvinceConfig::scaled(0.1);
        let mut registry = tpiin_datagen::generate_province(&config);
        tpiin_datagen::add_random_trading(&mut registry, 0.01, 3);
        let (tpiin, _) = tpiin_fusion::fuse(&registry).unwrap();
        let restored = roundtrip(&tpiin);
        let a = detect(&tpiin);
        let b = detect(&restored);
        assert_eq!(a.group_count(), b.group_count());
        assert_eq!(a.suspicious_trading_arcs, b.suspicious_trading_arcs);
    }
}
