//! The paper's `r x 3` edge-list format.
//!
//! Algorithm 1's input is "Array *tpiin* (in the form of edge list:
//! `r x 3` …).  The top `(m-1)` rows of a *tpiin* store all arcs in an
//! antecedent network while other rows … belong to a trading network";
//! the color column uses `1` for influence (blue) and `0` for trading
//! (black).  [`parse_edge_list`] reads that format into a
//! [`tpiin_core::SubTpiin`] so the detector can run directly on a file,
//! and [`render_edge_list`] writes a TPIIN back out.

use crate::error::IoError;
use tpiin_core::SubTpiin;
use tpiin_fusion::Tpiin;

/// One arc of a parsed edge list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRow {
    /// Source node index.
    pub source: u32,
    /// Target node index.
    pub target: u32,
    /// `true` for influence (color code 1), `false` for trading (0).
    pub influence: bool,
}

/// Parses the whitespace-separated `source target color` rows.
///
/// Lines may be blank or start with `#` (comments).  Node indices are
/// dense after parsing: the node count is `max(index) + 1`.
pub fn parse_rows(text: &str, context: &str) -> Result<Vec<EdgeRow>, IoError> {
    let mut rows = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut next = |name: &str| {
            parts
                .next()
                .ok_or_else(|| IoError::parse(context, i + 1, format!("missing {name} column")))
        };
        let source: u32 = next("source")?
            .parse()
            .map_err(|e| IoError::parse(context, i + 1, format!("bad source: {e}")))?;
        let target: u32 = next("target")?
            .parse()
            .map_err(|e| IoError::parse(context, i + 1, format!("bad target: {e}")))?;
        let color = next("color")?;
        let influence = match color {
            "1" => true,
            "0" => false,
            other => {
                return Err(IoError::parse(
                    context,
                    i + 1,
                    format!("color must be 0 (trading) or 1 (influence), found `{other}`"),
                ))
            }
        };
        if parts.next().is_some() {
            return Err(IoError::parse(context, i + 1, "more than 3 columns"));
        }
        rows.push(EdgeRow {
            source,
            target,
            influence,
        });
    }
    Ok(rows)
}

/// Parses an edge list into a single [`SubTpiin`] over nodes
/// `0..=max_index`, ready for [`tpiin_core::PatternsTree`] /
/// [`tpiin_core::match_root`] or `Detector::detect_segmented`.
///
/// Node colors are inferred the only way the format allows: a node with
/// zero influence in-degree is treated as a Person (pattern-tree root),
/// everything else as a Company.  This matches fused TPIINs, where every
/// company carries a legal-person arc.
pub fn parse_edge_list(text: &str, context: &str) -> Result<SubTpiin, IoError> {
    let rows = parse_rows(text, context)?;
    let n = rows
        .iter()
        .map(|r| r.source.max(r.target) as usize + 1)
        .max()
        .unwrap_or(0);
    let influence: Vec<(u32, u32)> = rows
        .iter()
        .filter(|r| r.influence)
        .map(|r| (r.source, r.target))
        .collect();
    let trading: Vec<(u32, u32)> = rows
        .iter()
        .filter(|r| !r.influence)
        .map(|r| (r.source, r.target))
        .collect();
    let mut influence_in = vec![false; n];
    for &(_, t) in &influence {
        influence_in[t as usize] = true;
    }
    let is_person: Vec<bool> = influence_in.iter().map(|&has_in| !has_in).collect();
    Ok(tpiin_core::subtpiin_from_arcs(
        n, &influence, &trading, is_person,
    ))
}

/// Renders a fused TPIIN in the paper's format (antecedent rows first,
/// which [`tpiin_fusion::fuse`] guarantees by construction).
pub fn render_edge_list(tpiin: &Tpiin) -> String {
    tpiin.edge_list()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_core::{detect, Detector};

    #[test]
    fn parse_simple_rows() {
        let rows = parse_rows("0 1 1\n1 2 0\n", "t").unwrap();
        assert_eq!(
            rows,
            vec![
                EdgeRow {
                    source: 0,
                    target: 1,
                    influence: true
                },
                EdgeRow {
                    source: 1,
                    target: 2,
                    influence: false
                },
            ]
        );
    }

    #[test]
    fn comments_blank_lines_and_tabs_accepted() {
        let rows = parse_rows("# header\n\n0\t1\t1\n", "t").unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_rows("0 1 1\n0 2\n", "graph.txt").unwrap_err();
        assert!(err.to_string().contains("graph.txt:2"));
        let err = parse_rows("0 1 2\n", "graph.txt").unwrap_err();
        assert!(err.to_string().contains("color"));
        let err = parse_rows("0 1 1 9\n", "graph.txt").unwrap_err();
        assert!(err.to_string().contains("3 columns"));
    }

    #[test]
    fn fused_tpiin_roundtrips_through_the_format() {
        // Fig. 7 -> TPIIN -> edge list -> SubTpiin: detection must find
        // the same number of groups and arcs.
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let direct = detect(&tpiin);

        let text = render_edge_list(&tpiin);
        let sub = parse_edge_list(&text, "fig8").unwrap();
        assert_eq!(sub.node_count(), tpiin.node_count());
        assert_eq!(sub.influence_arc_count(), tpiin.influence_arc_count);
        assert_eq!(sub.trading_arc_count, tpiin.trading_arc_count);
        let from_file = Detector::default().detect_segmented(&tpiin, &[sub]);
        assert_eq!(from_file.group_count(), direct.group_count());
        assert_eq!(
            from_file.suspicious_trading_arcs,
            direct.suspicious_trading_arcs
        );
    }

    #[test]
    fn empty_input_gives_empty_subtpiin() {
        let sub = parse_edge_list("", "t").unwrap();
        assert_eq!(sub.node_count(), 0);
    }
}
