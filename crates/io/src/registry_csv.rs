//! Load/save a [`SourceRegistry`] as a directory of six CSV files — the
//! shape the CSRC/HRDPSC/PTAOS extracts arrive in:
//!
//! | file | columns |
//! |---|---|
//! | `persons.csv` | `name,roles` (roles `+`-joined from CB/CEO/D/S) |
//! | `companies.csv` | `name` |
//! | `interdependence.csv` | `a,b,kind` (person indices; `kinship`/`interlocking`) |
//! | `influence.csv` | `person,company,kind,legal_person` (`ceo_and_d`/`ceo`/`cb`/`d`; `1`/`0`) |
//! | `investment.csv` | `investor,investee,share` |
//! | `trading.csv` | `seller,buyer,volume` |
//!
//! Entity references are dense row indices (0-based, matching id order),
//! so a saved registry round-trips exactly.

use crate::csv;
use crate::error::IoError;
use std::path::Path;
use tpiin_model::{
    CompanyId, InfluenceKind, InfluenceRecord, InterdependenceKind, InvestmentRecord, PersonId,
    Role, RoleSet, SourceRegistry, TradingRecord,
};

pub(crate) fn roles_to_string(roles: RoleSet) -> String {
    let names: Vec<String> = roles.iter().map(|r| r.to_string()).collect();
    names.join("+")
}

pub(crate) fn roles_from_string(
    text: &str,
    context: &str,
    line: usize,
) -> Result<RoleSet, IoError> {
    let mut set = RoleSet::EMPTY;
    if text.is_empty() {
        return Ok(set);
    }
    for token in text.split('+') {
        let role = match token {
            "CB" => Role::Chairman,
            "CEO" => Role::Ceo,
            "D" => Role::Director,
            "S" => Role::Shareholder,
            other => {
                return Err(IoError::parse(
                    context,
                    line,
                    format!("unknown role `{other}`"),
                ))
            }
        };
        set = set.with(role);
    }
    Ok(set)
}

pub(crate) fn influence_kind_to_string(kind: InfluenceKind) -> &'static str {
    match kind {
        InfluenceKind::CeoAndDirectorOf => "ceo_and_d",
        InfluenceKind::CeoOf => "ceo",
        InfluenceKind::ChairmanOf => "cb",
        InfluenceKind::DirectorOf => "d",
    }
}

pub(crate) fn influence_kind_from_string(
    s: &str,
    context: &str,
    line: usize,
) -> Result<InfluenceKind, IoError> {
    Ok(match s {
        "ceo_and_d" => InfluenceKind::CeoAndDirectorOf,
        "ceo" => InfluenceKind::CeoOf,
        "cb" => InfluenceKind::ChairmanOf,
        "d" => InfluenceKind::DirectorOf,
        other => {
            return Err(IoError::parse(
                context,
                line,
                format!("unknown influence kind `{other}`"),
            ))
        }
    })
}

fn write(path: &Path, content: &str) -> Result<(), IoError> {
    std::fs::write(path, content).map_err(|e| IoError::fs(path, e))
}

fn read(path: &Path) -> Result<String, IoError> {
    std::fs::read_to_string(path).map_err(|e| IoError::fs(path, e))
}

/// Saves `registry` into `dir` (created if missing), one CSV per record
/// type, each with a header row.
pub fn save_registry(registry: &SourceRegistry, dir: &Path) -> Result<(), IoError> {
    std::fs::create_dir_all(dir).map_err(|e| IoError::fs(dir, e))?;

    let mut rows = vec![vec!["name".to_string(), "roles".to_string()]];
    rows.extend(
        registry
            .persons()
            .map(|(_, p)| vec![p.name.clone(), roles_to_string(p.roles)]),
    );
    write(&dir.join("persons.csv"), &csv::render(&rows))?;

    let mut rows = vec![vec!["name".to_string()]];
    rows.extend(registry.companies().map(|(_, c)| vec![c.name.clone()]));
    write(&dir.join("companies.csv"), &csv::render(&rows))?;

    let mut rows = vec![vec!["a".into(), "b".into(), "kind".into()]];
    rows.extend(registry.interdependencies().iter().map(|i| {
        vec![
            i.a.index().to_string(),
            i.b.index().to_string(),
            match i.kind {
                InterdependenceKind::Kinship => "kinship".to_string(),
                InterdependenceKind::Interlocking => "interlocking".to_string(),
            },
        ]
    }));
    write(&dir.join("interdependence.csv"), &csv::render(&rows))?;

    let mut rows = vec![vec![
        "person".into(),
        "company".into(),
        "kind".into(),
        "legal_person".into(),
    ]];
    rows.extend(registry.influences().iter().map(|r| {
        vec![
            r.person.index().to_string(),
            r.company.index().to_string(),
            influence_kind_to_string(r.kind).to_string(),
            if r.is_legal_person {
                "1".to_string()
            } else {
                "0".to_string()
            },
        ]
    }));
    write(&dir.join("influence.csv"), &csv::render(&rows))?;

    let mut rows = vec![vec!["investor".into(), "investee".into(), "share".into()]];
    rows.extend(registry.investments().iter().map(|r| {
        vec![
            r.investor.index().to_string(),
            r.investee.index().to_string(),
            r.share.to_string(),
        ]
    }));
    write(&dir.join("investment.csv"), &csv::render(&rows))?;

    let mut rows = vec![vec!["seller".into(), "buyer".into(), "volume".into()]];
    rows.extend(registry.tradings().iter().map(|r| {
        vec![
            r.seller.index().to_string(),
            r.buyer.index().to_string(),
            r.volume.to_string(),
        ]
    }));
    write(&dir.join("trading.csv"), &csv::render(&rows))?;

    Ok(())
}

fn parse_u32(field: &str, context: &str, line: usize) -> Result<u32, IoError> {
    field
        .parse()
        .map_err(|e| IoError::parse(context, line, format!("bad integer `{field}`: {e}")))
}

fn parse_f64(field: &str, context: &str, line: usize) -> Result<f64, IoError> {
    field
        .parse()
        .map_err(|e| IoError::parse(context, line, format!("bad number `{field}`: {e}")))
}

fn check_columns(
    record: &[String],
    expected: usize,
    context: &str,
    line: usize,
) -> Result<(), IoError> {
    if record.len() != expected {
        return Err(IoError::parse(
            context,
            line,
            format!("expected {expected} columns, found {}", record.len()),
        ));
    }
    Ok(())
}

/// Loads a registry saved by [`save_registry`] and validates it.
pub fn load_registry(dir: &Path) -> Result<SourceRegistry, IoError> {
    let mut registry = SourceRegistry::new();

    let context = "persons.csv";
    let text = read(&dir.join(context))?;
    for (i, record) in csv::parse(&text, context)?.into_iter().enumerate().skip(1) {
        check_columns(&record, 2, context, i + 1)?;
        let roles = roles_from_string(&record[1], context, i + 1)?;
        let name = record.into_iter().next().expect("two columns checked");
        registry.add_person(name, roles);
    }

    let context = "companies.csv";
    let text = read(&dir.join(context))?;
    for (i, record) in csv::parse(&text, context)?.into_iter().enumerate().skip(1) {
        check_columns(&record, 1, context, i + 1)?;
        let name = record.into_iter().next().expect("one column checked");
        registry.add_company(name);
    }

    let context = "interdependence.csv";
    let text = read(&dir.join(context))?;
    for (i, record) in csv::parse(&text, context)?.into_iter().enumerate().skip(1) {
        check_columns(&record, 3, context, i + 1)?;
        let kind = match record[2].as_str() {
            "kinship" => InterdependenceKind::Kinship,
            "interlocking" => InterdependenceKind::Interlocking,
            other => {
                return Err(IoError::parse(
                    context,
                    i + 1,
                    format!("unknown interdependence kind `{other}`"),
                ))
            }
        };
        registry.add_interdependence(
            PersonId(parse_u32(&record[0], context, i + 1)?),
            PersonId(parse_u32(&record[1], context, i + 1)?),
            kind,
        );
    }

    let context = "influence.csv";
    let text = read(&dir.join(context))?;
    for (i, record) in csv::parse(&text, context)?.into_iter().enumerate().skip(1) {
        check_columns(&record, 4, context, i + 1)?;
        registry.add_influence(InfluenceRecord {
            person: PersonId(parse_u32(&record[0], context, i + 1)?),
            company: CompanyId(parse_u32(&record[1], context, i + 1)?),
            kind: influence_kind_from_string(&record[2], context, i + 1)?,
            is_legal_person: match record[3].as_str() {
                "1" => true,
                "0" => false,
                other => {
                    return Err(IoError::parse(
                        context,
                        i + 1,
                        format!("legal_person must be 0 or 1, found `{other}`"),
                    ))
                }
            },
        });
    }

    let context = "investment.csv";
    let text = read(&dir.join(context))?;
    for (i, record) in csv::parse(&text, context)?.into_iter().enumerate().skip(1) {
        check_columns(&record, 3, context, i + 1)?;
        registry.add_investment(InvestmentRecord {
            investor: CompanyId(parse_u32(&record[0], context, i + 1)?),
            investee: CompanyId(parse_u32(&record[1], context, i + 1)?),
            share: parse_f64(&record[2], context, i + 1)?,
        });
    }

    let context = "trading.csv";
    let text = read(&dir.join(context))?;
    for (i, record) in csv::parse(&text, context)?.into_iter().enumerate().skip(1) {
        check_columns(&record, 3, context, i + 1)?;
        registry.add_trading(TradingRecord {
            seller: CompanyId(parse_u32(&record[0], context, i + 1)?),
            buyer: CompanyId(parse_u32(&record[1], context, i + 1)?),
            volume: parse_f64(&record[2], context, i + 1)?,
        });
    }

    registry.validate().map_err(IoError::Invalid)?;
    Ok(registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tpiin-io-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let registry = tpiin_datagen::fig7_registry();
        let dir = tmpdir("roundtrip");
        save_registry(&registry, &dir).unwrap();
        let loaded = load_registry(&dir).unwrap();
        assert_eq!(loaded.person_count(), registry.person_count());
        assert_eq!(loaded.company_count(), registry.company_count());
        assert_eq!(loaded.interdependencies(), registry.interdependencies());
        assert_eq!(loaded.influences(), registry.influences());
        assert_eq!(loaded.investments(), registry.investments());
        assert_eq!(loaded.tradings(), registry.tradings());
        for (id, p) in registry.persons() {
            assert_eq!(loaded.person(id), p);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roles_roundtrip_including_multi_role_sets() {
        for roles in [
            RoleSet::of(&[Role::Ceo]),
            RoleSet::of(&[Role::Chairman, Role::Director, Role::Shareholder]),
            RoleSet::EMPTY,
        ] {
            let text = roles_to_string(roles);
            assert_eq!(roles_from_string(&text, "t", 1).unwrap(), roles);
        }
    }

    #[test]
    fn invalid_loaded_registry_is_rejected() {
        let mut registry = SourceRegistry::new();
        registry.add_company("orphan"); // no legal person
        let dir = tmpdir("invalid");
        save_registry(&registry, &dir).unwrap();
        match load_registry(&dir) {
            Err(IoError::Invalid(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected Invalid, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_kind_reports_file_and_line() {
        let dir = tmpdir("badkind");
        let registry = tpiin_datagen::fig7_registry();
        save_registry(&registry, &dir).unwrap();
        std::fs::write(
            dir.join("influence.csv"),
            "person,company,kind,legal_person\n0,0,emperor,1\n",
        )
        .unwrap();
        let err = load_registry(&dir).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("influence.csv:2"), "{text}");
        assert!(text.contains("emperor"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_path() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_registry(&dir).unwrap_err();
        assert!(err.to_string().contains("persons.csv"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
