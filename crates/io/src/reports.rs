//! Algorithm 1's output files and a machine-readable summary.
//!
//! The paper's Algorithm 1 returns, for every subTPIIN `i`, a file
//! `susGroup(i)` with all suspicious groups and a file `susTrade(i)` with
//! all suspicious trading arcs.  [`write_reports`] reproduces that layout
//! (tab-separated, one record per line, labelled via the TPIIN), and adds
//! `summary.json` with the Table 1 counters for downstream dashboards.

use crate::error::IoError;
use crate::json::Json;
use std::path::Path;
use tpiin_core::{DetectionResult, GroupKind};
use tpiin_fusion::Tpiin;
use tpiin_graph::NodeId;

fn labels(tpiin: &Tpiin, nodes: &[NodeId]) -> String {
    nodes
        .iter()
        .map(|&n| tpiin.label(n))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders one `susGroup(i)` file: columns
/// `kind  antecedent  trading_arc  members  trail_with_trade  trail_plain  simple`.
pub fn render_sus_group(tpiin: &Tpiin, result: &DetectionResult, subtpiin: usize) -> String {
    let mut out = String::from(
        "#kind\tantecedent\ttrading_arc\tmembers\ttrail_with_trade\ttrail_plain\tsimple\n",
    );
    for group in result.groups.iter().filter(|g| g.subtpiin == subtpiin) {
        let members: Vec<String> = group
            .members()
            .into_iter()
            .map(|n| tpiin.label(n).to_string())
            .collect();
        out.push_str(&format!(
            "{}\t{}\t{}->{}\t{}\t{}\t{}\t{}\n",
            match group.kind {
                GroupKind::Matched => "matched",
                GroupKind::Circle => "circle",
            },
            tpiin.label(group.antecedent),
            tpiin.label(group.trading_arc.0),
            tpiin.label(group.trading_arc.1),
            members.join(","),
            labels(tpiin, &group.trail_with_trade),
            labels(tpiin, &group.trail_plain),
            group.simple,
        ));
    }
    out
}

/// Renders one `susTrade(i)` file: the distinct suspicious trading arcs of
/// one subTPIIN, columns `seller  buyer`.
pub fn render_sus_trade(tpiin: &Tpiin, result: &DetectionResult, subtpiin: usize) -> String {
    let mut arcs: Vec<(NodeId, NodeId)> = result
        .groups
        .iter()
        .filter(|g| g.subtpiin == subtpiin)
        .map(|g| g.trading_arc)
        .collect();
    arcs.sort();
    arcs.dedup();
    let mut out = String::from("#seller\tbuyer\n");
    for (s, t) in arcs {
        out.push_str(&format!("{}\t{}\n", tpiin.label(s), tpiin.label(t)));
    }
    out
}

/// Builds the `summary.json` document.
pub fn summary_json(result: &DetectionResult) -> Json {
    Json::Object(vec![
        (
            "complex_groups".into(),
            Json::int(result.complex_group_count),
        ),
        ("simple_groups".into(), Json::int(result.simple_group_count)),
        (
            "suspicious_trading_arcs".into(),
            Json::int(result.suspicious_trading_arcs.len()),
        ),
        (
            "total_trading_arcs".into(),
            Json::int(result.total_trading_arcs),
        ),
        (
            "suspicious_percentage".into(),
            Json::Number(result.suspicious_percentage()),
        ),
        (
            "intra_syndicate_trades".into(),
            Json::int(result.intra_syndicate_trades),
        ),
        ("overflowed".into(), Json::Bool(result.overflowed)),
        (
            "subtpiins".into(),
            Json::Array(
                result
                    .per_subtpiin
                    .iter()
                    .filter(|s| s.groups > 0)
                    .map(|s| {
                        Json::Object(vec![
                            ("index".into(), Json::int(s.index)),
                            ("nodes".into(), Json::int(s.nodes)),
                            ("trading_arcs".into(), Json::int(s.trading_arcs)),
                            ("patterns".into(), Json::int(s.patterns)),
                            ("groups".into(), Json::int(s.groups)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders an investigator-facing Markdown brief: headline counters, the
/// top-scored groups with their proof chains, and the most-involved
/// taxpayers — the hand-off document from the MSG phase to the audit
/// teams.
pub fn render_markdown(tpiin: &Tpiin, result: &DetectionResult, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "# Suspicious tax evasion groups — MSG phase brief

",
    );
    let _ = writeln!(
        out,
        "- **{}** suspicious groups ({} complex, {} simple)",
        result.group_count(),
        result.complex_group_count,
        result.simple_group_count
    );
    let _ = writeln!(
        out,
        "- **{}** of **{}** trading relationships flagged ({:.2} %)",
        result.suspicious_trading_arcs.len(),
        result.total_trading_arcs,
        result.suspicious_percentage()
    );
    if result.intra_syndicate_trades > 0 {
        let _ = writeln!(
            out,
            "- **{}** trades inside mutual-investment syndicates (suspicious by construction)",
            result.intra_syndicate_trades
        );
    }

    out.push_str(
        "
## Audit queue — top groups by weighted score

",
    );
    for (rank, (score, group)) in result.top_scored(tpiin, top).iter().enumerate() {
        let _ = writeln!(
            out,
            "{}. **score {:.0}** — {}",
            rank + 1,
            score.score,
            group.explain(tpiin)
        );
    }

    out.push_str(
        "
## Most involved taxpayers

",
    );
    out.push_str(
        "| taxpayer | groups | as antecedent | sells | buys |
",
    );
    out.push_str(
        "|---|---|---|---|---|
",
    );
    for (label, inv) in tpiin_core::top_involved(result, tpiin, top) {
        let _ = writeln!(
            out,
            "| {label} | {} | {} | {} | {} |",
            inv.groups, inv.as_antecedent, inv.as_seller, inv.as_buyer
        );
    }
    out
}

/// Writes the full report layout into `dir`:
/// `susGroup_<i>.tsv` and `susTrade_<i>.tsv` for every subTPIIN that
/// produced groups, plus `summary.json`.  Requires a result collected
/// with `collect_groups: true`.
pub fn write_reports(
    tpiin: &Tpiin,
    result: &DetectionResult,
    dir: &Path,
) -> Result<usize, IoError> {
    std::fs::create_dir_all(dir).map_err(|e| IoError::fs(dir, e))?;
    let mut written = 0usize;
    let mut with_groups: Vec<usize> = result.groups.iter().map(|g| g.subtpiin).collect();
    with_groups.sort_unstable();
    with_groups.dedup();
    for i in with_groups {
        let group_path = dir.join(format!("susGroup_{i}.tsv"));
        std::fs::write(&group_path, render_sus_group(tpiin, result, i))
            .map_err(|e| IoError::fs(&group_path, e))?;
        let trade_path = dir.join(format!("susTrade_{i}.tsv"));
        std::fs::write(&trade_path, render_sus_trade(tpiin, result, i))
            .map_err(|e| IoError::fs(&trade_path, e))?;
        written += 2;
    }
    let summary_path = dir.join("summary.json");
    std::fs::write(&summary_path, summary_json(result).to_pretty())
        .map_err(|e| IoError::fs(&summary_path, e))?;
    let brief_path = dir.join("brief.md");
    std::fs::write(&brief_path, render_markdown(tpiin, result, 10))
        .map_err(|e| IoError::fs(&brief_path, e))?;
    Ok(written + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_core::detect;

    fn fig7() -> (Tpiin, DetectionResult) {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let result = detect(&tpiin);
        (tpiin, result)
    }

    #[test]
    fn sus_group_file_lists_all_groups_with_labels() {
        let (tpiin, result) = fig7();
        let text = render_sus_group(&tpiin, &result, 0);
        assert_eq!(text.lines().count(), 1 + result.group_count());
        assert!(text.contains("L6+LB"), "{text}");
        assert!(text.contains("C3->C5"), "{text}");
    }

    #[test]
    fn sus_trade_file_deduplicates_arcs() {
        let (tpiin, result) = fig7();
        let text = render_sus_trade(&tpiin, &result, 0);
        // Three distinct suspicious arcs in the worked example.
        assert_eq!(text.lines().count(), 1 + 3);
    }

    #[test]
    fn summary_json_counts_match() {
        let (_, result) = fig7();
        let json = summary_json(&result).to_string();
        assert!(json.contains("\"simple_groups\":3"), "{json}");
        assert!(json.contains("\"suspicious_trading_arcs\":3"), "{json}");
        assert!(json.contains("\"total_trading_arcs\":5"), "{json}");
    }

    #[test]
    fn markdown_brief_contains_queue_and_involvement() {
        let (tpiin, result) = fig7();
        let text = render_markdown(&tpiin, &result, 5);
        assert!(
            text.starts_with("# Suspicious tax evasion groups"),
            "{text}"
        );
        assert!(text.contains("**3** suspicious groups"), "{text}");
        assert!(text.contains("Audit queue"), "{text}");
        assert!(text.contains("| C5 | 2 |"), "C5 is in two groups: {text}");
        assert!(text.contains("L6+LB"), "{text}");
    }

    #[test]
    fn write_reports_creates_the_paper_layout() {
        let (tpiin, result) = fig7();
        let dir = std::env::temp_dir().join(format!("tpiin-reports-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let files = write_reports(&tpiin, &result, &dir).unwrap();
        assert_eq!(files, 4, "susGroup_0, susTrade_0, summary.json, brief.md");
        assert!(dir.join("susGroup_0.tsv").exists());
        assert!(dir.join("susTrade_0.tsv").exists());
        assert!(dir.join("summary.json").exists());
        assert!(dir.join("brief.md").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
