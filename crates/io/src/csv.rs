//! A small RFC-4180-style CSV reader and writer.
//!
//! Supports quoted fields (embedded commas, quotes doubled as `""`, and
//! newlines inside quotes), CRLF and LF line endings.  No external
//! dependency — the offline crate policy of this workspace.

use crate::error::IoError;

/// Parses CSV `text` into records of fields.
///
/// Empty trailing lines are skipped; an entirely empty input yields no
/// records.  `context` names the source for error messages.
///
/// # Example
///
/// ```
/// let rows = tpiin_io::csv::parse("a,\"b,c\"\n", "inline").unwrap();
/// assert_eq!(rows, vec![vec!["a".to_string(), "b,c".to_string()]]);
/// ```
pub fn parse(text: &str, context: &str) -> Result<Vec<Vec<String>>, IoError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut after_quoted = false; // just closed a quoted section
    let mut line = 1usize;
    let mut started = false; // current record has content
    let mut chars = text.chars().peekable();

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        after_quoted = true;
                    }
                }
                '\n' => {
                    field.push(ch);
                    line += 1;
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if after_quoted || !field.is_empty() {
                    return Err(IoError::parse(
                        context,
                        line,
                        "unexpected quote inside field",
                    ));
                }
                in_quotes = true;
                started = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                after_quoted = false;
                started = true;
            }
            '\r' => {
                // Consumed as part of CRLF; a bare CR is an error.
                if chars.peek() != Some(&'\n') {
                    return Err(IoError::parse(context, line, "bare carriage return"));
                }
            }
            '\n' => {
                if started || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                started = false;
                after_quoted = false;
                line += 1;
            }
            _ => {
                field.push(ch);
                started = true;
            }
        }
    }
    if in_quotes {
        return Err(IoError::parse(context, line, "unterminated quoted field"));
    }
    if started || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Escapes one field for CSV output (quotes only when needed).
pub fn escape_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders records as CSV text with LF line endings.
pub fn render(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        let escaped: Vec<String> = record.iter().map(|f| escape_field(f)).collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let rows = parse("a,b,c\nd,e,f\n", "t").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn quoted_fields_with_commas_quotes_and_newlines() {
        let text = "name,desc\n\"Li, Wei\",\"said \"\"hi\"\"\"\n\"multi\nline\",x\n";
        let rows = parse(text, "t").unwrap();
        assert_eq!(rows[1], vec!["Li, Wei", "said \"hi\""]);
        assert_eq!(rows[2], vec!["multi\nline", "x"]);
    }

    #[test]
    fn crlf_line_endings() {
        let rows = parse("a,b\r\nc,d\r\n", "t").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn empty_fields_and_trailing_comma() {
        let rows = parse("a,,c\n,,\n", "t").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn missing_final_newline() {
        let rows = parse("a,b", "t").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"]]);
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse("", "t").unwrap().is_empty());
        assert!(parse("\n\n", "t").unwrap().is_empty());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse("\"abc", "file.csv").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn stray_quote_is_an_error() {
        assert!(parse("ab\"c\n", "t").is_err());
    }

    #[test]
    fn roundtrip() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with\"quote".to_string(), "multi\nline".to_string()],
        ];
        let text = render(&records);
        let parsed = parse(&text, "t").unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn escape_only_when_needed() {
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("a\"b"), "\"a\"\"b\"");
    }
}
