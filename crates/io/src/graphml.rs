//! GraphML export of a TPIIN.
//!
//! The paper generated and rendered its networks in Gephi, whose native
//! interchange format is GraphML.  [`tpiin_graphml`] writes the fused
//! network with the paper's coloring convention as node/edge attributes:
//! red companies vs black persons, blue influence vs black trading arcs,
//! plus labels, syndicate flags and arc weights.

use tpiin_fusion::{ArcColor, NodeColor, Tpiin};

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders `tpiin` as a GraphML document.
pub fn tpiin_graphml(tpiin: &Tpiin) -> String {
    let mut out =
        String::with_capacity(512 + tpiin.graph.node_count() * 96 + tpiin.graph.edge_count() * 96);
    out.push_str(
        r#"<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="label" for="node" attr.name="label" attr.type="string"/>
  <key id="ncolor" for="node" attr.name="color" attr.type="string"/>
  <key id="syndicate" for="node" attr.name="syndicate" attr.type="boolean"/>
  <key id="ecolor" for="edge" attr.name="color" attr.type="string"/>
  <key id="weight" for="edge" attr.name="weight" attr.type="double"/>
  <graph id="tpiin" edgedefault="directed">
"#,
    );
    for (id, node) in tpiin.graph.nodes() {
        let color = match node.color() {
            NodeColor::Company => "red",
            NodeColor::Person => "black",
        };
        out.push_str(&format!(
            "    <node id=\"n{id}\">\n      <data key=\"label\">{}</data>\n      <data key=\"ncolor\">{color}</data>\n      <data key=\"syndicate\">{}</data>\n    </node>\n",
            escape_xml(node.label()),
            node.is_syndicate(),
        ));
    }
    for edge in tpiin.graph.edges() {
        let color = match edge.weight.color {
            ArcColor::Influence => "blue",
            ArcColor::Trading => "black",
        };
        out.push_str(&format!(
            "    <edge id=\"e{}\" source=\"n{}\" target=\"n{}\">\n      <data key=\"ecolor\">{color}</data>\n      <data key=\"weight\">{}</data>\n    </edge>\n",
            edge.id, edge.source, edge.target, edge.weight.weight,
        ));
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_and_counts() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::fig7_registry()).unwrap();
        let xml = tpiin_graphml(&tpiin);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.trim_end().ends_with("</graphml>"));
        assert_eq!(xml.matches("<node ").count(), tpiin.graph.node_count());
        assert_eq!(xml.matches("<edge ").count(), tpiin.graph.edge_count());
        // The paper's color convention.
        assert!(xml.contains(">red<"));
        assert!(xml.contains(">blue<"));
        // Syndicates are flagged.
        assert!(xml.contains(">true<"));
    }

    #[test]
    fn labels_are_xml_escaped() {
        let mut r = tpiin_model::SourceRegistry::new();
        let p = r.add_person(
            "A&B <LP>",
            tpiin_model::RoleSet::of(&[tpiin_model::Role::Ceo]),
        );
        let c = r.add_company("C\"1\"");
        r.add_influence(tpiin_model::InfluenceRecord {
            person: p,
            company: c,
            kind: tpiin_model::InfluenceKind::CeoOf,
            is_legal_person: true,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let xml = tpiin_graphml(&tpiin);
        assert!(xml.contains("A&amp;B &lt;LP&gt;"), "{xml}");
        assert!(xml.contains("C&quot;1&quot;"), "{xml}");
        assert!(!xml.contains("A&B"), "raw ampersand leaked");
    }
}
