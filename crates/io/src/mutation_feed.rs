//! Mutation-feed codec: [`Mutation`] / [`MutationBatch`] ⇄ JSON, plus a
//! JSONL stream format (one batch object per line) so a delta feed can
//! be generated once and replayed — against a [`tpiin_model::SourceRegistry`],
//! a delta engine, or a live daemon's `POST /ingest` (each line is a
//! valid ingest body).
//!
//! Wire shape, one op per object:
//!
//! ```json
//! {"op":"add_person","name":"P9","roles":"CEO+D"}
//! {"op":"add_company","name":"C4","legal_person":9,"kind":"ceo"}
//! {"op":"add_interdependence","a":0,"b":1,"kind":"kinship"}
//! {"op":"add_influence","person":0,"company":1,"kind":"d","legal_person":false}
//! {"op":"remove_influence","person":0,"company":1}
//! {"op":"add_investment","investor":0,"investee":1,"share":0.5}
//! {"op":"remove_investment","investor":0,"investee":1}
//! {"op":"add_trading","seller":1,"buyer":2,"volume":3.5}
//! {"op":"remove_trading","seller":1,"buyer":2}
//! {"op":"set_tax_rate","company":0,"rate":0.17}
//! {"op":"remove_company","company":0}
//! {"op":"remove_person","person":0}
//! ```
//!
//! Batches wrap the ops: `{"mutations":[...]}`.  Role and influence-kind
//! tokens are the same ones `registry_csv` uses, so the two formats stay
//! mutually legible.

use crate::error::IoError;
use crate::json::Json;
use crate::registry_csv::{
    influence_kind_from_string, influence_kind_to_string, roles_from_string, roles_to_string,
};
use std::path::Path;
use tpiin_model::{
    CompanyId, InfluenceRecord, InterdependenceKind, InvestmentRecord, Mutation, MutationBatch,
    PersonId, TradingRecord,
};

/// Encodes one mutation as a tagged JSON object.
pub fn mutation_to_json(m: &Mutation) -> Json {
    let obj = |fields: Vec<(&str, Json)>| {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let id = |i: u32| Json::int(i as usize);
    match m {
        Mutation::AddPerson { name, roles } => obj(vec![
            ("op", Json::string("add_person")),
            ("name", Json::string(name.clone())),
            ("roles", Json::string(roles_to_string(*roles))),
        ]),
        Mutation::AddCompany {
            name,
            legal_person,
            kind,
        } => obj(vec![
            ("op", Json::string("add_company")),
            ("name", Json::string(name.clone())),
            ("legal_person", id(legal_person.0)),
            ("kind", Json::string(influence_kind_to_string(*kind))),
        ]),
        Mutation::AddInterdependence { a, b, kind } => obj(vec![
            ("op", Json::string("add_interdependence")),
            ("a", id(a.0)),
            ("b", id(b.0)),
            (
                "kind",
                Json::string(match kind {
                    InterdependenceKind::Kinship => "kinship",
                    InterdependenceKind::Interlocking => "interlocking",
                }),
            ),
        ]),
        Mutation::AddInfluence(r) => obj(vec![
            ("op", Json::string("add_influence")),
            ("person", id(r.person.0)),
            ("company", id(r.company.0)),
            ("kind", Json::string(influence_kind_to_string(r.kind))),
            ("legal_person", Json::Bool(r.is_legal_person)),
        ]),
        Mutation::RemoveInfluence { person, company } => obj(vec![
            ("op", Json::string("remove_influence")),
            ("person", id(person.0)),
            ("company", id(company.0)),
        ]),
        Mutation::AddInvestment(r) => obj(vec![
            ("op", Json::string("add_investment")),
            ("investor", id(r.investor.0)),
            ("investee", id(r.investee.0)),
            ("share", Json::Number(r.share)),
        ]),
        Mutation::RemoveInvestment { investor, investee } => obj(vec![
            ("op", Json::string("remove_investment")),
            ("investor", id(investor.0)),
            ("investee", id(investee.0)),
        ]),
        Mutation::AddTrading(r) => obj(vec![
            ("op", Json::string("add_trading")),
            ("seller", id(r.seller.0)),
            ("buyer", id(r.buyer.0)),
            ("volume", Json::Number(r.volume)),
        ]),
        Mutation::RemoveTrading { seller, buyer } => obj(vec![
            ("op", Json::string("remove_trading")),
            ("seller", id(seller.0)),
            ("buyer", id(buyer.0)),
        ]),
        Mutation::SetTaxRate { company, rate } => obj(vec![
            ("op", Json::string("set_tax_rate")),
            ("company", id(company.0)),
            ("rate", Json::Number(*rate)),
        ]),
        Mutation::RemoveCompany { company } => obj(vec![
            ("op", Json::string("remove_company")),
            ("company", id(company.0)),
        ]),
        Mutation::RemovePerson { person } => obj(vec![
            ("op", Json::string("remove_person")),
            ("person", id(person.0)),
        ]),
    }
}

/// Encodes a batch as `{"mutations":[...]}` — the `POST /ingest` body.
pub fn batch_to_json(batch: &MutationBatch) -> Json {
    Json::Object(vec![(
        "mutations".to_string(),
        Json::Array(batch.mutations.iter().map(mutation_to_json).collect()),
    )])
}

fn field<'a>(v: &'a Json, key: &str, context: &str, line: usize) -> Result<&'a Json, IoError> {
    v.get(key)
        .ok_or_else(|| IoError::parse(context, line, format!("missing field `{key}`")))
}

fn u32_field(v: &Json, key: &str, context: &str, line: usize) -> Result<u32, IoError> {
    let n = field(v, key, context, line)?
        .as_f64()
        .ok_or_else(|| IoError::parse(context, line, format!("field `{key}` must be a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
        return Err(IoError::parse(
            context,
            line,
            format!("field `{key}` must be a u32, found {n}"),
        ));
    }
    Ok(n as u32)
}

fn f64_field(v: &Json, key: &str, context: &str, line: usize) -> Result<f64, IoError> {
    field(v, key, context, line)?
        .as_f64()
        .ok_or_else(|| IoError::parse(context, line, format!("field `{key}` must be a number")))
}

fn str_field<'a>(v: &'a Json, key: &str, context: &str, line: usize) -> Result<&'a str, IoError> {
    field(v, key, context, line)?
        .as_str()
        .ok_or_else(|| IoError::parse(context, line, format!("field `{key}` must be a string")))
}

fn bool_field(v: &Json, key: &str, context: &str, line: usize) -> Result<bool, IoError> {
    match field(v, key, context, line)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(IoError::parse(
            context,
            line,
            format!("field `{key}` must be a boolean"),
        )),
    }
}

/// Decodes one tagged mutation object; `context`/`line` flavor errors.
pub fn mutation_from_json(v: &Json, context: &str, line: usize) -> Result<Mutation, IoError> {
    let person = |key| u32_field(v, key, context, line).map(PersonId);
    let company = |key| u32_field(v, key, context, line).map(CompanyId);
    Ok(match str_field(v, "op", context, line)? {
        "add_person" => Mutation::AddPerson {
            name: str_field(v, "name", context, line)?.to_string(),
            roles: roles_from_string(str_field(v, "roles", context, line)?, context, line)?,
        },
        "add_company" => Mutation::AddCompany {
            name: str_field(v, "name", context, line)?.to_string(),
            legal_person: person("legal_person")?,
            kind: influence_kind_from_string(str_field(v, "kind", context, line)?, context, line)?,
        },
        "add_interdependence" => Mutation::AddInterdependence {
            a: person("a")?,
            b: person("b")?,
            kind: match str_field(v, "kind", context, line)? {
                "kinship" => InterdependenceKind::Kinship,
                "interlocking" => InterdependenceKind::Interlocking,
                other => {
                    return Err(IoError::parse(
                        context,
                        line,
                        format!("unknown interdependence kind `{other}`"),
                    ))
                }
            },
        },
        "add_influence" => Mutation::AddInfluence(InfluenceRecord {
            person: person("person")?,
            company: company("company")?,
            kind: influence_kind_from_string(str_field(v, "kind", context, line)?, context, line)?,
            is_legal_person: bool_field(v, "legal_person", context, line)?,
        }),
        "remove_influence" => Mutation::RemoveInfluence {
            person: person("person")?,
            company: company("company")?,
        },
        "add_investment" => Mutation::AddInvestment(InvestmentRecord {
            investor: company("investor")?,
            investee: company("investee")?,
            share: f64_field(v, "share", context, line)?,
        }),
        "remove_investment" => Mutation::RemoveInvestment {
            investor: company("investor")?,
            investee: company("investee")?,
        },
        "add_trading" => Mutation::AddTrading(TradingRecord {
            seller: company("seller")?,
            buyer: company("buyer")?,
            volume: f64_field(v, "volume", context, line)?,
        }),
        "remove_trading" => Mutation::RemoveTrading {
            seller: company("seller")?,
            buyer: company("buyer")?,
        },
        "set_tax_rate" => Mutation::SetTaxRate {
            company: company("company")?,
            rate: f64_field(v, "rate", context, line)?,
        },
        "remove_company" => Mutation::RemoveCompany {
            company: company("company")?,
        },
        "remove_person" => Mutation::RemovePerson {
            person: person("person")?,
        },
        other => {
            return Err(IoError::parse(
                context,
                line,
                format!("unknown mutation op `{other}`"),
            ))
        }
    })
}

/// Decodes a `{"mutations":[...]}` object.
pub fn batch_from_json(v: &Json, context: &str, line: usize) -> Result<MutationBatch, IoError> {
    let items = match field(v, "mutations", context, line)? {
        Json::Array(items) => items,
        _ => {
            return Err(IoError::parse(
                context,
                line,
                "field `mutations` must be an array",
            ))
        }
    };
    let mutations = items
        .iter()
        .map(|m| mutation_from_json(m, context, line))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MutationBatch::new(mutations))
}

/// Renders batches as JSONL: one compact `{"mutations":[...]}` per line.
pub fn render_feed(batches: &[MutationBatch]) -> String {
    let mut out = String::new();
    for batch in batches {
        out.push_str(&batch_to_json(batch).to_string());
        out.push('\n');
    }
    out
}

/// Parses a JSONL feed; blank lines are skipped.
pub fn parse_feed(text: &str, context: &str) -> Result<Vec<MutationBatch>, IoError> {
    let mut batches = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| IoError::parse(context, i + 1, e))?;
        batches.push(batch_from_json(&v, context, i + 1)?);
    }
    Ok(batches)
}

/// Writes a feed file (see [`render_feed`]).
pub fn save_feed(batches: &[MutationBatch], path: &Path) -> Result<(), IoError> {
    std::fs::write(path, render_feed(batches)).map_err(|e| IoError::fs(path, e))
}

/// Reads a feed file written by [`save_feed`].
pub fn load_feed(path: &Path) -> Result<Vec<MutationBatch>, IoError> {
    let text = std::fs::read_to_string(path).map_err(|e| IoError::fs(path, e))?;
    parse_feed(&text, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_model::{InfluenceKind, Role, RoleSet};

    fn every_op() -> Vec<Mutation> {
        vec![
            Mutation::AddPerson {
                name: "P9".into(),
                roles: RoleSet::of(&[Role::Ceo, Role::Director]),
            },
            Mutation::AddCompany {
                name: "C4".into(),
                legal_person: PersonId(9),
                kind: InfluenceKind::CeoOf,
            },
            Mutation::AddInterdependence {
                a: PersonId(0),
                b: PersonId(1),
                kind: InterdependenceKind::Kinship,
            },
            Mutation::AddInfluence(InfluenceRecord {
                person: PersonId(0),
                company: CompanyId(1),
                kind: InfluenceKind::DirectorOf,
                is_legal_person: false,
            }),
            Mutation::RemoveInfluence {
                person: PersonId(0),
                company: CompanyId(1),
            },
            Mutation::AddInvestment(InvestmentRecord {
                investor: CompanyId(0),
                investee: CompanyId(1),
                share: 0.5,
            }),
            Mutation::RemoveInvestment {
                investor: CompanyId(0),
                investee: CompanyId(1),
            },
            Mutation::AddTrading(TradingRecord {
                seller: CompanyId(1),
                buyer: CompanyId(2),
                volume: 3.5,
            }),
            Mutation::RemoveTrading {
                seller: CompanyId(1),
                buyer: CompanyId(2),
            },
            Mutation::SetTaxRate {
                company: CompanyId(0),
                rate: 0.17,
            },
            Mutation::RemoveCompany {
                company: CompanyId(0),
            },
            Mutation::RemovePerson {
                person: PersonId(0),
            },
        ]
    }

    #[test]
    fn every_op_roundtrips_through_json() {
        for m in every_op() {
            let v = mutation_to_json(&m);
            let text = v.to_string();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(mutation_from_json(&parsed, "t", 1).unwrap(), m, "{text}");
        }
    }

    #[test]
    fn feed_roundtrips_line_by_line() {
        let ops = every_op();
        let batches = vec![
            MutationBatch::new(ops[..4].to_vec()),
            MutationBatch::new(ops[4..].to_vec()),
        ];
        let text = render_feed(&batches);
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_feed(&text, "feed").unwrap();
        assert_eq!(parsed, batches);
    }

    #[test]
    fn each_feed_line_is_an_ingest_body() {
        let batches = vec![MutationBatch::trading([TradingRecord {
            seller: CompanyId(1),
            buyer: CompanyId(2),
            volume: 3.5,
        }])];
        let line = render_feed(&batches);
        let v = Json::parse(line.trim()).unwrap();
        assert!(matches!(v.get("mutations"), Some(Json::Array(a)) if a.len() == 1));
    }

    #[test]
    fn unknown_op_reports_context_and_line() {
        let err = parse_feed("{\"mutations\":[{\"op\":\"teleport\"}]}\n", "feed").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("feed:1"), "{text}");
        assert!(text.contains("teleport"), "{text}");
    }

    #[test]
    fn fractional_ids_are_rejected() {
        let err = parse_feed(
            "{\"mutations\":[{\"op\":\"remove_person\",\"person\":1.5}]}\n",
            "feed",
        )
        .unwrap_err();
        assert!(err.to_string().contains("u32"), "{err}");
    }
}
