//! A minimal JSON value model, writer and parser.
//!
//! The report files emit JSON (the Servyou-style system of Section 6
//! feeds dashboards) and downstream tooling reads it back; the offline
//! crate set has `serde` but no `serde_json`, so this module provides the
//! required subset end to end: objects, arrays, strings, numbers,
//! booleans and null, with correct string escaping, deterministic key
//! order, and a strict recursive-descent parser ([`Json::parse`]).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Convenience constructor for integer counts.
    pub fn int(n: usize) -> Json {
        Json::Number(n as f64)
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    pad(out, depth + 1);
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl Json {
    /// Parses a JSON document (strict: no trailing content, no comments).
    ///
    /// # Example
    ///
    /// ```
    /// use tpiin_io::json::Json;
    /// let v = Json::parse(r#"{"groups": 3}"#).unwrap();
    /// assert_eq!(v.get("groups").and_then(Json::as_f64), Some(3.0));
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", *other as char)),
                    }
                }
                Some(_) => return Err(format!("control character in string at byte {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

impl std::fmt::Display for Json {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(5.0).to_string(), "5");
        assert_eq!(Json::Number(5.25).to_string(), "5.25");
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Json::string("a\"b\\c\nd\u{1}").to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures() {
        let v = Json::Object(vec![
            (
                "groups".into(),
                Json::Array(vec![Json::int(1), Json::int(2)]),
            ),
            ("ok".into(), Json::Bool(true)),
        ]);
        assert_eq!(v.to_string(), r#"{"groups":[1,2],"ok":true}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::Object(vec![("a".into(), Json::Array(vec![Json::int(1)]))]);
        let text = v.to_pretty();
        assert!(text.contains("\n  \"a\": [\n    1\n  ]\n"), "{text}");
    }

    #[test]
    fn parse_scalars_and_structures() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Number(-25.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::string("a\nb"));
        assert_eq!(
            Json::parse("[1, 2, []]").unwrap(),
            Json::Array(vec![Json::int(1), Json::int(2), Json::Array(vec![])])
        );
        let obj = Json::parse(r#"{"a": 1, "b": {"c": "x"}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            obj.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x")
        );
        assert!(obj.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escape_roundtrip() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::string("Aé")
        );
        // Our writer escapes control chars with \u; parse them back.
        let original = Json::string("ctrl:\u{1}");
        assert_eq!(Json::parse(&original.to_string()).unwrap(), original);
    }

    #[test]
    fn writer_parser_roundtrip_nested() {
        let v = Json::Object(vec![
            (
                "list".into(),
                Json::Array(vec![Json::Null, Json::Bool(false), Json::Number(1.5)]),
            ),
            (
                "text".into(),
                Json::string("quotes \" and \\ slashes\nnewline"),
            ),
            ("empty_obj".into(), Json::Object(vec![])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Array(vec![]).to_pretty().trim(), "[]");
        assert_eq!(Json::Object(vec![]).to_pretty().trim(), "{}");
    }
}
