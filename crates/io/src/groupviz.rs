//! Visualization of a single suspicious group — the drill-down view the
//! Servyou monitoring system shows an investigator (Figs. 17–19): the
//! group's members, the two relationship trails, and the
//! interest-affiliated transaction highlighted.

use std::fmt::Write as _;
use tpiin_core::SuspiciousGroup;
use tpiin_fusion::{NodeColor, Tpiin};
use tpiin_graph::NodeId;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders one group as a Graphviz DOT document: members only, influence
/// arcs of the two trails in blue, the IAT in bold red, the antecedent
/// double-circled.
pub fn group_dot(tpiin: &Tpiin, group: &SuspiciousGroup) -> String {
    let mut out = String::new();
    out.push_str("digraph suspicious_group {\n  rankdir=LR;\n");
    for node in group.members() {
        let shape = if node == group.antecedent {
            "doublecircle"
        } else {
            match tpiin.color(node) {
                NodeColor::Person => "ellipse",
                NodeColor::Company => "box",
            }
        };
        let color = match tpiin.color(node) {
            NodeColor::Person => "black",
            NodeColor::Company => "red",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={}, color={}];",
            node,
            escape(tpiin.label(node)),
            shape,
            color
        );
    }
    let mut emit_trail = |trail: &[NodeId]| {
        for pair in trail.windows(2) {
            let _ = writeln!(out, "  n{} -> n{} [color=blue];", pair[0], pair[1]);
        }
    };
    emit_trail(&group.trail_with_trade);
    emit_trail(&group.trail_plain);
    let _ = writeln!(
        out,
        "  n{} -> n{} [color=red, penwidth=2.0, label=\"IAT\"];",
        group.trading_arc.0, group.trading_arc.1
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpiin_core::detect;

    #[test]
    fn renders_the_case1_group() {
        let (tpiin, _) = tpiin_fusion::fuse(&tpiin_datagen::case1_registry()).unwrap();
        let result = detect(&tpiin);
        let dot = group_dot(&tpiin, &result.groups[0]);
        assert!(dot.starts_with("digraph suspicious_group {"));
        assert!(dot.contains("L1+L2"), "{dot}");
        assert!(
            dot.contains("doublecircle"),
            "antecedent highlighted: {dot}"
        );
        assert!(dot.contains("label=\"IAT\""), "{dot}");
        // Four members -> four node lines.
        assert_eq!(dot.matches("shape=").count(), 4);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn circle_groups_render_without_duplicate_arcs() {
        use tpiin_model::*;
        let mut r = SourceRegistry::new();
        let l = r.add_person("L", RoleSet::of(&[Role::Ceo]));
        let c1 = r.add_company("C1");
        let c2 = r.add_company("C2");
        for c in [c1, c2] {
            r.add_influence(InfluenceRecord {
                person: l,
                company: c,
                kind: InfluenceKind::CeoOf,
                is_legal_person: true,
            });
        }
        r.add_investment(InvestmentRecord {
            investor: c1,
            investee: c2,
            share: 0.9,
        });
        r.add_trading(TradingRecord {
            seller: c2,
            buyer: c1,
            volume: 1.0,
        });
        let (tpiin, _) = tpiin_fusion::fuse(&r).unwrap();
        let result = detect(&tpiin);
        let circle = result
            .groups
            .iter()
            .find(|g| g.kind == tpiin_core::GroupKind::Circle)
            .expect("circle exists");
        let dot = group_dot(&tpiin, circle);
        assert!(dot.contains("IAT"));
        assert!(dot.contains("C1") && dot.contains("C2"));
    }
}
