//! Error type shared by the readers and writers.

use std::fmt;

/// Failure while reading or writing a TPIIN-related file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error, with the path involved.
    Fs {
        /// The file being accessed.
        path: std::path::PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file's content did not match its format.
    Parse {
        /// Which file (or format name, for string inputs).
        context: String,
        /// 1-based line of the offending record, when known.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Parsed records failed registry validation.
    Invalid(Vec<tpiin_model::ModelError>),
}

impl IoError {
    pub(crate) fn parse(
        context: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        IoError::Parse {
            context: context.into(),
            line,
            message: message.into(),
        }
    }

    pub(crate) fn fs(path: impl Into<std::path::PathBuf>, source: std::io::Error) -> Self {
        IoError::Fs {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs { path, source } => write!(f, "{}: {}", path.display(), source),
            IoError::Parse {
                context,
                line,
                message,
            } => {
                write!(f, "{context}:{line}: {message}")
            }
            IoError::Invalid(errs) => write!(
                f,
                "loaded records failed validation ({} error(s); first: {})",
                errs.len(),
                errs.first().map(|e| e.to_string()).unwrap_or_default()
            ),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Fs { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context_and_line() {
        let e = IoError::parse("persons.csv", 7, "bad role");
        assert_eq!(e.to_string(), "persons.csv:7: bad role");
    }
}
