//! `tpiin-io` — file formats around the TPIIN pipeline.
//!
//! The paper's workflow is file-based: Algorithm 1 takes a TPIIN "in the
//! form of edge list (a `r x 3` array)" and writes its findings into
//! per-subTPIIN files `susGroup(i)` and `susTrade(i)`; the source
//! relationships arrive as extracts from CSRC/HRDPSC/PTAOS systems; and
//! the trading networks were handled in Gephi.  This crate implements all
//! of those surfaces:
//!
//! * [`csv`] — a small, dependency-free RFC-4180-style CSV reader/writer;
//! * [`registry_csv`] — load/save a [`tpiin_model::SourceRegistry`] as a
//!   directory of six CSV files (one per record type);
//! * [`adapters`] — ETL from raw disclosure formats (board rosters,
//!   shareholding tables with percent strings, household registries)
//!   into a registry, resolving entities by name;
//! * [`edgelist`] — parse and render the paper's `r x 3` edge-list format
//!   and run the detector directly on it;
//! * [`reports`] — write `susGroup(i)` / `susTrade(i)` files from a
//!   detection result, plus a single JSON summary;
//! * [`graphml`] — GraphML export of a TPIIN for Gephi (the tool the
//!   paper used to generate and draw its networks);
//! * [`groupviz`] — per-group DOT drill-down views (the proof-chain
//!   screens of the Servyou system, Fig. 19);
//! * [`company_tree`] — the Fig. 17/18 investment-tree view of one
//!   company and its controlling persons;
//! * [`snapshot`] — a fused-TPIIN snapshot format ("fuse nightly, detect
//!   all day");
//! * [`snapshot_bin`] — the binary zero-copy variant of the snapshot,
//!   sized for nation-scale hot reloads;
//! * [`json`] — a minimal JSON value model, writer and parser used by
//!   the reports.

pub mod adapters;
pub mod company_tree;
pub mod csv;
pub mod edgelist;
pub mod graphml;
pub mod groupviz;
pub mod json;
pub mod mutation_feed;
pub mod registry_csv;
pub mod reports;
pub mod snapshot;
pub mod snapshot_bin;

mod error;

pub use error::IoError;
