//! Open-loop HTTP load generation against a tpiin-serve daemon.
//!
//! **Open-loop, not closed-loop.**  A closed-loop harness (N clients in
//! a request/response loop, like `bench_serve`'s endpoint hammering)
//! lets a slow server throttle its own offered load: when latency
//! doubles, the arrival rate halves, and the measured percentiles hide
//! exactly the queueing the users would feel — the classic coordinated
//! omission trap.  Here arrivals are scheduled on a fixed timetable
//! (`t_i = start + i/rate`) regardless of how the server is doing, and
//! every latency is measured from the request's *scheduled* arrival:
//! if the server falls behind, the wait shows up in the percentiles
//! instead of silently deflating the load.
//!
//! [`sweep`] runs one rate step per offered rate and reads the
//! process-global allocator watermark ([`tpiin_obs::alloc`]) around
//! each step, so a curve row carries the peak memory the served
//! process needed at that offered throughput.  This requires the
//! daemon to run *in this process* (as the bench bins do); the
//! generator's own allocations are included, which is the honest
//! number for an in-process harness.

use crate::record::{LoadCurve, RateStep};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One endpoint in the request mix, with a relative weight.
#[derive(Clone, Debug)]
pub struct MixEntry {
    /// Label recorded in the curve (`groups`, `company`, ...).
    pub name: String,
    /// Request path (`/groups?limit=5`, ...).
    pub path: String,
    /// Relative weight in the mix (2 = twice as many requests).
    pub weight: u32,
}

/// How to sweep offered throughput.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Offered arrival rates to sweep, in requests per second.
    pub rates: Vec<f64>,
    /// How long each rate step runs.
    pub step: Duration,
    /// Sender threads sharing the arrival timetable.  More senders
    /// tolerate more in-flight requests before the timetable slips;
    /// the timetable itself never changes.
    pub senders: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            rates: vec![50.0, 100.0, 200.0, 400.0],
            step: Duration::from_secs(1),
            senders: 8,
        }
    }
}

/// Nearest-rank percentile over an already-sorted sample, `q` in 0..=1.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Picks a mix entry for request `i`: deterministic weighted selection
/// (Fibonacci-hash scatter over the cumulative weights), so a sweep is
/// reproducible without a random-number dependency.
fn pick(mix: &[MixEntry], i: u64) -> &MixEntry {
    let total: u64 = mix.iter().map(|m| m.weight.max(1) as u64).sum();
    let mut ticket = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 32) % total.max(1);
    for entry in mix {
        let w = entry.weight.max(1) as u64;
        if ticket < w {
            return entry;
        }
        ticket -= w;
    }
    &mix[mix.len() - 1]
}

/// One blocking GET; returns `Ok(())` on HTTP 200, `Err` otherwise.
fn get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(), ()> {
    let mut stream = TcpStream::connect(addr).map_err(|_| ())?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    write!(stream, "GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n").map_err(|_| ())?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|_| ())?;
    if response.starts_with("HTTP/1.1 200") {
        Ok(())
    } else {
        Err(())
    }
}

/// Runs one open-loop rate step: `rate` arrivals per second for
/// `step`, split round-robin across `senders` threads.  Returns the
/// step record; latencies are measured from scheduled arrival.
fn run_step(addr: SocketAddr, mix: &[MixEntry], rate: f64, opts: &SweepOptions) -> RateStep {
    let total = (rate * opts.step.as_secs_f64()).floor().max(1.0) as u64;
    let senders = opts.senders.max(1).min(total as usize);
    // Generous per-request timeout: an open-loop run saturating the
    // server must observe the long tail, not truncate it.
    let timeout = opts.step.max(Duration::from_secs(2)) * 4;

    tpiin_obs::alloc::reset_peak();
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..senders)
            .map(|worker| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    let mut i = worker as u64;
                    while i < total {
                        let scheduled = started + Duration::from_secs_f64(i as f64 / rate);
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        // Past-due requests fire immediately — the
                        // elapsed lateness lands in the latency.
                        let entry = pick(mix, i);
                        let outcome = get(addr, &entry.path, timeout);
                        let latency_us = scheduled.elapsed().as_secs_f64() * 1e6;
                        match outcome {
                            Ok(()) => latencies.push(latency_us),
                            Err(()) => errors += 1,
                        }
                        i += senders as u64;
                    }
                    (latencies, errors)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("sender thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let server_peak_bytes = tpiin_obs::alloc::stats().peak_bytes;

    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    for (lats, errs) in results {
        latencies.extend(lats);
        errors += errs;
    }
    latencies.sort_by(f64::total_cmp);
    RateStep {
        offered_rps: rate,
        sent: total as usize,
        completed: latencies.len(),
        errors,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0.0),
        achieved_rps: latencies.len() as f64 / elapsed.max(1e-9),
        server_peak_bytes,
    }
}

/// Sweeps offered throughput over `opts.rates` against the daemon at
/// `addr`, producing one latency-vs-offered-throughput curve.
pub fn sweep(addr: SocketAddr, workload: &str, mix: &[MixEntry], opts: &SweepOptions) -> LoadCurve {
    assert!(!mix.is_empty(), "request mix must not be empty");
    // Untimed warmup primes the daemon's pool and the connect path.
    for entry in mix {
        let _ = get(addr, &entry.path, Duration::from_secs(5));
    }
    let steps = opts
        .rates
        .iter()
        .map(|&rate| run_step(addr, mix, rate, opts))
        .collect();
    LoadCurve {
        workload: workload.to_string(),
        mix: mix.iter().map(|m| m.name.clone()).collect(),
        step_secs: opts.step.as_secs_f64(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_is_deterministic_and_respects_weights() {
        let mix = vec![
            MixEntry {
                name: "a".into(),
                path: "/a".into(),
                weight: 3,
            },
            MixEntry {
                name: "b".into(),
                path: "/b".into(),
                weight: 1,
            },
        ];
        let counts = (0..4000u64).fold([0usize; 2], |mut acc, i| {
            match pick(&mix, i).name.as_str() {
                "a" => acc[0] += 1,
                _ => acc[1] += 1,
            }
            acc
        });
        // 3:1 weighting within a loose tolerance (the scatter is a
        // hash, not a counter).
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio = {ratio}");
        // Deterministic: same index, same entry.
        assert_eq!(pick(&mix, 42).name, pick(&mix, 42).name);
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
    }
}
