//! `trace_check` — schema validator for exported Chrome `trace_event`
//! files (`tpiin --trace-out`, `GET /trace/{id}`).
//!
//! CI runs the worked example with `--trace-out`, then this checker,
//! before uploading the trace as an artifact: a malformed export would
//! otherwise only be noticed when someone drags it into Perfetto weeks
//! later.  Checks, per file:
//!
//! * top level: `traceId` (32 hex digits), `displayTimeUnit`, and a
//!   non-empty `traceEvents` array;
//! * every event: non-empty `name`, `cat`, phase `"X"` (complete
//!   events are all the exporter emits), numeric non-negative `ts` and
//!   `dur`, numeric `pid` and `tid`;
//! * at least one span from each pipeline layer the trace claims to
//!   cover (`cli/`, `fusion`, `detect`), so a trace that silently lost
//!   a layer fails loudly.
//!
//! Usage: `trace_check FILE...` — exits 0 when every file passes,
//! 1 with a per-file diagnostic otherwise.

use tpiin_io::json::Json;

/// One top-level check over a parsed trace; returns the number of
/// events on success, the first violation on failure.
fn check(json: &Json) -> Result<usize, String> {
    let id = json
        .get("traceId")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `traceId`")?;
    if id.len() != 32 || !id.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("traceId `{id}` is not 32 hex digits"));
    }
    if json
        .get("displayTimeUnit")
        .and_then(|v| v.as_str())
        .is_none()
    {
        return Err("missing string field `displayTimeUnit`".to_string());
    }
    let Some(Json::Array(events)) = json.get("traceEvents") else {
        return Err("missing array field `traceEvents`".to_string());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    for (i, event) in events.iter().enumerate() {
        check_event(event).map_err(|e| format!("event #{i}: {e}"))?;
    }
    for layer in ["cli/", "fusion", "detect"] {
        let covered = events.iter().any(|e| {
            e.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with(layer))
        });
        if !covered {
            return Err(format!("no span from the `{layer}` layer"));
        }
    }
    Ok(events.len())
}

/// Validates one `traceEvents` entry against the Chrome `trace_event`
/// complete-event shape.
fn check_event(event: &Json) -> Result<(), String> {
    let name = event
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or("missing string field `name`")?;
    if name.is_empty() {
        return Err("empty `name`".to_string());
    }
    if event.get("cat").and_then(|v| v.as_str()).is_none() {
        return Err(format!("`{name}`: missing string field `cat`"));
    }
    match event.get("ph").and_then(|v| v.as_str()) {
        Some("X") => {}
        other => return Err(format!("`{name}`: phase {other:?}, want Some(\"X\")")),
    }
    for field in ["ts", "dur", "pid", "tid"] {
        let value = event
            .get(field)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("`{name}`: missing numeric field `{field}`"))?;
        if value < 0.0 {
            return Err(format!("`{name}`: negative `{field}` ({value})"));
        }
    }
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check FILE...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("read: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("parse: {e}")))
            .and_then(|json| check(&json));
        match verdict {
            Ok(events) => println!("trace_check {path}: ok ({events} events)"),
            Err(why) => {
                eprintln!("trace_check {path}: FAIL: {why}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
