//! Fusion front-end benchmark: runs the fig7 worked example and a
//! generated province registry through the fusion pipeline twice —
//!
//! 1. serial (`FuseOptions { threads: 1 }`),
//! 2. parallel front-end at `THREADS` workers —
//!
//! and writes `BENCH_fuse.json` with total and per-stage wall times for
//! both arms plus the derived `parallel_speedup` ratio for CI trend
//! tracking.  Both arms must produce bit-identical TPIINs; the benchmark
//! asserts the edge lists match before recording anything.
//!
//! Usage: `bench_fuse [OUT_PATH] [SCALE] [THREADS]` — defaults to
//! `BENCH_fuse.json`, scale 0.5, 8 threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tpiin_bench::fixtures::{nation_registry, province_with_trading};
use tpiin_bench::record::{
    self, BenchMeta, FuseArmRecord, FuseBench, FuseStageMs, FuseWorkloadRecord,
};
use tpiin_datagen::fig7_registry;
use tpiin_fusion::{fuse_with, FuseOptions, FusionReport, Tpiin};
use tpiin_model::SourceRegistry;

/// Runs one fusion arm `reps` times after `warmup` untimed passes and
/// returns the median run's record plus its TPIIN (for the cross-arm
/// equality check).  The per-stage breakdown is taken from the median
/// run itself, so stages always sum to roughly the recorded total.
fn measure_arm(
    registry: &SourceRegistry,
    options: FuseOptions,
    warmup: usize,
    reps: usize,
) -> (FuseArmRecord, Tpiin, FusionReport) {
    for _ in 0..warmup {
        fuse_with(registry, options).expect("benchmark registry fuses");
    }
    let mut runs: Vec<(f64, Tpiin, FusionReport)> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let (tpiin, report) = fuse_with(registry, options).expect("benchmark registry fuses");
        runs.push((start.elapsed().as_secs_f64() * 1e3, tpiin, report));
    }
    runs.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    let (total_ms, tpiin, report) = runs.swap_remove(runs.len() / 2);
    let stages = report
        .stage_timings
        .iter()
        .map(|t| FuseStageMs {
            stage: t.stage.clone(),
            ms: t.nanos as f64 / 1e6,
        })
        .collect();
    (FuseArmRecord { total_ms, stages }, tpiin, report)
}

fn measure(
    name: &str,
    registry: &SourceRegistry,
    warmup: usize,
    reps: usize,
    threads: usize,
) -> FuseWorkloadRecord {
    let (serial, serial_tpiin, report) =
        measure_arm(registry, FuseOptions { threads: 1 }, warmup, reps);
    let (parallel, parallel_tpiin, _) =
        measure_arm(registry, FuseOptions { threads }, warmup, reps);
    assert_eq!(
        serial_tpiin.edge_list(),
        parallel_tpiin.edge_list(),
        "{name}: arms disagree on the fused TPIIN"
    );

    FuseWorkloadRecord {
        name: name.to_string(),
        tpiin_nodes: report.tpiin_nodes,
        influence_arcs: report.influence_arcs,
        trading_arcs: report.trading_arcs,
        serial,
        parallel,
        threads,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "BENCH_fuse.json".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(0.5);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("THREADS must be an integer"))
        .unwrap_or(8);

    let fig7 = fig7_registry();
    let province = province_with_trading(scale, 0.004, 20170417);
    let nation = nation_registry(scale, 20170417);

    // fig7 is tiny — repeat it enough for the timer to resolve; the
    // province run is the headline number and gets median-of-5 after a
    // single warmup pass; the multi-province nation is the memory-lean
    // ingest workload and gets median-of-3.
    let specs: Vec<(String, &SourceRegistry, usize, usize)> = vec![
        ("fig7".to_string(), &fig7, 10, 51),
        (format!("province-{scale}"), &province, 1, 5),
        (format!("nation-{scale}"), &nation, 1, 3),
    ];
    let mut meta = BenchMeta::new(
        "fuse",
        specs.iter().map(|(name, ..)| name.clone()),
        ["serial", "parallel"],
    );

    // Each workload runs under catch_unwind so a crash partway still
    // writes the completed workloads — marked `aborted`, which the
    // bench_check gate treats as a hard failure.
    let mut workloads = Vec::new();
    for (name, registry, warmup, reps) in &specs {
        match catch_unwind(AssertUnwindSafe(|| {
            measure(name, registry, *warmup, *reps, threads)
        })) {
            Ok(record) => workloads.push(record),
            Err(_) => {
                eprintln!("bench fuse [{name}]: PANICKED — marking record aborted");
                meta.aborted = true;
                break;
            }
        }
    }

    let bench = FuseBench {
        host_cpus: meta.host_cpus,
        workloads,
    };
    for w in &bench.workloads {
        println!(
            "bench fuse [{}]: serial {:.2} ms, parallel@{} {:.2} ms ({:.2}x), {} nodes / {} + {} arcs",
            w.name,
            w.serial.total_ms,
            w.threads,
            w.parallel.total_ms,
            w.parallel_speedup(),
            w.tpiin_nodes,
            w.influence_arcs,
            w.trading_arcs
        );
        for (s, p) in w.serial.stages.iter().zip(&w.parallel.stages) {
            println!(
                "  {:>16}: serial {:.3} ms, parallel {:.3} ms",
                s.stage, s.ms, p.ms
            );
        }
    }
    record::write_enveloped(std::path::Path::new(&path), &meta, bench.to_json())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("record -> {path} (host_cpus = {})", bench.host_cpus);
    if meta.aborted {
        std::process::exit(1);
    }
}
