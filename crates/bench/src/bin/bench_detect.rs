//! Headline detection benchmark: segments and mines a generated
//! province TPIIN once, writing `BENCH_detect.json` (`{wall_ms, groups,
//! subtpiins}`) for CI trend tracking.
//!
//! Usage: `bench_detect [OUT_PATH] [SCALE]` — defaults to
//! `BENCH_detect.json` at scale 0.5.

use std::time::Instant;
use tpiin_bench::fixtures::tpiin_fixture;
use tpiin_bench::record::BenchRecord;
use tpiin_core::{segment_tpiin, Detector};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_detect.json".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(0.5);

    let tpiin = tpiin_fixture(scale, 0.004, 20170417);
    let subs = segment_tpiin(&tpiin);

    let start = Instant::now();
    let result = Detector::default().detect_segmented(&tpiin, &subs);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let record = BenchRecord {
        wall_ms,
        groups: result.group_count(),
        subtpiins: subs.len(),
    };
    record
        .write(std::path::Path::new(&path))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "bench detect (scale {scale}): {wall_ms:.1} ms, {} groups across {} subTPIINs -> {path}",
        record.groups, record.subtpiins
    );
}
