//! Headline detection benchmark: runs the fig7 worked example and a
//! generated province TPIIN through the three detection arms —
//!
//! 1. serial mining over the legacy nested-adjacency shards,
//! 2. serial mining over the frozen CSR shards,
//! 3. work-stealing mining over the CSR shards at `THREADS` workers —
//!
//! plus every default [`GroupMiner`](tpiin_core::GroupMiner) strategy
//! end-to-end (segmentation included), and writes `BENCH_detect.json`
//! with per-workload timings, the per-miner `mine_ms` entries and the
//! derived `csr_over_nested` / `thread_speedup` ratios for CI trend
//! tracking.  The top-level `{wall_ms, groups, subtpiins}` fields stay
//! compatible with the old single-number schema.
//!
//! Usage: `bench_detect [OUT_PATH] [SCALE] [THREADS]` — defaults to
//! `BENCH_detect.json`, scale 0.5, 8 threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tpiin_bench::fixtures::{nation_tpiin_fixture, tpiin_fixture};
use tpiin_bench::record::{self, BenchMeta, DetectBench, MinerTiming, WorkloadRecord};
use tpiin_core::{
    segment_tpiin, segment_tpiin_nested, DetectionResult, Detector, DetectorConfig, MineContext,
    MinerRegistry,
};
use tpiin_datagen::fig7_registry;
use tpiin_fusion::{fuse, Tpiin};

/// Median-of-`reps` wall time in milliseconds after `warmup` untimed
/// runs, plus the last result (so callers can cross-check group counts
/// between arms).  The warmup pre-faults the shard memory and primes
/// caches; the median is robust against scheduler hiccups that a
/// best-of-N would hide and a mean would amplify.
fn median_ms(
    warmup: usize,
    reps: usize,
    mut run: impl FnMut() -> DetectionResult,
) -> (f64, DetectionResult) {
    let mut last = None;
    for _ in 0..warmup {
        last = Some(run());
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let result = run();
        samples.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some(result);
    }
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    let median = if samples.len() % 2 == 0 {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    };
    (median, last.expect("reps >= 1"))
}

fn measure(
    name: &str,
    tpiin: &Tpiin,
    warmup: usize,
    reps: usize,
    threads: usize,
) -> WorkloadRecord {
    let csr = segment_tpiin(tpiin);
    let nested = segment_tpiin_nested(tpiin);
    let serial = Detector::new(DetectorConfig {
        threads: 1,
        ..DetectorConfig::default()
    });
    let stealing = Detector::new(DetectorConfig {
        threads,
        ..DetectorConfig::default()
    });

    let (nested_serial_ms, r1) =
        median_ms(warmup, reps, || serial.detect_segmented(tpiin, &nested));
    let (csr_serial_ms, r2) = median_ms(warmup, reps, || serial.detect_segmented(tpiin, &csr));
    let (csr_threads_ms, r3) = median_ms(warmup, reps, || stealing.detect_segmented(tpiin, &csr));
    assert_eq!(r1.group_count(), r2.group_count(), "{name}: arms disagree");
    assert_eq!(r2.group_count(), r3.group_count(), "{name}: arms disagree");

    // Each default strategy end-to-end (segmentation included), serial
    // so the timings are comparable across hosts with different core
    // counts.  The `rules` entry must agree with the detection arms —
    // the strategy facade wraps the same kernel.
    let ctx = MineContext::with_config(DetectorConfig {
        threads: 1,
        ..DetectorConfig::default()
    });
    let miners = MinerRegistry::with_defaults()
        .iter()
        .map(|miner| {
            let (mine_ms, result) = median_ms(warmup, reps, || miner.mine(tpiin, &ctx));
            MinerTiming {
                name: miner.name().to_string(),
                groups: result.group_count(),
                mine_ms,
            }
        })
        .collect::<Vec<_>>();
    if let Some(rules) = miners.iter().find(|m| m.name == tpiin_core::RULES_MINER) {
        assert_eq!(
            rules.groups,
            r2.group_count(),
            "{name}: rules miner disagrees"
        );
    }

    WorkloadRecord {
        name: name.to_string(),
        groups: r2.group_count(),
        subtpiins: csr.len(),
        nested_serial_ms,
        csr_serial_ms,
        csr_threads_ms,
        threads,
        miners,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_detect.json".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(0.5);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("THREADS must be an integer"))
        .unwrap_or(8);

    let (fig7, _) = fuse(&fig7_registry()).expect("fig7 registry fuses");
    let province = tpiin_fixture(scale, 0.004, 20170417);
    let nation = nation_tpiin_fixture(scale, 20170417);

    // fig7 is tiny — repeat it enough for the timer to resolve; the
    // province run is the headline number and gets median-of-9 after
    // two warmup passes; the multi-province nation is the largest and
    // gets median-of-5.
    let specs: Vec<(String, &Tpiin, usize, usize)> = vec![
        ("fig7".to_string(), &fig7, 10, 51),
        (format!("province-{scale}"), &province, 2, 9),
        (format!("nation-{scale}"), &nation, 1, 5),
    ];
    let mut meta = BenchMeta::new(
        "detect",
        specs.iter().map(|(name, ..)| name.clone()),
        [
            "nested_serial",
            "csr_serial",
            "csr_stealing",
            "miner:rules",
            "miner:circular",
        ],
    );

    // Each workload runs under catch_unwind so a crash partway still
    // writes the completed workloads — marked `aborted`, which the
    // bench_check gate treats as a hard failure.
    let mut workloads = Vec::new();
    for (name, tpiin, warmup, reps) in &specs {
        match catch_unwind(AssertUnwindSafe(|| {
            measure(name, tpiin, *warmup, *reps, threads)
        })) {
            Ok(record) => workloads.push(record),
            Err(_) => {
                eprintln!("bench detect [{name}]: PANICKED — marking record aborted");
                meta.aborted = true;
                break;
            }
        }
    }

    let bench = DetectBench {
        host_cpus: meta.host_cpus,
        workloads,
    };
    for w in &bench.workloads {
        println!(
            "bench detect [{}]: nested {:.2} ms, csr {:.2} ms ({:.2}x), csr@{} {:.2} ms ({:.2}x), {} groups / {} subTPIINs",
            w.name,
            w.nested_serial_ms,
            w.csr_serial_ms,
            w.csr_over_nested(),
            w.threads,
            w.csr_threads_ms,
            w.thread_speedup(),
            w.groups,
            w.subtpiins
        );
        for m in &w.miners {
            println!(
                "bench detect [{}]: miner {} {:.2} ms, {} groups",
                w.name, m.name, m.mine_ms, m.groups
            );
        }
    }
    record::write_enveloped(std::path::Path::new(&path), &meta, bench.to_json())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("record -> {path} (host_cpus = {})", bench.host_cpus);
    if meta.aborted {
        std::process::exit(1);
    }
}
