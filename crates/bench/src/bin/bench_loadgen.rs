//! Open-loop load benchmark: boots an in-process `tpiin-serve` daemon
//! over the fig7 worked example and sweeps offered throughput across a
//! mixed read workload (`/groups`, `/company/{id}`,
//! `/groups_behind_arc`), writing one latency-vs-offered-throughput
//! curve per sweep to `BENCH_loadgen.json`.
//!
//! Unlike `bench_serve`'s closed-loop endpoint hammering, arrivals here
//! follow a fixed timetable regardless of server speed, and latency is
//! measured from the *scheduled* arrival — see [`tpiin_bench::loadgen`]
//! for why that avoids coordinated omission.  Each rate step also
//! records the process's peak live heap (the allocator-ledger
//! watermark, reset at the step boundary).
//!
//! Usage: `bench_loadgen [OUT_PATH] [RATES] [STEP_SECS] [SENDERS]` —
//! defaults to `BENCH_loadgen.json`, rates `50,100,200,400` (a
//! comma-separated rps ladder), 1-second steps, 8 senders.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use tpiin_bench::loadgen::{self, MixEntry, SweepOptions};
use tpiin_bench::record::{self, BenchMeta, LoadCurve, RateStep};
use tpiin_core::detect;
use tpiin_datagen::fig7_registry;
use tpiin_obs::Json;
use tpiin_serve::{ServeConfig, ServerHandle};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_loadgen.json".to_string());
    let rates: Vec<f64> = args
        .next()
        .map(|s| {
            s.split(',')
                .map(|r| {
                    r.trim()
                        .parse()
                        .expect("RATES must be comma-separated numbers")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![50.0, 100.0, 200.0, 400.0]);
    let step_secs: f64 = args
        .next()
        .map(|s| s.parse().expect("STEP_SECS must be a number"))
        .unwrap_or(1.0);
    let senders: usize = args
        .next()
        .map(|s| s.parse().expect("SENDERS must be an integer"))
        .unwrap_or(8);
    assert!(!rates.is_empty(), "RATES must name at least one rate");

    let workers = 4;
    let mut meta = BenchMeta::new(
        "loadgen",
        ["fig7".to_string()],
        ["groups", "company", "groups_behind_arc"],
    );

    // The whole sweep runs under catch_unwind: a crash mid-ladder still
    // writes an (aborted, gate-failing) record instead of nothing — a
    // flight recorder that only records successful flights is useless.
    let curves: Vec<LoadCurve> = catch_unwind(AssertUnwindSafe(|| {
        let (tpiin, _) = fuse_fig7();
        let detection = detect(&tpiin);
        let mut mix = vec![MixEntry {
            name: "groups".to_string(),
            path: "/groups?limit=5".to_string(),
            weight: 2,
        }];
        if let Some((src, dst)) = detection.suspicious_trading_arcs.iter().next() {
            mix.push(MixEntry {
                name: "company".to_string(),
                path: format!("/company/{}", tpiin.label(*src)),
                weight: 1,
            });
            mix.push(MixEntry {
                name: "groups_behind_arc".to_string(),
                path: format!(
                    "/groups_behind_arc?src={}&dst={}",
                    tpiin.label(*src),
                    tpiin.label(*dst)
                ),
                weight: 1,
            });
        }
        let config = ServeConfig {
            workers,
            queue_capacity: 256,
            ..ServeConfig::default()
        };
        let handle = ServerHandle::bind(tpiin, config).expect("bind ephemeral daemon");
        let opts = SweepOptions {
            rates: rates.clone(),
            step: Duration::from_secs_f64(step_secs),
            senders,
        };
        let curve = loadgen::sweep(handle.addr(), "fig7", &mix, &opts);
        handle.shutdown();
        vec![curve]
    }))
    .unwrap_or_else(|_| {
        eprintln!("bench loadgen [fig7]: PANICKED — marking record aborted");
        meta.aborted = true;
        Vec::new()
    });

    for curve in &curves {
        for step in &curve.steps {
            print_step(&curve.workload, step);
        }
    }

    let payload = Json::Object(vec![
        ("workers".to_string(), Json::Int(workers as u64)),
        ("senders".to_string(), Json::Int(senders as u64)),
        (
            "load_curves".to_string(),
            Json::Array(curves.iter().map(LoadCurve::to_json).collect()),
        ),
    ]);
    record::write_enveloped(std::path::Path::new(&path), &meta, payload)
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("record -> {path} (host_cpus = {})", meta.host_cpus);
    if meta.aborted {
        std::process::exit(1);
    }
}

fn fuse_fig7() -> (tpiin_fusion::Tpiin, tpiin_fusion::FusionReport) {
    tpiin_fusion::fuse(&fig7_registry()).expect("fig7 registry fuses")
}

fn print_step(workload: &str, step: &RateStep) {
    println!(
        "bench loadgen [{workload}] @{:>6.0} rps: sent {:>5}, ok {:>5}, err {:>3}, p50 {:>8.1} us, p95 {:>8.1} us, p99 {:>8.1} us, achieved {:>6.1} rps, peak {} B",
        step.offered_rps,
        step.sent,
        step.completed,
        step.errors,
        step.p50_us,
        step.p95_us,
        step.p99_us,
        step.achieved_rps,
        step.server_peak_bytes
    );
}
