//! CI perf-regression gate: compares fresh `BENCH_*.json` records
//! against committed baselines and exits non-zero on any regression.
//!
//! For every `BENCH_*.json` in the fresh directory, the matching file
//! in the baseline directory is loaded and the two are compared with
//! [`tpiin_bench::check::compare`]: timing keys may grow up to
//! `baseline × tolerance + floor`, deterministic count keys must match
//! exactly, and an `aborted: true` fresh record always fails.  A fresh
//! record with no committed baseline fails too — a new benchmark must
//! land with its baseline, or the gate would silently never cover it.
//!
//! Usage:
//!
//! ```text
//! bench_check [--tolerance RATIO] [--floor-ms MS] [--update] BASELINE_DIR FRESH_DIR
//! ```
//!
//! `--update` rewrites the baselines from the fresh records instead of
//! gating (the explicit, reviewable way to ratify a new performance
//! level) and never fails — except on aborted fresh records, which are
//! not fit to become baselines.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tpiin_bench::check::{compare, Tolerances};
use tpiin_io::json::Json;

struct Options {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    tolerances: Tolerances,
    update: bool,
}

fn parse_args() -> Options {
    let mut tolerances = Tolerances::default();
    let mut update = false;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let value = args.next().expect("--tolerance needs a value");
                tolerances.ratio = value.parse().expect("--tolerance must be a number");
            }
            "--floor-ms" => {
                let value = args.next().expect("--floor-ms needs a value");
                tolerances.floor_ms = value.parse().expect("--floor-ms must be a number");
            }
            "--update" => update = true,
            other => dirs.push(PathBuf::from(other)),
        }
    }
    let [baseline_dir, fresh_dir] = <[PathBuf; 2]>::try_from(dirs).unwrap_or_else(|_| {
        panic!("usage: bench_check [--tolerance RATIO] [--floor-ms MS] [--update] BASELINE_DIR FRESH_DIR")
    });
    Options {
        baseline_dir,
        fresh_dir,
        tolerances,
        update,
    }
}

/// `BENCH_*.json` file names in `dir`, sorted for stable output.
fn bench_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    names
}

fn load(path: &Path) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e:?}", path.display()))
}

fn main() -> ExitCode {
    let opts = parse_args();
    let fresh_names = bench_files(&opts.fresh_dir);
    if fresh_names.is_empty() {
        eprintln!(
            "bench_check: no BENCH_*.json records in {}",
            opts.fresh_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for name in &fresh_names {
        let fresh_path = opts.fresh_dir.join(name);
        let fresh = load(&fresh_path);
        let baseline_path = opts.baseline_dir.join(name);

        if opts.update {
            if let Some(Json::Bool(true)) = fresh.get("aborted") {
                println!("bench_check [{name}]: FAIL — aborted record cannot become a baseline");
                failures += 1;
                continue;
            }
            std::fs::create_dir_all(&opts.baseline_dir)
                .unwrap_or_else(|e| panic!("creating {}: {e}", opts.baseline_dir.display()));
            std::fs::copy(&fresh_path, &baseline_path)
                .unwrap_or_else(|e| panic!("updating {}: {e}", baseline_path.display()));
            println!("bench_check [{name}]: baseline updated");
            continue;
        }

        if !baseline_path.is_file() {
            println!(
                "bench_check [{name}]: FAIL — no committed baseline at {} (run with --update to create it)",
                baseline_path.display()
            );
            failures += 1;
            continue;
        }
        let baseline = load(&baseline_path);
        let regressions = compare(&baseline, &fresh, &opts.tolerances);
        if regressions.is_empty() {
            println!(
                "bench_check [{name}]: ok (tolerance {:.1}x + {:.1} ms floor)",
                opts.tolerances.ratio, opts.tolerances.floor_ms
            );
        } else {
            println!(
                "bench_check [{name}]: FAIL — {} regression(s)",
                regressions.len()
            );
            for line in &regressions {
                println!("  {line}");
            }
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_check: {failures} of {} record(s) failed the gate",
            fresh_names.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
