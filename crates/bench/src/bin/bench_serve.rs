//! Query-latency benchmark for the `tpiin-serve` daemon: boots an
//! in-process server on an ephemeral port for the fig7 worked example
//! and a generated province TPIIN, hammers each read endpoint from
//! `CLIENTS` concurrent connections, and writes client-observed
//! p50/p95/p99 latencies to `BENCH_serve.json` for CI trend tracking.
//! A final pair of arms hammers `/groups` with per-request tracing on
//! and off and records the p95 overhead ratio.
//!
//! Usage: `bench_serve [OUT_PATH] [SCALE] [CLIENTS]` — defaults to
//! `BENCH_serve.json`, scale 0.5, 4 clients.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use tpiin_bench::fixtures::{nation_tpiin_fixture, tpiin_fixture};
use tpiin_bench::loadgen::{self, MixEntry, SweepOptions};
use tpiin_bench::record::{
    self, BenchMeta, EndpointLatency, LoadCurve, ServeBench, ServeWorkloadRecord,
    SnapshotLoadRecord, TelemetryOverheadRecord, TracingOverheadRecord,
};
use tpiin_core::detect;
use tpiin_datagen::fig7_registry;
use tpiin_fusion::{fuse, Tpiin};
use tpiin_serve::{ServeConfig, ServerHandle};

/// One blocking HTTP GET over a fresh connection (the daemon speaks
/// `Connection: close`, so per-request connections are the protocol,
/// not an artifact of the benchmark).  Returns the elapsed time in
/// microseconds; panics on any non-200 so a broken endpoint cannot
/// silently publish garbage percentiles.
fn timed_get(addr: SocketAddr, path: &str) -> f64 {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let elapsed = start.elapsed().as_secs_f64() * 1e6;
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "GET {path} failed: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    elapsed
}

/// Nearest-rank percentile over an already-sorted sample, `q` in 0..=1.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "no samples");
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Hammers one endpoint with `clients` threads splitting `requests`
/// sequential GETs, after a short untimed warmup that primes the
/// daemon's thread pool and the kernel's connection path.
fn bench_endpoint(
    addr: SocketAddr,
    name: &str,
    path: &str,
    requests: usize,
    clients: usize,
) -> EndpointLatency {
    for _ in 0..clients.max(4) {
        timed_get(addr, path);
    }
    let per_client = requests.div_ceil(clients);
    let samples: Vec<f64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    (0..per_client)
                        .map(|_| timed_get(addr, path))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    let mut sorted = samples;
    sorted.sort_by(f64::total_cmp);
    EndpointLatency {
        endpoint: name.to_string(),
        requests: sorted.len(),
        p50_us: percentile(&sorted, 0.50),
        p95_us: percentile(&sorted, 0.95),
        p99_us: percentile(&sorted, 0.99),
    }
}

/// Boots a daemon over `tpiin` and measures every read endpoint.  The
/// arc/company query targets come from an offline [`detect`] pass so
/// the benchmark exercises the same ancestor-cone path a real analyst
/// would hit, not a guaranteed-miss probe.
fn measure(
    name: &str,
    tpiin: Tpiin,
    requests: usize,
    clients: usize,
    workers: usize,
) -> ServeWorkloadRecord {
    let detection = detect(&tpiin);
    let nodes = tpiin.node_count();
    let groups = detection.group_count();

    let mut endpoints = vec![
        ("healthz".to_string(), "/healthz".to_string()),
        ("groups".to_string(), "/groups?limit=5".to_string()),
    ];
    if let Some((src, dst)) = detection.suspicious_trading_arcs.iter().next() {
        endpoints.push((
            "groups_behind_arc".to_string(),
            format!(
                "/groups_behind_arc?src={}&dst={}",
                tpiin.label(*src),
                tpiin.label(*dst)
            ),
        ));
        endpoints.push((
            "company".to_string(),
            format!("/company/{}", tpiin.label(*src)),
        ));
    }

    let config = ServeConfig {
        workers,
        queue_capacity: 4 * clients.max(1) + 16,
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(tpiin, config).expect("bind ephemeral daemon");
    let addr = handle.addr();

    let measured = endpoints
        .iter()
        .map(|(label, path)| bench_endpoint(addr, label, path, requests, clients))
        .collect();
    handle.shutdown();

    ServeWorkloadRecord {
        name: name.to_string(),
        nodes,
        groups,
        endpoints: measured,
    }
}

/// Measures the per-request cost of tracing: the same fig7 `/groups`
/// endpoint hammered against a daemon with tracing enabled (the
/// default — a [`tpiin_obs::TraceContext`] per request, the
/// `x-tpiin-trace` header, the replay ring) and one with
/// `ServeConfig::tracing` off.  The acceptance bar is a p95 ratio
/// within noise of 1.0; anything past 1.05 flags a regression.
fn measure_tracing_overhead(
    requests: usize,
    clients: usize,
    workers: usize,
) -> TracingOverheadRecord {
    let arm = |tracing: bool| {
        let (tpiin, _) = fuse(&fig7_registry()).expect("fig7 registry fuses");
        let config = ServeConfig {
            workers,
            queue_capacity: 4 * clients.max(1) + 16,
            tracing,
            ..ServeConfig::default()
        };
        let handle = ServerHandle::bind(tpiin, config).expect("bind ephemeral daemon");
        let label = if tracing { "groups+trace" } else { "groups" };
        let lat = bench_endpoint(handle.addr(), label, "/groups?limit=5", requests, clients);
        handle.shutdown();
        lat
    };
    TracingOverheadRecord {
        endpoint: "groups".to_string(),
        tracing_on: arm(true),
        tracing_off: arm(false),
    }
}

/// Measures the cost of the continuous-telemetry engine on the nation
/// workload: the same `/groups` endpoint hammered against a daemon
/// with the recorder enabled (the default — a background thread
/// sampling every registered metric into the timeline each tick and
/// evaluating the SLO burn rates) and one with
/// `ServeConfig::telemetry` off.  The per-request cost is one
/// `Instant::elapsed` comparison against the slowlog threshold; the
/// recorder itself runs off the request path.  The acceptance bar is a
/// p99 ratio within one percent of 1.0; `bench_check` caps both
/// `_ratio` keys absolutely.
fn measure_telemetry_overhead(
    nation_scale: f64,
    requests: usize,
    clients: usize,
    workers: usize,
) -> TelemetryOverheadRecord {
    let nation = nation_tpiin_fixture(nation_scale, 20170417);
    let arm = |telemetry: bool| {
        let config = ServeConfig {
            workers,
            queue_capacity: 4 * clients.max(1) + 16,
            telemetry,
            // A production-rate tick: the overhead being measured is
            // the default recorder cadence, not a stress cadence.
            ..ServeConfig::default()
        };
        let handle = ServerHandle::bind(nation.clone(), config).expect("bind ephemeral daemon");
        let label = if telemetry {
            "groups+telemetry"
        } else {
            "groups"
        };
        let lat = bench_endpoint(handle.addr(), label, "/groups?limit=5", requests, clients);
        handle.shutdown();
        lat
    };
    TelemetryOverheadRecord {
        endpoint: "groups".to_string(),
        telemetry_on: arm(true),
        telemetry_off: arm(false),
    }
}

/// The fig7 open-loop arm: boots a dedicated daemon and sweeps a mixed
/// read workload (groups-heavy, with company and arc lookups) across
/// the default offered-rate ladder.
fn load_curve_fig7(workers: usize) -> LoadCurve {
    let (tpiin, _) = fuse(&fig7_registry()).expect("fig7 registry fuses");
    let detection = detect(&tpiin);
    let mut mix = vec![MixEntry {
        name: "groups".to_string(),
        path: "/groups?limit=5".to_string(),
        weight: 2,
    }];
    if let Some((src, dst)) = detection.suspicious_trading_arcs.iter().next() {
        mix.push(MixEntry {
            name: "company".to_string(),
            path: format!("/company/{}", tpiin.label(*src)),
            weight: 1,
        });
        mix.push(MixEntry {
            name: "groups_behind_arc".to_string(),
            path: format!(
                "/groups_behind_arc?src={}&dst={}",
                tpiin.label(*src),
                tpiin.label(*dst)
            ),
            weight: 1,
        });
    }
    // A deep queue: the open-loop discipline wants queueing to show up
    // as latency, not as shed 503s.
    let config = ServeConfig {
        workers,
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    let handle = ServerHandle::bind(tpiin, config).expect("bind ephemeral daemon");
    let curve = loadgen::sweep(handle.addr(), "fig7", &mix, &SweepOptions::default());
    handle.shutdown();
    curve
}

/// Times one full snapshot decode (bytes → TPIIN with frozen CSR) as
/// the median of `rounds` passes — the latency a `serve --watch`
/// hot-swap pays before the epoch flips.
fn median_load_ms(bytes: &[u8], rounds: usize) -> f64 {
    let mut samples: Vec<f64> = (0..rounds.max(1))
        .map(|_| {
            let start = Instant::now();
            let tpiin = tpiin_io::snapshot::read_snapshot_bytes(bytes).expect("snapshot decodes");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(tpiin.node_count());
            elapsed
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The text-vs-binary snapshot load arms over the nation-scale fixture:
/// encodes the same fused TPIIN both ways, times the decode path of
/// each, and proves both restore to the same detection.
fn measure_snapshot_loads(nation_scale: f64) -> Vec<SnapshotLoadRecord> {
    let tpiin = nation_tpiin_fixture(nation_scale, 20170417);
    let text = tpiin_io::snapshot::write_snapshot(&tpiin).into_bytes();
    let bin = tpiin_io::snapshot_bin::write_snapshot_bin(&tpiin);

    let from_text = tpiin_io::snapshot::read_snapshot_bytes(&text).expect("text decodes");
    let from_bin = tpiin_io::snapshot::read_snapshot_bytes(&bin).expect("binary decodes");
    let text_groups = detect(&from_text).group_count();
    let bin_groups = detect(&from_bin).group_count();
    assert_eq!(
        text_groups, bin_groups,
        "text and binary snapshots decoded to different detections"
    );

    const ROUNDS: usize = 5;
    let workload = format!("nation-{nation_scale}");
    vec![
        SnapshotLoadRecord {
            name: format!("{workload}-text"),
            bytes: text.len(),
            load_ms: median_load_ms(&text, ROUNDS),
            groups: text_groups,
        },
        SnapshotLoadRecord {
            name: format!("{workload}-bin"),
            bytes: bin.len(),
            load_ms: median_load_ms(&bin, ROUNDS),
            groups: bin_groups,
        },
    ]
}

/// Runs one bench unit under `catch_unwind`: a panic marks the whole
/// record aborted (and skips the remaining units) but still lets main
/// write the units that completed.
fn guarded<T>(label: &str, aborted: &mut bool, unit: impl FnOnce() -> T) -> Option<T> {
    if *aborted {
        return None;
    }
    match catch_unwind(AssertUnwindSafe(unit)) {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("bench serve [{label}]: PANICKED — marking record aborted");
            *aborted = true;
            None
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(0.5);
    let clients: usize = args
        .next()
        .map(|s| s.parse().expect("CLIENTS must be an integer"))
        .unwrap_or(4);

    let workers = 4;
    let requests = 200;
    let province_name = format!("province-{scale}");
    let nation_name = format!("nation-{scale}");
    let mut meta = BenchMeta::new(
        "serve",
        [
            "fig7".to_string(),
            province_name.clone(),
            nation_name.clone(),
        ],
        [
            "closed_loop",
            "open_loop",
            "snapshot_load",
            "telemetry_overhead",
        ],
    );
    let mut aborted = false;

    let mut workloads = Vec::new();
    if let Some(w) = guarded("fig7", &mut aborted, || {
        let (fig7, _) = fuse(&fig7_registry()).expect("fig7 registry fuses");
        measure("fig7", fig7, requests, clients, workers)
    }) {
        workloads.push(w);
    }
    if let Some(w) = guarded(&province_name, &mut aborted, || {
        let province = tpiin_fixture(scale, 0.004, 20170417);
        measure(&province_name, province, requests, clients, workers)
    }) {
        workloads.push(w);
    }
    if let Some(w) = guarded(&nation_name, &mut aborted, || {
        let nation = nation_tpiin_fixture(scale, 20170417);
        // The nation is the largest workload; fewer requests keep the
        // closed-loop arm bounded while the percentiles still resolve.
        measure(&nation_name, nation, requests / 2, clients, workers)
    }) {
        workloads.push(w);
    }
    let snapshot_loads: Vec<SnapshotLoadRecord> = guarded("snapshot_loads", &mut aborted, || {
        measure_snapshot_loads(scale)
    })
    .unwrap_or_default();
    let tracing_overhead = guarded("tracing_overhead", &mut aborted, || {
        measure_tracing_overhead(requests, clients, workers)
    });
    let telemetry_overhead = guarded("telemetry_overhead", &mut aborted, || {
        // Fewer requests on the nation network, like the closed-loop
        // nation arm, so the two boots stay bounded.
        measure_telemetry_overhead(scale, requests / 2, clients, workers)
    });
    let load_curves: Vec<LoadCurve> =
        guarded("load_curve fig7", &mut aborted, || load_curve_fig7(workers))
            .into_iter()
            .collect();
    meta.aborted = aborted;

    let bench = ServeBench {
        host_cpus: meta.host_cpus,
        workers,
        clients,
        workloads,
        tracing_overhead,
        telemetry_overhead,
        load_curves,
        snapshot_loads,
    };
    for w in &bench.workloads {
        for e in &w.endpoints {
            println!(
                "bench serve [{}] {:>18}: p50 {:>8.1} us, p95 {:>8.1} us, p99 {:>8.1} us ({} reqs)",
                w.name, e.endpoint, e.p50_us, e.p95_us, e.p99_us, e.requests
            );
        }
    }
    if let Some(overhead) = &bench.tracing_overhead {
        println!(
            "bench serve [fig7] tracing on/off p95: {:.1} / {:.1} us (ratio {:.3})",
            overhead.tracing_on.p95_us,
            overhead.tracing_off.p95_us,
            overhead.p95_ratio()
        );
    }
    if let Some(overhead) = &bench.telemetry_overhead {
        println!(
            "bench serve [nation] telemetry on/off p99: {:.1} / {:.1} us (ratio {:.3})",
            overhead.telemetry_on.p99_us,
            overhead.telemetry_off.p99_us,
            overhead.p99_ratio()
        );
    }
    for load in &bench.snapshot_loads {
        println!(
            "bench serve [snapshot] {:>18}: {:>9} B, load {:>8.2} ms, {} groups",
            load.name, load.bytes, load.load_ms, load.groups
        );
    }
    if let [text, bin] = bench.snapshot_loads.as_slice() {
        println!(
            "bench serve [snapshot] binary speedup: {:.1}x over text",
            text.load_ms / bin.load_ms.max(1e-9)
        );
    }
    for curve in &bench.load_curves {
        for step in &curve.steps {
            println!(
                "bench serve [{}] open-loop @{:>6.0} rps: p50 {:>8.1} us, p95 {:>8.1} us, p99 {:>8.1} us, achieved {:>6.1} rps, peak {} B",
                curve.workload,
                step.offered_rps,
                step.p50_us,
                step.p95_us,
                step.p99_us,
                step.achieved_rps,
                step.server_peak_bytes
            );
        }
    }
    record::write_enveloped(std::path::Path::new(&path), &meta, bench.to_json())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("record -> {path} (host_cpus = {})", bench.host_cpus);
    if meta.aborted {
        std::process::exit(1);
    }
}
