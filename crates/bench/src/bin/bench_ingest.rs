//! Streaming-ingest benchmark for the delta-fusion engine: replays a
//! generated mutation feed (registry + trading batches, evasion rings
//! planted mid-stream) through two arms —
//!
//! 1. `delta` — the [`tpiin_delta::DeltaEngine`] maintaining the TPIIN
//!    incrementally (surgical trading appends, bounded re-contraction,
//!    shard re-mining);
//! 2. `full_rebuild` — the from-scratch comparator: apply the batch to
//!    the registry, fuse the whole TPIIN, detect over everything —
//!
//! and records batches/s plus per-batch apply-latency percentiles for
//! both.  Both arms must land on the identical detection; the benchmark
//! asserts it against a final from-scratch fuse before writing.
//!
//! Two more measurements ride along:
//!
//! * `registry_delta` — the acceptance bar: one planted registry batch
//!   applied through the engine's surgical company-append path vs a
//!   from-scratch fuse + detect of the same resulting registry.  The
//!   run *fails* if the delta apply is not at least 10x faster.
//! * `read_while_ingesting` — `/groups` latencies sampled against a
//!   live registry-backed daemon while the feed streams into
//!   `POST /ingest`, proving readers never block on the writer; the
//!   response epochs must be strictly monotonic.
//!
//! Usage: `bench_ingest [OUT_PATH] [SCALE] [BATCHES]` — defaults to
//! `BENCH_ingest.json`, scale 0.5, 24 batches.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use tpiin_bench::record::{
    self, BenchMeta, EndpointLatency, IngestArmRecord, IngestBench, LatencyUs, RegistryDeltaRecord,
};
use tpiin_core::detect;
use tpiin_datagen::{generate_mutation_stream, MutationStream, MutationStreamConfig};
use tpiin_delta::{DeltaEngine, DeltaPath};
use tpiin_fusion::fuse;
use tpiin_io::mutation_feed;
use tpiin_model::{MutationBatch, SourceRegistry};
use tpiin_serve::{ServeConfig, ServerHandle};

/// Replays the feed through the delta engine, timing each apply.
fn delta_arm(stream: &MutationStream) -> IngestArmRecord {
    let mut engine = DeltaEngine::new(stream.base.clone()).expect("generated base fuses");
    let mut samples = Vec::with_capacity(stream.batches.len());
    let start = Instant::now();
    for batch in &stream.batches {
        let t = Instant::now();
        engine.apply(batch).expect("generated batches are valid");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let secs = start.elapsed().as_secs_f64();

    // Correctness embed: the maintained TPIIN and detection must be
    // bit-identical to a from-scratch fuse + detect of the replayed
    // registry — the same bar the differential proptest holds.
    let replayed = stream.replayed().expect("feed replays");
    let (scratch, _) = fuse(&replayed).expect("replayed registry fuses");
    assert_eq!(
        engine.tpiin().edge_list(),
        scratch.edge_list(),
        "delta-maintained TPIIN diverged from a from-scratch fuse"
    );
    let groups = engine.detection().group_count();
    assert_eq!(
        groups,
        detect(&scratch).group_count(),
        "delta-maintained detection diverged from a from-scratch detect"
    );

    IngestArmRecord {
        name: "delta".to_string(),
        batches: stream.batches.len(),
        groups,
        batches_per_sec: stream.batches.len() as f64 / secs,
        apply: LatencyUs::from_samples(&mut samples),
    }
}

/// Replays the feed with a from-scratch fuse + detect after every
/// batch — the fallback the delta engine escapes to, timed honestly.
fn full_rebuild_arm(stream: &MutationStream) -> IngestArmRecord {
    let mut registry = stream.base.clone();
    let mut samples = Vec::with_capacity(stream.batches.len());
    let mut groups = 0;
    let start = Instant::now();
    for batch in &stream.batches {
        let t = Instant::now();
        batch
            .apply_to_registry(&mut registry)
            .expect("generated batches are valid");
        let (tpiin, _) = fuse(&registry).expect("mutated registry fuses");
        groups = detect(&tpiin).group_count();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let secs = start.elapsed().as_secs_f64();
    IngestArmRecord {
        name: "full_rebuild".to_string(),
        batches: stream.batches.len(),
        groups,
        batches_per_sec: stream.batches.len() as f64 / secs,
        apply: LatencyUs::from_samples(&mut samples),
    }
}

/// Times one planted registry batch both ways: the engine's surgical
/// company-append apply vs a from-scratch fuse + detect of the
/// resulting registry.  Median of `reps` fresh runs each.
fn registry_delta(stream: &MutationStream, reps: usize) -> RegistryDeltaRecord {
    let at = *stream
        .planted_at
        .first()
        .expect("stream plants at least one ring");
    let mut prefix = stream.base.clone();
    for batch in &stream.batches[..at] {
        batch
            .apply_to_registry(&mut prefix)
            .expect("prefix replays");
    }
    let batch: &MutationBatch = &stream.batches[at];

    let median = |mut runs: Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let delta_apply_ms = median(
        (0..reps)
            .map(|_| {
                // Engine construction (the day-0 full fuse) is untimed;
                // the measurement is the apply alone.
                let mut engine = DeltaEngine::new(prefix.clone()).expect("prefix registry fuses");
                let t = Instant::now();
                let outcome = engine.apply(batch).expect("planted batch applies");
                let ms = t.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    outcome.path,
                    DeltaPath::CompanyAppend,
                    "planted ring batch must take the surgical company-append path"
                );
                ms
            })
            .collect(),
    );
    let mut mutated = prefix.clone();
    batch
        .apply_to_registry(&mut mutated)
        .expect("planted batch applies");
    let full_rebuild_ms = median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let (tpiin, _) = fuse(&mutated).expect("mutated registry fuses");
                let _ = detect(&tpiin).group_count();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    );
    RegistryDeltaRecord {
        delta_apply_ms,
        full_rebuild_ms,
    }
}

/// One blocking HTTP request over a fresh connection; returns the
/// elapsed microseconds and the response body.  Panics on non-200 so a
/// broken endpoint cannot publish garbage percentiles.
fn timed_request(addr: SocketAddr, request: &str) -> (f64, String) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let elapsed = start.elapsed().as_secs_f64() * 1e6;
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "request failed: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    (elapsed, response)
}

/// Boots a registry-backed daemon, streams the feed into `POST
/// /ingest` (asserting strictly monotonic epochs), and samples
/// `/groups` read latencies concurrently the whole time.
fn read_while_ingesting(base: &SourceRegistry, batches: &[MutationBatch]) -> EndpointLatency {
    let handle = ServerHandle::bind_with_registry(base.clone(), ServeConfig::default())
        .expect("bind ephemeral registry-backed daemon");
    let addr = handle.addr();
    let stop = AtomicBool::new(false);

    let mut sorted = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut samples = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let (us, _) =
                    timed_request(addr, "GET /groups?limit=5 HTTP/1.1\r\nHost: bench\r\n\r\n");
                samples.push(us);
            }
            samples
        });

        let mut last_epoch = 0u64;
        for batch in batches {
            let body = mutation_feed::batch_to_json(batch).to_string();
            let request = format!(
                "POST /ingest HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let (_, response) = timed_request(addr, &request);
            let epoch: u64 = response
                .split("\"epoch\":")
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|s| s.trim().parse().ok())
                .expect("ingest response carries an epoch");
            assert!(
                epoch > last_epoch,
                "epochs must be strictly monotonic: {epoch} after {last_epoch}"
            );
            last_epoch = epoch;
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().expect("reader thread")
    });
    handle.shutdown();

    sorted.sort_by(f64::total_cmp);
    let pct = |q: f64| sorted[(q * (sorted.len() - 1) as f64).round() as usize];
    EndpointLatency {
        endpoint: "groups".to_string(),
        requests: sorted.len(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(0.5);
    let batches: usize = args
        .next()
        .map(|s| s.parse().expect("BATCHES must be an integer"))
        .unwrap_or(24);

    let config = MutationStreamConfig {
        scale,
        batches,
        ..MutationStreamConfig::default()
    };
    let stream = generate_mutation_stream(&config);
    let mut meta = BenchMeta::new(
        "ingest",
        [format!("province-{scale}")],
        ["delta", "full_rebuild"],
    );

    let measured = catch_unwind(AssertUnwindSafe(|| {
        let delta = delta_arm(&stream);
        let full = full_rebuild_arm(&stream);
        assert_eq!(
            delta.groups, full.groups,
            "arms disagree on the final detection"
        );
        let registry = registry_delta(&stream, 5);
        assert!(
            registry.speedup() >= 10.0,
            "acceptance bar: delta apply must be >= 10x faster than a full \
             re-fuse for a single-batch registry delta (measured {:.1}x: \
             {:.3} ms vs {:.3} ms)",
            registry.speedup(),
            registry.delta_apply_ms,
            registry.full_rebuild_ms
        );
        let read = read_while_ingesting(&stream.base, &stream.batches);
        IngestBench {
            host_cpus: meta.host_cpus,
            records_per_batch: config.records_per_batch,
            planted_groups: config.planted_groups,
            workloads: vec![delta, full],
            registry_delta: registry,
            read_while_ingesting: read,
        }
    }));

    let bench = match measured {
        Ok(bench) => bench,
        Err(_) => {
            eprintln!("bench ingest: PANICKED — writing an aborted record");
            meta.aborted = true;
            IngestBench {
                host_cpus: meta.host_cpus,
                records_per_batch: config.records_per_batch,
                planted_groups: config.planted_groups,
                workloads: Vec::new(),
                registry_delta: RegistryDeltaRecord {
                    delta_apply_ms: 0.0,
                    full_rebuild_ms: 0.0,
                },
                read_while_ingesting: EndpointLatency {
                    endpoint: "groups".to_string(),
                    requests: 0,
                    p50_us: 0.0,
                    p95_us: 0.0,
                    p99_us: 0.0,
                },
            }
        }
    };

    for w in &bench.workloads {
        println!(
            "bench ingest [{}]: {:.1} batches/s, apply p50 {:.1} us / p95 {:.1} us / p99 {:.1} us, {} groups",
            w.name, w.batches_per_sec, w.apply.p50_us, w.apply.p95_us, w.apply.p99_us, w.groups
        );
    }
    if !meta.aborted {
        println!(
            "bench ingest [registry_delta]: delta {:.3} ms vs full {:.3} ms ({:.1}x)",
            bench.registry_delta.delta_apply_ms,
            bench.registry_delta.full_rebuild_ms,
            bench.registry_delta.speedup()
        );
        println!(
            "bench ingest [read while ingesting]: {} reads, p50 {:.1} us / p95 {:.1} us / p99 {:.1} us",
            bench.read_while_ingesting.requests,
            bench.read_while_ingesting.p50_us,
            bench.read_while_ingesting.p95_us,
            bench.read_while_ingesting.p99_us
        );
    }
    record::write_enveloped(std::path::Path::new(&path), &meta, bench.to_json())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("record -> {path} (host_cpus = {})", bench.host_cpus);
    if meta.aborted {
        std::process::exit(1);
    }
}
