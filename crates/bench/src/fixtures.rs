//! Benchmark fixtures: pre-built registries and TPIINs.

use tpiin_datagen::{add_random_trading, generate_province, ProvinceConfig};
use tpiin_fusion::{fuse, Tpiin};
use tpiin_model::SourceRegistry;

/// A scaled province registry with a trading network at probability `p`.
pub fn province_with_trading(scale: f64, p: f64, seed: u64) -> SourceRegistry {
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        ProvinceConfig {
            seed,
            ..ProvinceConfig::default()
        }
    } else {
        ProvinceConfig {
            seed,
            ..ProvinceConfig::scaled(scale)
        }
    };
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, p, seed ^ 0x7ead);
    registry
}

/// Fused TPIIN for the same fixture.
pub fn tpiin_fixture(scale: f64, p: f64, seed: u64) -> Tpiin {
    let registry = province_with_trading(scale, p, seed);
    let (tpiin, _) = fuse(&registry).expect("generated registry always fuses");
    tpiin
}
