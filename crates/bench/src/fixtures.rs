//! Benchmark fixtures: pre-built registries and TPIINs.

use tpiin_datagen::{
    add_random_trading, generate_nation_with, generate_province, NationConfig, ProvinceConfig,
};
use tpiin_fusion::{fuse, Tpiin};
use tpiin_model::SourceRegistry;

/// A scaled province registry with a trading network at probability `p`.
pub fn province_with_trading(scale: f64, p: f64, seed: u64) -> SourceRegistry {
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        ProvinceConfig {
            seed,
            ..ProvinceConfig::default()
        }
    } else {
        ProvinceConfig {
            seed,
            ..ProvinceConfig::scaled(scale)
        }
    };
    let mut registry = generate_province(&config);
    add_random_trading(&mut registry, p, seed ^ 0x7ead);
    registry
}

/// Fused TPIIN for the same fixture.
pub fn tpiin_fixture(scale: f64, p: f64, seed: u64) -> Tpiin {
    let registry = province_with_trading(scale, p, seed);
    let (tpiin, _) = fuse(&registry).expect("generated registry always fuses");
    tpiin
}

/// A scaled national registry: multiple provinces, intra- and
/// cross-province trading, planted inter-province rings with their
/// pattern-free controls (the nation-scale workload of the zero-copy
/// snapshot benchmarks).
///
/// Both the province count and the per-province population scale with
/// `scale` (floored at the ring length / a viable province), so the
/// 0.1-scale CI gate stays cheap while `scale = 1.0` approaches the
/// generator's 10⁵-company default.
pub fn nation_registry(scale: f64, seed: u64) -> SourceRegistry {
    let scaled = NationConfig::scaled(scale);
    let base = ProvinceConfig {
        seed,
        ..ProvinceConfig::scaled(scale)
    };
    let config = NationConfig {
        planted_rings: scaled.planted_rings.min(base.companies / 2),
        control_chains: scaled.control_chains.min(base.companies / 2),
        base,
        seed,
        ..scaled
    };
    generate_nation_with(&config)
}

/// Fused TPIIN for the national fixture.
pub fn nation_tpiin_fixture(scale: f64, seed: u64) -> Tpiin {
    let registry = nation_registry(scale, seed);
    let (tpiin, _) = fuse(&registry).expect("generated nation always fuses");
    tpiin
}
