//! `tpiin-bench` — shared helpers for the Criterion benchmarks.
//!
//! Bench targets live under `benches/`; this library holds the fixture
//! builders they share so each bench measures only the operation under
//! test, not fixture construction.

pub mod check;
pub mod fixtures;
pub mod loadgen;
pub mod record;
