//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! CI tracks the headline detection benchmark over time; the record is
//! exported through `tpiin-obs`'s JSON writer so the schema matches the
//! profile files the CLI emits.

use std::path::Path;
use tpiin_obs::Json;

/// The headline numbers of one detection benchmark run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchRecord {
    /// Wall-clock milliseconds for the detection pass.
    pub wall_ms: f64,
    /// Suspicious groups found.
    pub groups: usize,
    /// SubTPIINs the network segmented into.
    pub subtpiins: usize,
}

impl BenchRecord {
    /// The record as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("wall_ms".to_string(), Json::Float(self.wall_ms)),
            ("groups".to_string(), Json::Int(self.groups as u64)),
            ("subtpiins".to_string(), Json::Int(self.subtpiins as u64)),
        ])
    }

    /// Writes the record to `path` as pretty-printed JSON.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_all_three_fields() {
        let record = BenchRecord {
            wall_ms: 12.5,
            groups: 42,
            subtpiins: 7,
        };
        let text = record.to_json().to_pretty();
        assert!(text.contains("\"wall_ms\": 12.5"));
        assert!(text.contains("\"groups\": 42"));
        assert!(text.contains("\"subtpiins\": 7"));
    }
}
